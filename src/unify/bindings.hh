/**
 * @file
 * Variable binding environment with an undo trail.
 *
 * Used by the full unifier and the resolution engine.  Bindings map
 * VarIds to terms within one runtime arena; a trail records bound
 * variables so choice points can be undone on backtracking.
 */

#ifndef CLARE_UNIFY_BINDINGS_HH
#define CLARE_UNIFY_BINDINGS_HH

#include <cstddef>
#include <vector>

#include "term/term.hh"

namespace clare::unify {

/** Mark in the trail, for undoing back to a choice point. */
using TrailMark = std::size_t;

/** Binding store over the variables of one runtime arena. */
class Bindings
{
  public:
    /** Ensure storage covers variables [0, ceiling). */
    void grow(term::VarId ceiling);

    /** Is the variable bound? */
    bool isBound(term::VarId var) const;

    /** The term a variable is bound to (must be bound). */
    term::TermRef value(term::VarId var) const;

    /** Bind a variable (must be unbound) and push it on the trail. */
    void bind(term::VarId var, term::TermRef value);

    /** Current trail position. */
    TrailMark mark() const { return trail_.size(); }

    /** Undo all bindings made since @p mark. */
    void undo(TrailMark mark);

    /**
     * Dereference: follow variable bindings until reaching a non-var
     * term or an unbound variable.
     */
    term::TermRef deref(const term::TermArena &arena,
                        term::TermRef t) const;

    std::size_t boundCount() const { return trail_.size(); }

  private:
    std::vector<term::TermRef> values_;
    std::vector<term::VarId> trail_;
};

} // namespace clare::unify

#endif // CLARE_UNIFY_BINDINGS_HH
