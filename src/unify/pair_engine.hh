/**
 * @file
 * The single-item-pair matching core of partial test unification.
 *
 * Both the stream-level functional matcher (PifMatcher) and the FS2
 * Test Unification Engine hardware model execute exactly this state
 * machine for each (database item, query item) pair: variable binding
 * cells, first/subsequent store-and-fetch, cross-binding resolution to
 * the ultimate association, and level-limited header comparison.
 * Sharing the core guarantees the two layers agree item for item.
 *
 * Each call reports the TUE operations it performs through a sink so
 * callers can account time (Table 1) and operation mixes.
 */

#ifndef CLARE_UNIFY_PAIR_ENGINE_HH
#define CLARE_UNIFY_PAIR_ENGINE_HH

#include <functional>
#include <vector>

#include "pif/pif_item.hh"
#include "unify/tue_op.hh"

namespace clare::unify {

/** Callback receiving each hardware operation as it is performed. */
using OpSink = std::function<void(TueOp)>;

/**
 * Header-level comparison of two non-variable items at a matching
 * level (1-3).  This is all the hardware comparator can decide from
 * single items; element walking is the caller's job.
 */
bool compareItemHeaders(int level, const pif::PifItem &a,
                        const pif::PifItem &b);

/**
 * List/list header compatibility at a matching level: level 3 applies
 * the counter-visible arity rules (terminated lengths equal; an
 * unterminated prefix must fit a terminated partner), levels 1-2
 * accept any list pair.  Saturated pointer arity fields weaken the
 * checks.
 */
bool compareListHeaders(int level, const pif::PifItem &a,
                        const pif::PifItem &b);

/**
 * Variable binding cells and the pair-matching state machine, reset
 * per clause.
 */
class PairEngine
{
  public:
    PairEngine(int level, bool cross_binding);

    /** Reset all cells for a new clause (and, if needed, resize). */
    void reset(std::uint32_t db_slots, std::uint32_t query_slots);

    /**
     * Match one (db item, query item) pair.  Items must be single
     * items (an in-line complex *header* is fine; its elements are the
     * caller's to walk).  Reports ops via @p sink.
     *
     * @return true if the pair passes (possibly conservatively).
     */
    bool matchPair(const pif::PifItem &db_item,
                   const pif::PifItem &q_item, const OpSink &sink);

    int level() const { return level_; }
    bool crossBinding() const { return crossBinding_; }

  private:
    struct Cell
    {
        bool bound = false;
        pif::PifItem value{};
    };

    int level_;
    bool crossBinding_;
    std::vector<Cell> dbCells_;
    std::vector<Cell> qCells_;

    Cell &cellFor(const pif::PifItem &item);
    bool ultimate(pif::PifItem item, pif::PifItem &out);
    bool matchDbVar(const pif::PifItem &db_item,
                    const pif::PifItem &q_item, const OpSink &sink);
    bool matchQueryVar(const pif::PifItem &db_item,
                       const pif::PifItem &q_item, const OpSink &sink);
};

} // namespace clare::unify

#endif // CLARE_UNIFY_PAIR_ENGINE_HH
