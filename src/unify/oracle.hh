/**
 * @file
 * Ground-truth unifiability oracle and false-drop accounting.
 *
 * A filter stage (codeword index, partial test unification) passes a
 * candidate set; the oracle decides which candidates truly unify.
 * Candidates that pass a filter but fail full unification are *false
 * drops* ("ghosts") — the paper's central quality metric.
 */

#ifndef CLARE_UNIFY_ORACLE_HH
#define CLARE_UNIFY_ORACLE_HH

#include <cstdint>

#include "term/clause.hh"
#include "term/term.hh"

namespace clare::unify {

/**
 * Would the clause head fully unify with the query goal?
 *
 * The clause is standardized apart (imported into a scratch arena next
 * to the goal) and full unification is attempted.  The clause body is
 * irrelevant: clause *retrieval* selects by head.
 */
bool wouldUnify(const term::TermArena &q_arena, term::TermRef q_goal,
                const term::Clause &clause);

/** Filter-quality accounting for one query against one clause set. */
struct FilterQuality
{
    std::uint64_t candidates = 0;   ///< clauses the filter passed
    std::uint64_t trueDrops = 0;    ///< passed and truly unify
    std::uint64_t falseDrops = 0;   ///< passed but do not unify
    std::uint64_t falseDismissals = 0; ///< rejected but would unify (bug!)

    /** Fraction of the candidate set that is ghosts. */
    double
    falseDropRate() const
    {
        return candidates == 0
            ? 0.0
            : static_cast<double>(falseDrops) /
              static_cast<double>(candidates);
    }
};

} // namespace clare::unify

#endif // CLARE_UNIFY_ORACLE_HH
