/**
 * @file
 * L2b of the retrieval cache hierarchy: memoized FS1 survivor sets.
 *
 * An FS1 scan is a pure function of (query signature, secondary
 * file), so its result — the surviving clause ordinals and offsets,
 * plus the scan statistics — can be replayed for a repeated signature
 * without streaming the index again.  Entries are keyed by the
 * serialized signature bytes plus the index *generation* (a counter
 * the CRS bumps whenever a predicate's index changes), so a stale
 * survivor set simply never matches its key again and ages out of the
 * LRU.
 *
 * The memo stores the merged Fs1Result verbatim, including
 * entriesScanned / bytesScanned / busyTime, so a replayed response's
 * payload is bit-identical to a recomputed one; only the charged
 * index time differs (the CRS charges a memory-lookup cost instead of
 * the scan).
 */

#ifndef CLARE_FS1_SURVIVOR_CACHE_HH
#define CLARE_FS1_SURVIVOR_CACHE_HH

#include <mutex>
#include <optional>
#include <string>

#include "fs1/fs1_engine.hh"
#include "support/lru.hh"
#include "support/obs.hh"

namespace clare::fs1 {

/** (signature bytes, index generation) → merged Fs1Result memo. */
class SurvivorCache
{
  public:
    explicit SurvivorCache(std::size_t capacity);

    /**
     * Look up a memoized survivor set; counts fs1.cache.survivor_hits
     * / fs1.cache.survivor_misses into @p obs when provided.
     */
    std::optional<Fs1Result> find(const std::string &key,
                                  const obs::Observer &obs = {});

    /** Lookup without promotion or counters (prediction passes). */
    bool contains(const std::string &key) const;

    /** Memoize a merged scan result; returns true on eviction. */
    bool put(const std::string &key, const Fs1Result &result);

    std::size_t size() const;

    void clear();

  private:
    mutable std::mutex mutex_;
    support::LruCache<std::string, Fs1Result> cache_;
};

} // namespace clare::fs1

#endif // CLARE_FS1_SURVIVOR_CACHE_HH
