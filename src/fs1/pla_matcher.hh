/**
 * @file
 * Structural model of the FS1 index-matching hardware.
 *
 * The paper (and its TR 88/2 companion) describes FS1 as "standard
 * PLAs and MSI components" performing the codeword match in parallel
 * as index entries stream past.  This model makes that structure
 * explicit:
 *
 *  - a bank of *comparand registers* holds the query signature
 *    (per-field code bits) loaded in Set Query mode;
 *  - one *field match cell* per argument field computes, fully in
 *    parallel, `(Q_f & ~C_f) == 0  OR  clause-mask_f` from the entry
 *    bytes presented on the input bus — an AND-OR plane in the real
 *    hardware;
 *  - a *match reduction tree* ANDs the per-field outcomes into the
 *    single HIT line that gates the address latch.
 *
 * Because every field cell sees the entry simultaneously, an entry is
 * decided in one pass regardless of width: the scan is strictly
 * streaming-rate-bound, which is what lets the prototype reach
 * 4.5 MB/s.  The model counts field-cell evaluations and latch
 * operations so the structural activity is observable, and it must
 * agree exactly with the behavioural SCW+MB match rule (property
 * tested).
 */

#ifndef CLARE_FS1_PLA_MATCHER_HH
#define CLARE_FS1_PLA_MATCHER_HH

#include <cstdint>
#include <vector>

#include "scw/codeword.hh"
#include "scw/index_file.hh"
#include "support/stats.hh"

namespace clare::fs1 {

/** One per-field AND-OR match cell. */
class FieldMatchCell
{
  public:
    /** Load the comparand (query) code for this field. */
    void loadComparand(const BitVec &query_code);

    /**
     * Evaluate the cell against a clause entry's field.
     *
     * @param clause_code the entry's field code bits
     * @param clause_masked the entry's mask bit for this field
     * @return the cell's match line
     */
    bool evaluate(const BitVec &clause_code, bool clause_masked) const;

    const BitVec &comparand() const { return comparand_; }

  private:
    BitVec comparand_;
};

/** The comparand registers + field cells + reduction tree. */
class PlaMatcher
{
  public:
    explicit PlaMatcher(scw::CodewordGenerator generator);

    /** Set Query mode: load the query signature's comparands. */
    void setQuery(const scw::Signature &query);

    /**
     * Present one index entry to the match plane.
     *
     * @return the HIT line (all field cells matched)
     */
    bool present(const scw::Signature &clause);

    /**
     * Stream a whole secondary file, collecting matching entries.
     * Equivalent to Fs1Engine::search but driven through the
     * structural plane.  Entries are decoded into one scratch
     * register hoisted out of the loop, so the streaming path
     * performs no per-entry allocation (only hits are copied out) —
     * which keeps this oracle a fair scan-rate baseline for the
     * bit-sliced path.
     */
    std::vector<scw::IndexEntry>
    streamFile(const scw::SecondaryFile &index);

    /** Deprecated name for streamFile(). */
    std::vector<scw::IndexEntry>
    scan(const scw::SecondaryFile &index)
    {
        return streamFile(index);
    }

    /** Field-cell evaluations performed (activity counter). */
    std::uint64_t cellEvaluations() const { return cellEvaluations_; }

    /** Entries whose HIT line fired (address latches). */
    std::uint64_t addressLatches() const { return addressLatches_; }

    const scw::CodewordGenerator &generator() const { return generator_; }

  private:
    scw::CodewordGenerator generator_;
    std::vector<FieldMatchCell> cells_;
    bool queryLoaded_ = false;
    std::uint64_t cellEvaluations_ = 0;
    std::uint64_t addressLatches_ = 0;
};

} // namespace clare::fs1

#endif // CLARE_FS1_PLA_MATCHER_HH
