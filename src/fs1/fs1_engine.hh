/**
 * @file
 * The first stage filter (FS1): hardware index scanning over the
 * secondary file using superimposed codewords plus mask bits.
 *
 * The prototype described in the paper searches at up to 4.5 Mbyte/s
 * using PLAs and MSI parts.  This model applies the SCW+MB match rule
 * to every index entry streamed past it and collects the clause
 * addresses of the matches; its busy time is the scanned byte count
 * divided by the scan rate.  The caller (the Clause Retrieval Server)
 * combines that busy time with the disk streaming time — the engine
 * can only be as fast as the disk feeds it.
 *
 * The scan can be sharded: the secondary file is split into contiguous
 * entry ranges that are matched concurrently on a worker pool, and the
 * per-shard hit lists are concatenated in shard order so the merged
 * result is bit-identical to the sequential scan.  Counters accumulate
 * per worker and fold into the engine's StatGroup once at merge time.
 * One engine may be shared by several threads: search() is logically
 * const and its statistics are thread-safe.
 */

#ifndef CLARE_FS1_FS1_ENGINE_HH
#define CLARE_FS1_FS1_ENGINE_HH

#include <cstdint>
#include <vector>

#include "fs1/kernels.hh"
#include "scw/bit_sliced_index.hh"
#include "scw/codeword.hh"
#include "scw/index_file.hh"
#include "support/obs.hh"
#include "support/sim_time.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace clare::fs1 {

/** FS1 configuration. */
struct Fs1Config
{
    /** Hardware scan rate in bytes per second (paper: 4.5 MB/s). */
    double scanRate = 4.5e6;

    /**
     * When > 0, each scan shard *sleeps* its modeled device busy time
     * divided by this factor (paced replay): the engine behaves like
     * the real FS1 hardware the host waits on rather than computes.
     * Sharded and pipelined scans then overlap device waits, which
     * yields genuine wall-clock speedup even on a single host core.
     * Simulated Ticks are unaffected.  0 (default) disables pacing.
     */
    double paceScale = 0.0;

    /**
     * Scan through the bit-sliced plane when the caller supplies one
     * (word-parallel host path).  The survivor sets, modeled busy
     * time, and every Fs1Result field are bit-identical to the
     * row-major scan — only the host CPU cost changes — so defaulting
     * off keeps clean-run metric dumps byte-stable (no fs1.sliced.*
     * counters appear).
     */
    bool sliced = false;

    /**
     * Block kernel for sliced scans: Auto (default) resolves to the
     * widest vector ISA the host supports; explicit choices must be
     * supported (CrsConfig::validate rejects the rest).  Every kernel
     * is bit-identical in answers, survivor order, scan stats, and
     * modeled busyTime — only host CPU cost changes.  Ignored on the
     * row-major path (sliced == false).
     */
    Fs1Kernel kernel = Fs1Kernel::Auto;
};

/** Outcome of one FS1 index scan. */
struct Fs1Result
{
    /** Clause-file offsets of the matching clauses, in file order. */
    std::vector<std::uint32_t> clauseOffsets;
    /** Clause ordinals of the matching clauses, in file order. */
    std::vector<std::uint32_t> ordinals;

    std::uint64_t entriesScanned = 0;
    std::uint64_t bytesScanned = 0;
    /** Shards the scan was split into (1 = sequential). */
    std::uint32_t shards = 1;
    /**
     * Pure hardware time (bytes / scan rate), rounded to the nearest
     * tick.  For a sharded scan the per-shard byte counts are summed
     * *before* conversion, so the total never loses a sub-tick
     * fraction per shard.
     */
    Tick busyTime = 0;
};

/** The FS1 codeword-matching engine. */
class Fs1Engine
{
  public:
    explicit Fs1Engine(scw::CodewordGenerator generator,
                       Fs1Config config = {});

    const Fs1Config &config() const { return config_; }
    const scw::CodewordGenerator &generator() const { return generator_; }

    /**
     * Scan a secondary file against a query signature.
     *
     * @param obs optional tracer/metrics sinks; a "fs1.scan" span
     *        wraps the search with one "fs1.shard" child per shard,
     *        and counters fs1.searches / fs1.entries_scanned /
     *        fs1.hits / fs1.bytes_scanned accumulate in the registry
     * @param parent span the "fs1.scan" span nests under (0 = root)
     */
    Fs1Result search(const scw::SecondaryFile &index,
                     const scw::Signature &query,
                     const obs::Observer &obs = {},
                     obs::SpanId parent = 0) const;

    /**
     * Sharded scan: split the file into @p shards contiguous ranges
     * and match them on @p pool (the calling thread participates).
     * The result is bit-identical to the sequential search().
     *
     * @param pool worker pool; null or a 0-thread pool degrades to the
     *        sequential path
     * @param shards desired shard count; clamped to the entry count
     */
    Fs1Result search(const scw::SecondaryFile &index,
                     const scw::Signature &query,
                     support::ThreadPool *pool, std::uint32_t shards,
                     const obs::Observer &obs = {},
                     obs::SpanId parent = 0) const;

    /**
     * Like the sharded search(), additionally offering a bit-sliced
     * plane of @p index.  The plane is used only when config().sliced
     * is set and the plane covers the file; either way the result is
     * bit-identical (the sliced kernel changes host CPU cost, never
     * the survivors or the modeled timing).  @p sliced may be null.
     */
    Fs1Result search(const scw::SecondaryFile &index,
                     const scw::BitSlicedIndex *sliced,
                     const scw::Signature &query,
                     support::ThreadPool *pool, std::uint32_t shards,
                     const obs::Observer &obs = {},
                     obs::SpanId parent = 0) const;

    /**
     * Sliced scan over a live (base + delta) predicate version: the
     * base plane covers entries [0, base_entries) of @p index and the
     * delta mini-plane covers the appended tail [base_entries,
     * entryCount) — the delta plane's entries carry composite
     * ordinals and clause offsets, so concatenating base hits then
     * delta hits reproduces the sequential order over the composite
     * file exactly.  bytesScanned sums both parts before the one
     * ticks conversion, so busyTime is bit-identical to scanning a
     * freshly rebuilt full plane (or the row-major composite file).
     *
     * Falls back to the plain sliced/row-major search when the split
     * does not cover the file (then @p sliced typically fails the
     * coverage check too and the scan runs row-major — still
     * bit-identical in answers and timing).
     */
    Fs1Result search(const scw::SecondaryFile &index,
                     const scw::BitSlicedIndex *sliced,
                     const scw::BitSlicedIndex *delta,
                     std::size_t base_entries,
                     const scw::Signature &query,
                     support::ThreadPool *pool, std::uint32_t shards,
                     const obs::Observer &obs = {},
                     obs::SpanId parent = 0) const;

    /**
     * Multi-query batch scan: answer @p queries over one index in a
     * single pass over the sliced plane (blocks outer, queries
     * inner), amortizing index memory traffic across the batch.
     * Element k is bit-identical to search(index, queries[k]) — same
     * survivors, same entriesScanned/bytesScanned/busyTime — and each
     * query is accounted (stats, metrics, spans) as its own search.
     * Falls back to sequential per-query scans when the plane is
     * absent, config().sliced is off, or the batch has one query.
     *
     * @param observers one observer per query (sizes must match)
     */
    std::vector<Fs1Result>
    searchBatch(const scw::SecondaryFile &index,
                const scw::BitSlicedIndex *sliced,
                const std::vector<scw::Signature> &queries,
                const std::vector<obs::Observer> &observers,
                obs::SpanId parent = 0) const;

    /** Cumulative statistics across searches. */
    StatGroup &stats() { return stats_; }

  private:
    /** Hits and counters of one shard, merged in shard order. */
    struct ShardScan
    {
        std::vector<std::uint32_t> clauseOffsets;
        std::vector<std::uint32_t> ordinals;
        std::uint64_t entriesScanned = 0;
        std::uint64_t bytesScanned = 0;
        /** 64-bit plane operations (sliced kernel only). */
        std::uint64_t wordOps = 0;
        /** This shard ran through the bit-sliced kernel. */
        bool sliced = false;
    };

    /**
     * @param sliced bit-sliced plane to scan through (null, or ignored
     *        unless config().sliced is set and it covers the file)
     * @param prefix_bytes bytes scanned by the shards before this one,
     *        so the shard's span ticks can be computed as a difference
     *        of cumulative conversions (see busyTicks()) and per-shard
     *        span totals telescope exactly to the merged busyTime
     */
    ShardScan scanRange(const scw::SecondaryFile &index,
                        const scw::BitSlicedIndex *sliced,
                        const scw::Signature &query,
                        const scw::EntryRange &range,
                        std::uint64_t prefix_bytes,
                        const obs::Observer &obs,
                        obs::SpanId parent) const;

    /** Is the sliced kernel usable for this (config, plane, file)? */
    bool slicedUsable(const scw::SecondaryFile &index,
                      const scw::BitSlicedIndex *sliced) const
    {
        return config_.sliced && sliced != nullptr &&
            sliced->entryCount() == index.entryCount();
    }

    /** Cumulative bytes-to-ticks conversion shared by spans + merge. */
    Tick busyTicks(std::uint64_t bytes) const;

    Fs1Result merge(std::vector<ShardScan> shards,
                    const obs::Observer &obs) const;

    scw::CodewordGenerator generator_;
    Fs1Config config_;
    mutable StatGroup stats_{"fs1"};
};

} // namespace clare::fs1

#endif // CLARE_FS1_FS1_ENGINE_HH
