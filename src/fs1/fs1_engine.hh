/**
 * @file
 * The first stage filter (FS1): hardware index scanning over the
 * secondary file using superimposed codewords plus mask bits.
 *
 * The prototype described in the paper searches at up to 4.5 Mbyte/s
 * using PLAs and MSI parts.  This model applies the SCW+MB match rule
 * to every index entry streamed past it and collects the clause
 * addresses of the matches; its busy time is the scanned byte count
 * divided by the scan rate.  The caller (the Clause Retrieval Server)
 * combines that busy time with the disk streaming time — the engine
 * can only be as fast as the disk feeds it.
 */

#ifndef CLARE_FS1_FS1_ENGINE_HH
#define CLARE_FS1_FS1_ENGINE_HH

#include <cstdint>
#include <vector>

#include "scw/codeword.hh"
#include "scw/index_file.hh"
#include "support/sim_time.hh"
#include "support/stats.hh"

namespace clare::fs1 {

/** FS1 configuration. */
struct Fs1Config
{
    /** Hardware scan rate in bytes per second (paper: 4.5 MB/s). */
    double scanRate = 4.5e6;
};

/** Outcome of one FS1 index scan. */
struct Fs1Result
{
    /** Clause-file offsets of the matching clauses, in file order. */
    std::vector<std::uint32_t> clauseOffsets;
    /** Clause ordinals of the matching clauses, in file order. */
    std::vector<std::uint32_t> ordinals;

    std::uint64_t entriesScanned = 0;
    std::uint64_t bytesScanned = 0;
    /** Pure hardware time (bytes / scan rate). */
    Tick busyTime = 0;
};

/** The FS1 codeword-matching engine. */
class Fs1Engine
{
  public:
    explicit Fs1Engine(scw::CodewordGenerator generator,
                       Fs1Config config = {});

    const Fs1Config &config() const { return config_; }
    const scw::CodewordGenerator &generator() const { return generator_; }

    /** Scan a secondary file against a query signature. */
    Fs1Result search(const scw::SecondaryFile &index,
                     const scw::Signature &query) const;

    /** Cumulative statistics across searches. */
    StatGroup &stats() { return stats_; }

  private:
    scw::CodewordGenerator generator_;
    Fs1Config config_;
    mutable StatGroup stats_{"fs1"};
};

} // namespace clare::fs1

#endif // CLARE_FS1_FS1_ENGINE_HH
