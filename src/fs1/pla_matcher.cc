#include "fs1/pla_matcher.hh"

#include "support/logging.hh"

namespace clare::fs1 {

void
FieldMatchCell::loadComparand(const BitVec &query_code)
{
    comparand_ = query_code;
}

bool
FieldMatchCell::evaluate(const BitVec &clause_code,
                         bool clause_masked) const
{
    // The OR plane: the clause mask bit overrides the subset test.
    if (clause_masked)
        return true;
    // The AND plane: every comparand bit must find its clause bit —
    // (Q & ~C) == 0, computed bit-parallel in hardware.
    return comparand_.subsetOf(clause_code);
}

PlaMatcher::PlaMatcher(scw::CodewordGenerator generator)
    : generator_(std::move(generator)),
      cells_(generator_.config().encodedArgs)
{
}

void
PlaMatcher::setQuery(const scw::Signature &query)
{
    clare_assert(query.fields.size() == cells_.size(),
                 "query signature layout mismatch: %zu fields for %zu "
                 "cells", query.fields.size(), cells_.size());
    for (std::size_t f = 0; f < cells_.size(); ++f)
        cells_[f].loadComparand(query.fields[f]);
    queryLoaded_ = true;
}

bool
PlaMatcher::present(const scw::Signature &clause)
{
    clare_assert(queryLoaded_, "entry presented before Set Query");
    clare_assert(clause.fields.size() == cells_.size(),
                 "clause signature layout mismatch");

    // All cells evaluate in parallel; the reduction tree ANDs their
    // match lines.  (Hardware evaluates every cell every entry; the
    // model does too, so the activity counter reflects the plane's
    // real switching, not a short-circuit.)
    bool hit = true;
    for (std::size_t f = 0; f < cells_.size(); ++f) {
        ++cellEvaluations_;
        if (!cells_[f].evaluate(clause.fields[f], clause.masked(
                static_cast<std::uint32_t>(f)))) {
            hit = false;
        }
    }
    if (hit)
        ++addressLatches_;
    return hit;
}

std::vector<scw::IndexEntry>
PlaMatcher::streamFile(const scw::SecondaryFile &index)
{
    std::vector<scw::IndexEntry> matches;
    scw::IndexEntry entry;
    for (std::size_t i = 0; i < index.entryCount(); ++i) {
        index.entryInto(generator_, i, entry);
        if (present(entry.signature))
            matches.push_back(entry);
    }
    return matches;
}

} // namespace clare::fs1
