#include "fs1/kernels.hh"

#include "support/cpu.hh"
#include "support/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#define CLARE_FS1_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace clare::fs1 {

namespace {

/**
 * The scalar oracle: exactly the word loop the SlicedMatcher ran
 * before the registry existed.  Also the tail loop of the vector
 * kernels, so every kernel ends in this code for its last few words.
 */
void
blockScalar64(std::uint64_t *surv, const std::uint64_t *const *planes,
              std::size_t nplanes, const std::uint64_t *mask,
              std::size_t word_begin, std::size_t word_count)
{
    for (std::size_t j = 0; j < word_count; ++j) {
        const std::size_t w = word_begin + j;
        std::uint64_t acc = planes[0][w];
        for (std::size_t t = 1; t < nplanes; ++t)
            acc &= planes[t][w];
        surv[j] &= acc | mask[w];
    }
}

#ifdef CLARE_FS1_X86_KERNELS

__attribute__((target("avx2"))) void
blockAvx2(std::uint64_t *surv, const std::uint64_t *const *planes,
          std::size_t nplanes, const std::uint64_t *mask,
          std::size_t word_begin, std::size_t word_count)
{
    std::size_t j = 0;
    for (; j + 4 <= word_count; j += 4) {
        const std::size_t w = word_begin + j;
        __m256i acc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(planes[0] + w));
        for (std::size_t t = 1; t < nplanes; ++t)
            acc = _mm256_and_si256(
                acc, _mm256_loadu_si256(
                         reinterpret_cast<const __m256i *>(planes[t] + w)));
        const __m256i m = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(mask + w));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<__m256i *>(surv + j));
        s = _mm256_and_si256(s, _mm256_or_si256(acc, m));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(surv + j), s);
    }
    blockScalar64(surv + j, planes, nplanes, mask, word_begin + j,
                  word_count - j);
}

__attribute__((target("avx512f"))) void
blockAvx512(std::uint64_t *surv, const std::uint64_t *const *planes,
            std::size_t nplanes, const std::uint64_t *mask,
            std::size_t word_begin, std::size_t word_count)
{
    std::size_t j = 0;
    for (; j + 8 <= word_count; j += 8) {
        const std::size_t w = word_begin + j;
        __m512i acc = _mm512_loadu_si512(planes[0] + w);
        for (std::size_t t = 1; t < nplanes; ++t)
            acc = _mm512_and_epi64(acc,
                                   _mm512_loadu_si512(planes[t] + w));
        const __m512i m = _mm512_loadu_si512(mask + w);
        __m512i s = _mm512_loadu_si512(surv + j);
        s = _mm512_and_epi64(s, _mm512_or_epi64(acc, m));
        _mm512_storeu_si512(surv + j, s);
    }
    blockScalar64(surv + j, planes, nplanes, mask, word_begin + j,
                  word_count - j);
}

#endif // CLARE_FS1_X86_KERNELS

} // namespace

bool
kernelSupported(Fs1Kernel kernel)
{
    switch (kernel) {
      case Fs1Kernel::Auto:
      case Fs1Kernel::Scalar64:
        return true;
      case Fs1Kernel::Avx2:
#ifdef CLARE_FS1_X86_KERNELS
        return support::cpuFeatures().avx2;
#else
        return false;
#endif
      case Fs1Kernel::Avx512:
#ifdef CLARE_FS1_X86_KERNELS
        return support::cpuFeatures().avx512f;
#else
        return false;
#endif
    }
    return false;
}

Fs1Kernel
resolveKernel(Fs1Kernel kernel)
{
    if (kernel != Fs1Kernel::Auto)
        return kernel;
    if (kernelSupported(Fs1Kernel::Avx512))
        return Fs1Kernel::Avx512;
    if (kernelSupported(Fs1Kernel::Avx2))
        return Fs1Kernel::Avx2;
    return Fs1Kernel::Scalar64;
}

BlockKernelFn
kernelFn(Fs1Kernel kernel)
{
    kernel = resolveKernel(kernel);
    clare_assert(kernelSupported(kernel),
                 "FS1 kernel '%s' is not supported on this host",
                 kernelName(kernel));
    switch (kernel) {
#ifdef CLARE_FS1_X86_KERNELS
      case Fs1Kernel::Avx2:
        return &blockAvx2;
      case Fs1Kernel::Avx512:
        return &blockAvx512;
#endif
      default:
        return &blockScalar64;
    }
}

const char *
kernelName(Fs1Kernel kernel)
{
    switch (kernel) {
      case Fs1Kernel::Auto: return "auto";
      case Fs1Kernel::Scalar64: return "scalar64";
      case Fs1Kernel::Avx2: return "avx2";
      case Fs1Kernel::Avx512: return "avx512";
    }
    return "?";
}

bool
parseKernelName(const std::string &name, Fs1Kernel &out)
{
    for (Fs1Kernel k : {Fs1Kernel::Auto, Fs1Kernel::Scalar64,
                        Fs1Kernel::Avx2, Fs1Kernel::Avx512}) {
        if (name == kernelName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

EdgeMasks
edgeMasks(std::size_t begin, std::size_t end)
{
    clare_assert(begin < end,
                 "edge masks of an empty range [%zu, %zu)", begin, end);
    constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
    EdgeMasks masks;
    masks.firstWord = begin / 64;
    masks.wordEnd = (end + 63) / 64;
    masks.lastWord = (end - 1) / 64;
    masks.firstMask = kAllOnes << (begin % 64);
    // A word-aligned end means the last word is full: the shift-based
    // expression would be kAllOnes >> 64 (undefined), so the aligned
    // case keeps the all-ones default explicitly.
    masks.lastMask = (end % 64) != 0
        ? kAllOnes >> (64 - end % 64)
        : kAllOnes;
    return masks;
}

} // namespace clare::fs1
