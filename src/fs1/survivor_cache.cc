#include "fs1/survivor_cache.hh"

namespace clare::fs1 {

SurvivorCache::SurvivorCache(std::size_t capacity) : cache_(capacity)
{
}

std::optional<Fs1Result>
SurvivorCache::find(const std::string &key, const obs::Observer &obs)
{
    std::optional<Fs1Result> found;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (Fs1Result *r = cache_.get(key))
            found = *r;
    }
    if (obs.metrics != nullptr) {
        if (found)
            ++obs.metrics->counter("fs1.cache.survivor_hits",
                                   "index scans replayed from the "
                                   "survivor memo");
        else
            ++obs.metrics->counter("fs1.cache.survivor_misses",
                                   "index scans that ran the secondary "
                                   "file");
    }
    return found;
}

bool
SurvivorCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.contains(key);
}

bool
SurvivorCache::put(const std::string &key, const Fs1Result &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.put(key, result);
}

std::size_t
SurvivorCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

void
SurvivorCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

} // namespace clare::fs1
