/**
 * @file
 * The FS1 scan-kernel registry: one block kernel per vector ISA.
 *
 * A block kernel evaluates the per-field survivor update of the
 * bit-sliced match rule over a run of plane words:
 *
 *     surv[j] &= (AND over t of planes[t][word_begin + j])
 *                | mask[word_begin + j]          for j in [0, count)
 *
 * The update is a pure AND/OR lattice over the same 64-bit words in
 * every kernel, so widening it to 256-bit (AVX2) or 512-bit (AVX-512)
 * lanes cannot change a single survivor bit — the kernels differ only
 * in host CPU cost.  Edge masking (partial first/last words of a
 * shard range, slack bits past the last entry) is applied to the
 * survivor words by the caller *before* the kernel runs, which keeps
 * every kernel branch-free over full words and makes per-lane edge
 * handling trivial: an edge word is just a survivor word with bits
 * already cleared.
 *
 * Kernel selection is a runtime decision (Fs1Config.kernel): `Auto`
 * resolves to the widest ISA the host supports, explicit choices are
 * honoured only if supported (the CRS config validator rejects the
 * rest).  The scalar kernel is always available and is the oracle the
 * sliced/kernel equivalence suites compare against.
 */

#ifndef CLARE_FS1_KERNELS_HH
#define CLARE_FS1_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace clare::fs1 {

/** Selectable FS1 block kernels. */
enum class Fs1Kernel : std::uint8_t
{
    Auto,       ///< widest supported ISA (the default)
    Scalar64,   ///< one 64-bit word per op (always available)
    Avx2,       ///< four words per op
    Avx512,     ///< eight words per op
};

/**
 * One field's survivor update over a block of words (see file
 * comment).  @p surv is indexed from 0; the plane rows from
 * @p word_begin.  @p nplanes >= 1.
 */
using BlockKernelFn = void (*)(std::uint64_t *surv,
                               const std::uint64_t *const *planes,
                               std::size_t nplanes,
                               const std::uint64_t *mask,
                               std::size_t word_begin,
                               std::size_t word_count);

/** Can this kernel run on the host?  (Auto and Scalar64 always can.) */
bool kernelSupported(Fs1Kernel kernel);

/** Resolve Auto to the widest supported kernel; others pass through. */
Fs1Kernel resolveKernel(Fs1Kernel kernel);

/**
 * The block function of a kernel.  @p kernel must be supported;
 * Auto is resolved first.
 */
BlockKernelFn kernelFn(Fs1Kernel kernel);

/** Stable lowercase name ("auto", "scalar64", "avx2", "avx512"). */
const char *kernelName(Fs1Kernel kernel);

/** Parse a kernel name; false (and no write) if unrecognized. */
bool parseKernelName(const std::string &name, Fs1Kernel &out);

/**
 * Word geometry and edge masks of an entry range [begin, end), shared
 * by every kernel and by the scan drivers.  All four partial-word
 * cases derive from one place:
 *
 *  - begin mid-word: firstMask keeps bits [begin % 64, 64)
 *  - end mid-word: lastMask keeps bits [0, end % 64)
 *  - end word-aligned (end % 64 == 0): lastMask is all-ones (the
 *    last word is full)
 *  - begin and end in the same word: the caller ANDs both masks into
 *    that single word, keeping exactly bits [begin % 64, end % 64)
 *
 * Callers must not invoke this on an empty range (begin >= end):
 * lastWord would underflow at end == 0.
 */
struct EdgeMasks
{
    std::size_t firstWord = 0;      ///< begin / 64
    std::size_t wordEnd = 0;        ///< exclusive: (end + 63) / 64
    std::size_t lastWord = 0;       ///< (end - 1) / 64 (inclusive)
    std::uint64_t firstMask = ~std::uint64_t{0};
    std::uint64_t lastMask = ~std::uint64_t{0};

    std::size_t wordCount() const { return wordEnd - firstWord; }
};

/** Derive the edge masks of a non-empty entry range [begin, end). */
EdgeMasks edgeMasks(std::size_t begin, std::size_t end);

} // namespace clare::fs1

#endif // CLARE_FS1_KERNELS_HH
