#include "fs1/fs1_engine.hh"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "fs1/sliced_matcher.hh"
#include "support/logging.hh"

namespace clare::fs1 {

Fs1Engine::Fs1Engine(scw::CodewordGenerator generator, Fs1Config config)
    : generator_(std::move(generator)), config_(config)
{
}

Tick
Fs1Engine::busyTicks(std::uint64_t bytes) const
{
    return static_cast<Tick>(std::llround(
        static_cast<double>(bytes) / config_.scanRate *
        static_cast<double>(kSecond)));
}

Fs1Engine::ShardScan
Fs1Engine::scanRange(const scw::SecondaryFile &index,
                     const scw::BitSlicedIndex *sliced,
                     const scw::Signature &query,
                     const scw::EntryRange &range,
                     std::uint64_t prefix_bytes,
                     const obs::Observer &obs, obs::SpanId parent) const
{
    // Shard scans run on pool workers, so the parent is explicit (the
    // thread-local current span belongs to whatever that worker last
    // ran).
    obs::ScopedSpan span(obs.tracer, "fs1.shard", parent);
    ShardScan scan;
    if (slicedUsable(index, sliced)) {
        // Word-parallel kernel over the transposed plane.  Shard
        // ranges need not be word-aligned; the matcher edge-masks
        // partial words, so per-shard hit lists still concatenate
        // into exactly the sequential order.
        SlicedMatcher matcher(config_.kernel);
        SlicedMatcher::Hits hits = matcher.scanRange(*sliced, query,
                                                     range);
        scan.clauseOffsets = std::move(hits.clauseOffsets);
        scan.ordinals = std::move(hits.ordinals);
        scan.wordOps = hits.wordOps;
        scan.sliced = true;
    } else {
        // Row-major scan, decoding entries into one scratch register
        // hoisted out of the loop (no per-entry allocation).
        scw::IndexEntry entry;
        for (std::size_t i = range.begin; i < range.end; ++i) {
            index.entryInto(generator_, i, entry);
            if (generator_.matches(query, entry.signature)) {
                scan.clauseOffsets.push_back(entry.clauseOffset);
                scan.ordinals.push_back(entry.ordinal);
            }
        }
    }
    scan.entriesScanned = range.size();
    scan.bytesScanned = index.rangeBytes(range);
    if (span.active()) {
        span.attr("entries", scan.entriesScanned);
        span.attr("hits",
                  static_cast<std::uint64_t>(scan.ordinals.size()));
        span.attr("bytes", scan.bytesScanned);
        if (scan.sliced) {
            span.attr("sliced", static_cast<std::uint64_t>(1));
            span.attr("word_ops", scan.wordOps);
        }
        // This shard's share of the device busy time, computed as a
        // difference of *cumulative* conversions: shards are
        // contiguous, so the per-shard spans telescope to exactly the
        // merged busyTime (an independent per-shard conversion could
        // drift from the summed total by a sub-tick per shard).
        span.setSimTicks(busyTicks(prefix_bytes + scan.bytesScanned) -
                         busyTicks(prefix_bytes));
    }
    if (config_.paceScale > 0) {
        // Paced replay: wait out this shard's share of the device time
        // in scaled real time.  Concurrent shards wait concurrently.
        double device_s = static_cast<double>(scan.bytesScanned) /
            config_.scanRate / config_.paceScale;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(device_s));
    }
    return scan;
}

Fs1Result
Fs1Engine::merge(std::vector<ShardScan> shards,
                 const obs::Observer &obs) const
{
    Fs1Result result;
    result.shards = shards.empty()
        ? 1 : static_cast<std::uint32_t>(shards.size());
    std::uint64_t word_ops = 0;
    bool sliced = false;
    // Shards are contiguous and processed here in shard order, so the
    // concatenation reproduces the sequential scan order exactly.
    for (ShardScan &scan : shards) {
        result.clauseOffsets.insert(result.clauseOffsets.end(),
                                    scan.clauseOffsets.begin(),
                                    scan.clauseOffsets.end());
        result.ordinals.insert(result.ordinals.end(),
                               scan.ordinals.begin(),
                               scan.ordinals.end());
        result.entriesScanned += scan.entriesScanned;
        result.bytesScanned += scan.bytesScanned;
        word_ops += scan.wordOps;
        sliced = sliced || scan.sliced;
    }
    // Sum bytes across shards first, then convert once, rounding to
    // the nearest tick: truncating the cast undercounted by up to one
    // tick per conversion, compounding across sharded sub-scans.
    // scanRange() derives each shard's span from the same cumulative
    // conversion, so the per-shard span ticks sum to exactly this.
    result.busyTime = busyTicks(result.bytesScanned);

    // One stats update per search, not per shard: workers accumulate
    // into their ShardScan and the merge folds the totals in.
    stats_.scalar("searches", "index scans performed") += 1;
    stats_.scalar("entriesScanned", "index entries examined") +=
        result.entriesScanned;
    stats_.scalar("hits", "entries passing the codeword match") +=
        result.ordinals.size();
    stats_.scalar("bytesScanned", "secondary file bytes streamed") +=
        result.bytesScanned;
    // Sliced-kernel activity registers only when the kernel ran, so
    // a default (row-major) run's stats dump is unchanged.
    if (sliced) {
        stats_.scalar("slicedScans",
                      "scans through the bit-sliced plane") += 1;
        stats_.scalar("slicedWordOps",
                      "64-bit plane operations in sliced scans") +=
            word_ops;
    }

    // Mirror the fold into the shared metrics registry (the StatGroup
    // is per-engine; the registry aggregates across the pipeline).
    if (obs.metrics != nullptr) {
        ++obs.metrics->counter("fs1.searches",
                               "FS1 index scans performed");
        obs.metrics->counter("fs1.entries_scanned",
                             "index entries examined") +=
            result.entriesScanned;
        obs.metrics->counter("fs1.hits",
                             "entries passing the codeword match") +=
            result.ordinals.size();
        obs.metrics->counter("fs1.bytes_scanned",
                             "secondary file bytes streamed") +=
            result.bytesScanned;
        if (sliced) {
            ++obs.metrics->counter("fs1.sliced.scans",
                                   "scans through the bit-sliced "
                                   "plane");
            obs.metrics->counter("fs1.sliced.word_ops",
                                 "64-bit plane operations in sliced "
                                 "scans") += word_ops;
        }
    }
    return result;
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::Signature &query, const obs::Observer &obs,
                  obs::SpanId parent) const
{
    return search(index, nullptr, query, nullptr, 1, obs, parent);
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::Signature &query,
                  support::ThreadPool *pool, std::uint32_t shards,
                  const obs::Observer &obs, obs::SpanId parent) const
{
    return search(index, nullptr, query, pool, shards, obs, parent);
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::BitSlicedIndex *sliced,
                  const scw::Signature &query,
                  support::ThreadPool *pool, std::uint32_t shards,
                  const obs::Observer &obs, obs::SpanId parent) const
{
    if (pool == nullptr || pool->threadCount() == 0 || shards <= 1) {
        obs::ScopedSpan span(obs.tracer, "fs1.scan", parent);
        std::vector<ShardScan> one;
        one.push_back(scanRange(index, sliced, query,
                                scw::EntryRange{0, index.entryCount()},
                                0, obs, span.id()));
        Fs1Result result = merge(std::move(one), obs);
        if (span.active()) {
            span.attr("shards",
                      static_cast<std::uint64_t>(result.shards));
            span.attr("hits", static_cast<std::uint64_t>(
                          result.ordinals.size()));
            span.setSimTicks(result.busyTime);
        }
        return result;
    }

    std::vector<scw::EntryRange> ranges = index.shardRanges(shards);
    if (ranges.size() <= 1)
        return search(index, sliced, query, nullptr, 1, obs, parent);

    obs::ScopedSpan span(obs.tracer, "fs1.scan", parent);
    std::vector<ShardScan> scans(ranges.size());
    // Cumulative byte offsets of each shard, for the telescoping
    // span-tick conversion (shards are contiguous and ordered).
    std::vector<std::uint64_t> prefix(ranges.size(), 0);
    for (std::size_t s = 1; s < ranges.size(); ++s)
        prefix[s] = prefix[s - 1] + index.rangeBytes(ranges[s - 1]);
    pool->parallelFor(ranges.size(), [&](std::size_t s) {
        scans[s] = scanRange(index, sliced, query, ranges[s], prefix[s],
                             obs, span.id());
    });
    Fs1Result result = merge(std::move(scans), obs);
    if (span.active()) {
        span.attr("shards", static_cast<std::uint64_t>(result.shards));
        span.attr("hits",
                  static_cast<std::uint64_t>(result.ordinals.size()));
        span.setSimTicks(result.busyTime);
    }
    return result;
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::BitSlicedIndex *sliced,
                  const scw::BitSlicedIndex *delta,
                  std::size_t base_entries,
                  const scw::Signature &query,
                  support::ThreadPool *pool, std::uint32_t shards,
                  const obs::Observer &obs, obs::SpanId parent) const
{
    // The split path engages only when the base plane + delta plane
    // exactly tile the composite file.  Anything else (no delta, a
    // plane mismatch, sliced scanning disabled) forwards to the
    // regular search — where a composite-sized `sliced` plane is
    // either usable as-is or the scan degrades to row-major, both
    // bit-identical in answers and modeled timing.
    bool split_usable = config_.sliced && delta != nullptr &&
        (base_entries == 0 ||
         (sliced != nullptr && sliced->entryCount() == base_entries)) &&
        base_entries + delta->entryCount() == index.entryCount();
    if (!split_usable)
        return search(index, sliced, query, pool, shards, obs, parent);

    obs::ScopedSpan span(obs.tracer, "fs1.scan", parent);
    SlicedMatcher matcher(config_.kernel);
    std::vector<ShardScan> scans;

    auto scanPlane = [&](const scw::BitSlicedIndex &plane,
                         std::uint64_t prefix_bytes) {
        obs::ScopedSpan shard(obs.tracer, "fs1.shard", span.id());
        ShardScan scan;
        SlicedMatcher::Hits hits = matcher.scanRange(
            plane, query, scw::EntryRange{0, plane.entryCount()});
        scan.clauseOffsets = std::move(hits.clauseOffsets);
        scan.ordinals = std::move(hits.ordinals);
        scan.wordOps = hits.wordOps;
        scan.sliced = true;
        scan.entriesScanned = plane.entryCount();
        scan.bytesScanned = plane.entryCount() * index.entryBytes();
        if (shard.active()) {
            shard.attr("entries", scan.entriesScanned);
            shard.attr("hits", static_cast<std::uint64_t>(
                           scan.ordinals.size()));
            shard.attr("bytes", scan.bytesScanned);
            shard.attr("sliced", static_cast<std::uint64_t>(1));
            shard.attr("word_ops", scan.wordOps);
            shard.setSimTicks(
                busyTicks(prefix_bytes + scan.bytesScanned) -
                busyTicks(prefix_bytes));
        }
        if (config_.paceScale > 0) {
            double device_s = static_cast<double>(scan.bytesScanned) /
                config_.scanRate / config_.paceScale;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(device_s));
        }
        return scan;
    };

    if (base_entries > 0)
        scans.push_back(scanPlane(*sliced, 0));
    scans.push_back(scanPlane(*delta,
                              base_entries * index.entryBytes()));
    // merge() sums bytesScanned across both parts before the single
    // ticks conversion, so the split's busyTime matches the one-plane
    // scan of the composite file to the tick.
    Fs1Result result = merge(std::move(scans), obs);
    if (span.active()) {
        span.attr("shards", static_cast<std::uint64_t>(result.shards));
        span.attr("hits",
                  static_cast<std::uint64_t>(result.ordinals.size()));
        span.attr("delta_entries", static_cast<std::uint64_t>(
                      delta->entryCount()));
        span.setSimTicks(result.busyTime);
    }
    return result;
}

std::vector<Fs1Result>
Fs1Engine::searchBatch(const scw::SecondaryFile &index,
                       const scw::BitSlicedIndex *sliced,
                       const std::vector<scw::Signature> &queries,
                       const std::vector<obs::Observer> &observers,
                       obs::SpanId parent) const
{
    clare_assert(observers.size() == queries.size(),
                 "searchBatch needs one observer per query (%zu for "
                 "%zu queries)", observers.size(), queries.size());
    std::vector<Fs1Result> out;
    out.reserve(queries.size());
    if (!slicedUsable(index, sliced) || queries.size() <= 1) {
        for (std::size_t k = 0; k < queries.size(); ++k)
            out.push_back(search(index, sliced, queries[k], nullptr, 1,
                                 observers[k], parent));
        return out;
    }

    SlicedMatcher matcher(config_.kernel);
    std::vector<SlicedMatcher::Hits> hits =
        matcher.scanBatch(*sliced, queries);
    if (observers[0].metrics != nullptr) {
        ++observers[0].metrics->counter(
            "fs1.sliced.batches", "multi-query batch plane scans");
        observers[0].metrics->counter(
            "fs1.sliced.batch_queries",
            "queries answered by batch plane scans") += queries.size();
    }
    for (std::size_t k = 0; k < queries.size(); ++k) {
        const obs::Observer &ob = observers[k];
        obs::ScopedSpan span(ob.tracer, "fs1.scan", parent);
        // Each query of the batch is accounted exactly like its own
        // sequential full-file scan: the modeled hardware streams the
        // file once per query (the host merely computed them
        // together), so entriesScanned, bytesScanned, and busyTime
        // are bit-identical to the unbatched path.
        ShardScan scan;
        scan.clauseOffsets = std::move(hits[k].clauseOffsets);
        scan.ordinals = std::move(hits[k].ordinals);
        scan.entriesScanned = index.entryCount();
        scan.bytesScanned = index.image().size();
        scan.wordOps = hits[k].wordOps;
        scan.sliced = true;
        std::vector<ShardScan> one;
        one.push_back(std::move(scan));
        Fs1Result result = merge(std::move(one), ob);
        if (span.active()) {
            span.attr("shards",
                      static_cast<std::uint64_t>(result.shards));
            span.attr("hits", static_cast<std::uint64_t>(
                          result.ordinals.size()));
            span.attr("batch_width",
                      static_cast<std::uint64_t>(queries.size()));
            span.setSimTicks(result.busyTime);
        }
        out.push_back(std::move(result));
    }
    if (config_.paceScale > 0) {
        // Paced replay charges the modeled device serially per query,
        // exactly like the unbatched path would.
        double device_s =
            static_cast<double>(index.image().size()) *
            static_cast<double>(queries.size()) / config_.scanRate /
            config_.paceScale;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(device_s));
    }
    return out;
}

} // namespace clare::fs1
