#include "fs1/fs1_engine.hh"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace clare::fs1 {

Fs1Engine::Fs1Engine(scw::CodewordGenerator generator, Fs1Config config)
    : generator_(std::move(generator)), config_(config)
{
}

Fs1Engine::ShardScan
Fs1Engine::scanRange(const scw::SecondaryFile &index,
                     const scw::Signature &query,
                     const scw::EntryRange &range) const
{
    ShardScan scan;
    for (std::size_t i = range.begin; i < range.end; ++i) {
        scw::IndexEntry entry = index.entry(generator_, i);
        if (generator_.matches(query, entry.signature)) {
            scan.clauseOffsets.push_back(entry.clauseOffset);
            scan.ordinals.push_back(entry.ordinal);
        }
    }
    scan.entriesScanned = range.size();
    scan.bytesScanned = index.rangeBytes(range);
    if (config_.paceScale > 0) {
        // Paced replay: wait out this shard's share of the device time
        // in scaled real time.  Concurrent shards wait concurrently.
        double device_s = static_cast<double>(scan.bytesScanned) /
            config_.scanRate / config_.paceScale;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(device_s));
    }
    return scan;
}

Fs1Result
Fs1Engine::merge(std::vector<ShardScan> shards) const
{
    Fs1Result result;
    result.shards = shards.empty()
        ? 1 : static_cast<std::uint32_t>(shards.size());
    // Shards are contiguous and processed here in shard order, so the
    // concatenation reproduces the sequential scan order exactly.
    for (ShardScan &scan : shards) {
        result.clauseOffsets.insert(result.clauseOffsets.end(),
                                    scan.clauseOffsets.begin(),
                                    scan.clauseOffsets.end());
        result.ordinals.insert(result.ordinals.end(),
                               scan.ordinals.begin(),
                               scan.ordinals.end());
        result.entriesScanned += scan.entriesScanned;
        result.bytesScanned += scan.bytesScanned;
    }
    // Sum bytes across shards first, then convert once, rounding to
    // the nearest tick: truncating the cast undercounted by up to one
    // tick per conversion, compounding across sharded sub-scans.
    double seconds = static_cast<double>(result.bytesScanned) /
        config_.scanRate;
    result.busyTime = static_cast<Tick>(
        std::llround(seconds * static_cast<double>(kSecond)));

    // One stats update per search, not per shard: workers accumulate
    // into their ShardScan and the merge folds the totals in.
    stats_.scalar("searches", "index scans performed") += 1;
    stats_.scalar("entriesScanned", "index entries examined") +=
        result.entriesScanned;
    stats_.scalar("hits", "entries passing the codeword match") +=
        result.ordinals.size();
    stats_.scalar("bytesScanned", "secondary file bytes streamed") +=
        result.bytesScanned;
    return result;
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::Signature &query) const
{
    std::vector<ShardScan> one;
    one.push_back(scanRange(index, query,
                            scw::EntryRange{0, index.entryCount()}));
    return merge(std::move(one));
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::Signature &query,
                  support::ThreadPool *pool, std::uint32_t shards) const
{
    if (pool == nullptr || pool->threadCount() == 0 || shards <= 1)
        return search(index, query);

    std::vector<scw::EntryRange> ranges = index.shardRanges(shards);
    if (ranges.size() <= 1)
        return search(index, query);

    std::vector<ShardScan> scans(ranges.size());
    pool->parallelFor(ranges.size(), [&](std::size_t s) {
        scans[s] = scanRange(index, query, ranges[s]);
    });
    return merge(std::move(scans));
}

} // namespace clare::fs1
