#include "fs1/fs1_engine.hh"

namespace clare::fs1 {

Fs1Engine::Fs1Engine(scw::CodewordGenerator generator, Fs1Config config)
    : generator_(std::move(generator)), config_(config)
{
}

Fs1Result
Fs1Engine::search(const scw::SecondaryFile &index,
                  const scw::Signature &query) const
{
    Fs1Result result;
    for (std::size_t i = 0; i < index.entryCount(); ++i) {
        scw::IndexEntry entry = index.entry(generator_, i);
        if (generator_.matches(query, entry.signature)) {
            result.clauseOffsets.push_back(entry.clauseOffset);
            result.ordinals.push_back(entry.ordinal);
        }
    }
    result.entriesScanned = index.entryCount();
    result.bytesScanned = index.image().size();
    double seconds = static_cast<double>(result.bytesScanned) /
        config_.scanRate;
    result.busyTime = static_cast<Tick>(seconds * kSecond);

    stats_.scalar("searches", "index scans performed") += 1;
    stats_.scalar("entriesScanned", "index entries examined") +=
        result.entriesScanned;
    stats_.scalar("hits", "entries passing the codeword match") +=
        result.ordinals.size();
    stats_.scalar("bytesScanned", "secondary file bytes streamed") +=
        result.bytesScanned;
    return result;
}

} // namespace clare::fs1
