/**
 * @file
 * Word-parallel FS1 matching over a bit-sliced index plane.
 *
 * Where the structural PlaMatcher decides one entry at a time, this
 * matcher evaluates the same SCW+MB rule for 64 entries per 64-bit
 * word operation.  Per field f with a non-empty query code Q_f:
 *
 *     survivors &= (AND over b in Q_f of plane[f][b])  |  mask[f]
 *
 * Fields whose query code is empty impose no constraint — their
 * planes are never touched, which is where the asymptotic win comes
 * from: work scales with the query's set bits, not the signature
 * width.  Survivors are extracted in entry order, so the hit list is
 * bit-identical to the sequential row-major scan, including over
 * partial shard ranges (the first and last words of a range are edge
 * masked).
 *
 * scanBatch() answers K queries in one pass: the word blocks are the
 * outer loop and the queries the inner one, so each block of plane
 * words is loaded once per batch instead of once per query —
 * multi-query scanning amortizes the index memory traffic, the
 * software analogue of presenting one streamed entry to K comparand
 * register banks.
 */

#ifndef CLARE_FS1_SLICED_MATCHER_HH
#define CLARE_FS1_SLICED_MATCHER_HH

#include <cstdint>
#include <vector>

#include "fs1/kernels.hh"
#include "scw/bit_sliced_index.hh"
#include "scw/codeword.hh"
#include "scw/index_file.hh"

namespace clare::fs1 {

/** Word-parallel scanner over a BitSlicedIndex. */
class SlicedMatcher
{
  public:
    /**
     * @param kernel block kernel to evaluate fields with; Auto picks
     *        the widest ISA the host supports.  Every kernel yields
     *        bit-identical hits, order, and wordOps (the counter
     *        models 64-bit plane operations regardless of how many
     *        the host fuses per vector op).
     */
    explicit SlicedMatcher(Fs1Kernel kernel = Fs1Kernel::Auto);

    /** The kernel scans actually run through (Auto resolved). */
    Fs1Kernel kernel() const { return kernel_; }

    /** Survivors of one query, in entry order. */
    struct Hits
    {
        std::vector<std::uint32_t> clauseOffsets;
        std::vector<std::uint32_t> ordinals;
        /** 64-bit plane operations performed (activity counter). */
        std::uint64_t wordOps = 0;
    };

    /**
     * Scan a contiguous entry range for one query.  Exactly the
     * entries PlaMatcher accepts survive, in the same order.
     */
    Hits scanRange(const scw::BitSlicedIndex &plane,
                   const scw::Signature &query,
                   const scw::EntryRange &range);

    /**
     * Scan the whole plane once for @p queries (multi-query batch).
     * Element k is bit-identical to
     * scanRange(plane, queries[k], {0, entryCount}).
     */
    std::vector<Hits> scanBatch(const scw::BitSlicedIndex &plane,
                                const std::vector<scw::Signature> &queries);

  private:
    /** One query's touched rows: per active field, its plane rows. */
    struct FieldPlan
    {
        const std::uint64_t *mask = nullptr;
        std::vector<const std::uint64_t *> planes;
    };
    struct QueryPlan
    {
        std::vector<FieldPlan> fields;
    };

    static QueryPlan buildPlan(const scw::BitSlicedIndex &plane,
                               const scw::Signature &query);

    /**
     * Evaluate one block of words for one plan into surv_ (edge words
     * pre-masked by the caller), then extract survivors into @p out.
     */
    void scanBlock(const scw::BitSlicedIndex &plane,
                   const QueryPlan &plan, std::size_t word_begin,
                   std::size_t word_count, std::uint64_t first_mask,
                   std::size_t last_word, std::uint64_t last_mask,
                   Hits &out);

    /** Resolved kernel identity (never Auto after construction). */
    Fs1Kernel kernel_;
    /** The block function of kernel_. */
    BlockKernelFn kernelFn_;
    /** Survivor-word scratch, reused across blocks and queries. */
    std::vector<std::uint64_t> surv_;
};

} // namespace clare::fs1

#endif // CLARE_FS1_SLICED_MATCHER_HH
