#include "fs1/sliced_matcher.hh"

#include <bit>

#include "support/logging.hh"

namespace clare::fs1 {

namespace {

/**
 * Words evaluated per block (16 K entries).  Small enough that one
 * block of every touched plane row stays cache-resident while the
 * batch inner loop revisits it per query, large enough that the loop
 * overhead amortizes.
 */
constexpr std::size_t kBlockWords = 256;

constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

} // namespace

SlicedMatcher::SlicedMatcher(Fs1Kernel kernel)
    : kernel_(resolveKernel(kernel)), kernelFn_(kernelFn(kernel_))
{
}

SlicedMatcher::QueryPlan
SlicedMatcher::buildPlan(const scw::BitSlicedIndex &plane,
                         const scw::Signature &query)
{
    clare_assert(query.fields.size() == plane.fields(),
                 "query signature layout mismatch: %zu fields for a "
                 "%u-field plane", query.fields.size(), plane.fields());
    QueryPlan plan;
    for (std::uint32_t f = 0; f < plane.fields(); ++f) {
        const BitVec &code = query.fields[f];
        FieldPlan field;
        for (std::uint32_t b = 0; b < plane.fieldBits(); ++b)
            if (code.test(b))
                field.planes.push_back(plane.codePlane(f, b));
        // A field with no query bits constrains nothing (the empty
        // code is a subset of every clause code), exactly like the
        // behavioural rule — its planes are never loaded.
        if (field.planes.empty())
            continue;
        field.mask = plane.maskPlane(f);
        plan.fields.push_back(std::move(field));
    }
    return plan;
}

void
SlicedMatcher::scanBlock(const scw::BitSlicedIndex &plane,
                         const QueryPlan &plan, std::size_t word_begin,
                         std::size_t word_count,
                         std::uint64_t first_mask, std::size_t last_word,
                         std::uint64_t last_mask, Hits &out)
{
    if (surv_.size() < word_count)
        surv_.resize(word_count);
    for (std::size_t j = 0; j < word_count; ++j)
        surv_[j] = kAllOnes;
    // Edge masking: a shard range need not start or end on a word
    // boundary, and the final word of the file has slack bits past the
    // last entry.  Clearing them up front keeps the kernel branch-free
    // and makes partial ranges concatenate bit-identically.
    surv_[0] &= first_mask;
    if (last_word >= word_begin && last_word < word_begin + word_count)
        surv_[last_word - word_begin] &= last_mask;

    for (const FieldPlan &field : plan.fields) {
        kernelFn_(surv_.data(), field.planes.data(),
                  field.planes.size(), field.mask, word_begin,
                  word_count);
        // The activity counter models 64-bit plane operations, so it
        // is kernel-independent: a vector kernel fuses several words
        // per host op but the modeled hardware still touches every
        // word of every plane row.
        out.wordOps += static_cast<std::uint64_t>(word_count) *
            (field.planes.size() + 1);
    }

    for (std::size_t j = 0; j < word_count; ++j) {
        std::uint64_t w = surv_[j];
        const std::size_t base = (word_begin + j) * 64;
        while (w != 0) {
            const std::size_t e =
                base + static_cast<std::size_t>(std::countr_zero(w));
            out.clauseOffsets.push_back(plane.clauseOffset(e));
            out.ordinals.push_back(plane.ordinal(e));
            w &= w - 1;
        }
    }
}

SlicedMatcher::Hits
SlicedMatcher::scanRange(const scw::BitSlicedIndex &plane,
                         const scw::Signature &query,
                         const scw::EntryRange &range)
{
    Hits out;
    if (range.begin >= range.end)
        return out;
    clare_assert(range.end <= plane.entryCount(),
                 "entry range [%zu, %zu) exceeds plane of %zu entries",
                 range.begin, range.end, plane.entryCount());
    const QueryPlan plan = buildPlan(plane, query);

    const EdgeMasks masks = edgeMasks(range.begin, range.end);
    for (std::size_t bw = masks.firstWord; bw < masks.wordEnd;
         bw += kBlockWords) {
        const std::size_t count = std::min(kBlockWords,
                                           masks.wordEnd - bw);
        scanBlock(plane, plan, bw, count,
                  bw == masks.firstWord ? masks.firstMask : kAllOnes,
                  masks.lastWord, masks.lastMask, out);
    }
    return out;
}

std::vector<SlicedMatcher::Hits>
SlicedMatcher::scanBatch(const scw::BitSlicedIndex &plane,
                         const std::vector<scw::Signature> &queries)
{
    std::vector<Hits> out(queries.size());
    if (queries.empty() || plane.entryCount() == 0)
        return out;

    std::vector<QueryPlan> plans;
    plans.reserve(queries.size());
    for (const scw::Signature &query : queries)
        plans.push_back(buildPlan(plane, query));

    const EdgeMasks masks = edgeMasks(0, plane.entryCount());
    clare_assert(masks.wordEnd == plane.planeWords(),
                 "plane row of %zu words for %zu entries",
                 plane.planeWords(), plane.entryCount());

    // Blocks outer, queries inner: each block of plane words is
    // loaded once and revisited (cache-hot) by every query in the
    // batch, instead of streaming the whole plane K times.
    for (std::size_t bw = 0; bw < masks.wordEnd; bw += kBlockWords) {
        const std::size_t count = std::min(kBlockWords,
                                           masks.wordEnd - bw);
        for (std::size_t q = 0; q < queries.size(); ++q)
            scanBlock(plane, plans[q], bw, count, kAllOnes,
                      masks.lastWord, masks.lastMask, out[q]);
    }
    return out;
}

} // namespace clare::fs1
