#include "fs1/sliced_matcher.hh"

#include <bit>

#include "support/logging.hh"

namespace clare::fs1 {

namespace {

/**
 * Words evaluated per block (16 K entries).  Small enough that one
 * block of every touched plane row stays cache-resident while the
 * batch inner loop revisits it per query, large enough that the loop
 * overhead amortizes.
 */
constexpr std::size_t kBlockWords = 256;

constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

} // namespace

SlicedMatcher::QueryPlan
SlicedMatcher::buildPlan(const scw::BitSlicedIndex &plane,
                         const scw::Signature &query)
{
    clare_assert(query.fields.size() == plane.fields(),
                 "query signature layout mismatch: %zu fields for a "
                 "%u-field plane", query.fields.size(), plane.fields());
    QueryPlan plan;
    for (std::uint32_t f = 0; f < plane.fields(); ++f) {
        const BitVec &code = query.fields[f];
        FieldPlan field;
        for (std::uint32_t b = 0; b < plane.fieldBits(); ++b)
            if (code.test(b))
                field.planes.push_back(plane.codePlane(f, b));
        // A field with no query bits constrains nothing (the empty
        // code is a subset of every clause code), exactly like the
        // behavioural rule — its planes are never loaded.
        if (field.planes.empty())
            continue;
        field.mask = plane.maskPlane(f);
        plan.fields.push_back(std::move(field));
    }
    return plan;
}

void
SlicedMatcher::scanBlock(const scw::BitSlicedIndex &plane,
                         const QueryPlan &plan, std::size_t word_begin,
                         std::size_t word_count,
                         std::uint64_t first_mask, std::size_t last_word,
                         std::uint64_t last_mask, Hits &out)
{
    if (surv_.size() < word_count)
        surv_.resize(word_count);
    for (std::size_t j = 0; j < word_count; ++j)
        surv_[j] = kAllOnes;
    // Edge masking: a shard range need not start or end on a word
    // boundary, and the final word of the file has slack bits past the
    // last entry.  Clearing them up front keeps the kernel branch-free
    // and makes partial ranges concatenate bit-identically.
    surv_[0] &= first_mask;
    if (last_word >= word_begin && last_word < word_begin + word_count)
        surv_[last_word - word_begin] &= last_mask;

    for (const FieldPlan &field : plan.fields) {
        const std::uint64_t *const *planes = field.planes.data();
        const std::size_t nplanes = field.planes.size();
        const std::uint64_t *mask = field.mask;
        for (std::size_t j = 0; j < word_count; ++j) {
            const std::size_t w = word_begin + j;
            std::uint64_t acc = planes[0][w];
            for (std::size_t t = 1; t < nplanes; ++t)
                acc &= planes[t][w];
            surv_[j] &= acc | mask[w];
        }
        out.wordOps +=
            static_cast<std::uint64_t>(word_count) * (nplanes + 1);
    }

    for (std::size_t j = 0; j < word_count; ++j) {
        std::uint64_t w = surv_[j];
        const std::size_t base = (word_begin + j) * 64;
        while (w != 0) {
            const std::size_t e =
                base + static_cast<std::size_t>(std::countr_zero(w));
            out.clauseOffsets.push_back(plane.clauseOffset(e));
            out.ordinals.push_back(plane.ordinal(e));
            w &= w - 1;
        }
    }
}

SlicedMatcher::Hits
SlicedMatcher::scanRange(const scw::BitSlicedIndex &plane,
                         const scw::Signature &query,
                         const scw::EntryRange &range)
{
    Hits out;
    if (range.begin >= range.end)
        return out;
    clare_assert(range.end <= plane.entryCount(),
                 "entry range [%zu, %zu) exceeds plane of %zu entries",
                 range.begin, range.end, plane.entryCount());
    const QueryPlan plan = buildPlan(plane, query);

    const std::size_t w0 = range.begin / 64;
    const std::size_t w1 = (range.end + 63) / 64;
    const std::uint64_t first_mask = kAllOnes << (range.begin % 64);
    const std::size_t last_word = (range.end - 1) / 64;
    const std::uint64_t last_mask = (range.end % 64) != 0
        ? kAllOnes >> (64 - range.end % 64)
        : kAllOnes;

    for (std::size_t bw = w0; bw < w1; bw += kBlockWords) {
        const std::size_t count = std::min(kBlockWords, w1 - bw);
        scanBlock(plane, plan, bw, count, bw == w0 ? first_mask : kAllOnes,
                  last_word, last_mask, out);
    }
    return out;
}

std::vector<SlicedMatcher::Hits>
SlicedMatcher::scanBatch(const scw::BitSlicedIndex &plane,
                         const std::vector<scw::Signature> &queries)
{
    std::vector<Hits> out(queries.size());
    if (queries.empty() || plane.entryCount() == 0)
        return out;

    std::vector<QueryPlan> plans;
    plans.reserve(queries.size());
    for (const scw::Signature &query : queries)
        plans.push_back(buildPlan(plane, query));

    const std::size_t words = plane.planeWords();
    const std::size_t last_word = words - 1;
    const std::uint64_t last_mask = (plane.entryCount() % 64) != 0
        ? kAllOnes >> (64 - plane.entryCount() % 64)
        : kAllOnes;

    // Blocks outer, queries inner: each block of plane words is
    // loaded once and revisited (cache-hot) by every query in the
    // batch, instead of streaming the whole plane K times.
    for (std::size_t bw = 0; bw < words; bw += kBlockWords) {
        const std::size_t count = std::min(kBlockWords, words - bw);
        for (std::size_t q = 0; q < queries.size(); ++q)
            scanBlock(plane, plans[q], bw, count, kAllOnes, last_word,
                      last_mask, out[q]);
    }
    return out;
}

} // namespace clare::fs1
