/**
 * @file
 * Selector-level structural model of the Test Unification Engine
 * (figure 5): the dual-port DB Memory, the Query Memory, registers
 * Reg1-3, selectors Sel1-6 and the comparator, executed port by port.
 *
 * Where the TestUnificationEngine class charges figure-level timing
 * and delegates matching to the shared PairEngine, this model actually
 * *moves the data*: Query Memory holds the compiled query (binding
 * cells for the query variables in its low region, the item stream
 * above them, as the content fields of variable items address the low
 * region); DB Memory holds the clause-variable cells, reset to
 * self-pointing at every clause; each operation routes values through
 * the documented selector branches and latches them where the figures
 * say.  Memory contents are observable, so tests can check that
 * DB_STORE really deposited the query argument at the variable's cell
 * and that the cross-bound fetches walk the stored references.
 *
 * The fetch-then-match operations iterate their memory-access cycle
 * while the fetched value is still a variable reference (the
 * microprogram loops on the type field), with a visit bound treating
 * reference cycles as unbound — the same ultimate-association
 * semantics as the functional core, which the equivalence property
 * test enforces.
 */

#ifndef CLARE_FS2_TUE_DATAPATH_HH
#define CLARE_FS2_TUE_DATAPATH_HH

#include <cstdint>
#include <vector>

#include "pif/encoder.hh"
#include "unify/tue_op.hh"

namespace clare::fs2 {

/** A word in the TUE memories: one PIF item, or an unbound marker. */
struct TueWord
{
    bool bound = false;         ///< self-pointing cells are "unbound"
    pif::PifItem item{};
};

/** Outcome of one datapath operation. */
struct TueExecResult
{
    bool hit = false;
    /** The Table-1 operations the routing amounted to (a var-var
     *  first-occurrence pair performs both stores). */
    std::vector<unify::TueOp> performed;
};

/** The figure-5 structural machine. */
class TueDatapath
{
  public:
    explicit TueDatapath(int level = 3);

    /** Set Query mode: load the compiled query into Query Memory. */
    void loadQuery(const pif::EncodedArgs &query);

    /** Start of a clause: reset DB Memory to self-pointing cells. */
    void resetForClause(std::uint32_t db_slots);

    /**
     * Execute the operation the map ROM dispatched for the pair
     * (current db item, query item at @p q_index within the loaded
     * stream).
     */
    TueExecResult execute(const pif::PifItem &db_item,
                          std::size_t q_index);

    /** @name Observability for structural tests. */
    /// @{
    const TueWord &dbCell(std::uint32_t slot) const;
    const TueWord &queryCell(std::uint32_t slot) const;
    const pif::PifItem &queryItem(std::size_t index) const;
    /// @}

  private:
    int level_;
    std::vector<TueWord> dbMemory_;      ///< clause-variable cells
    std::vector<TueWord> queryCells_;    ///< query-variable cells
    std::vector<pif::PifItem> queryItems_;

    TueWord readCell(const pif::PifItem &var_item) const;
    void writeCell(const pif::PifItem &var_item, const pif::PifItem &v);

    /** Walk reference chains to the ultimate association. */
    bool ultimate(pif::PifItem item, pif::PifItem &out) const;

    TueExecResult dbVarOp(const pif::PifItem &db_item,
                          const pif::PifItem &q_item);
    TueExecResult queryVarOp(const pif::PifItem &db_item,
                             const pif::PifItem &q_item);
};

} // namespace clare::fs2

#endif // CLARE_FS2_TUE_DATAPATH_HH
