/**
 * @file
 * The FS2 Test Unification Engine datapath timing model.
 *
 * Table 1's execution times are not free parameters: the paper derives
 * them from component propagation delays along the routes of figures
 * 6-12.  This model encodes those component delays and routes, and
 * *computes* each operation's execution time as
 *
 *     sum over cycles of max(database route, query route)  +  final
 *     action (comparison or memory write)
 *
 * exactly as the figures do.  The Table-1 reproduction bench asserts
 * the computed values equal the published ones (105, 95, 115, 105,
 * 170, 170, 235 ns).
 */

#ifndef CLARE_FS2_DATAPATH_HH
#define CLARE_FS2_DATAPATH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/sim_time.hh"
#include "unify/tue_op.hh"

namespace clare::fs2 {

/** Datapath components with their propagation delays. */
enum class Component : std::uint8_t
{
    DoubleBufferOut,    ///< Double Buffer output register, 20 ns
    Sel1,               ///< selector, 20 ns
    Sel2,
    Sel3,
    Sel4,
    Sel5,
    Sel6,
    QueryMemoryRead,    ///< Query Memory access, 35 ns
    QueryMemoryWrite,   ///< Query Memory write, 35 ns
    DbMemoryRead,       ///< DB Memory access, 25 ns
    DbMemoryWrite,      ///< DB Memory write, 20 ns
    Reg1,               ///< register clock-to-out, 20 ns
    Reg2,
    Reg3,
    Comparator,         ///< ALS comparator, 30 ns
    MicroBits,          ///< microinstruction bits 13-20, 0 ns
};

/** Propagation delay of a component in nanoseconds. */
std::uint64_t componentDelayNs(Component c);

/** Short component name as used in the figures. */
const char *componentName(Component c);

/** One route: an ordered chain of components data flows through. */
struct Route
{
    std::vector<Component> legs;

    /** Total propagation delay along the route in nanoseconds. */
    std::uint64_t delayNs() const;

    /** "Double Buffer -> Sel1 -> ..." rendering. */
    std::string describe() const;
};

/** One microprogram cycle: database and query routes run in parallel. */
struct Cycle
{
    Route dbRoute;
    Route queryRoute;

    /** Cycle time: the slower of the two parallel routes. */
    std::uint64_t delayNs() const;
};

/** The final action that closes an operation. */
enum class FinalAction : std::uint8_t
{
    Comparison,         ///< comparator settles, 30 ns
    DbMemoryWrite,      ///< binding written to DB Memory, 20 ns
    QueryMemoryWrite,   ///< binding written to Query Memory, 35 ns
};

/** Full datapath specification of one TUE operation. */
struct OperationSpec
{
    unify::TueOp op;
    int figure;                 ///< paper figure number (6-12)
    std::vector<Cycle> cycles;
    FinalAction finalAction;

    /** The figures' accounting: per-cycle critical path + final action. */
    std::uint64_t executionTimeNs() const;
};

/** The specification of one of the seven operations (Skip panics). */
const OperationSpec &operationSpec(unify::TueOp op);

/** Execution time of an operation in simulation ticks. */
Tick operationTime(unify::TueOp op);

/** Execution time in nanoseconds (Table 1 column). */
std::uint64_t operationTimeNs(unify::TueOp op);

/**
 * The paper's worst-case rate argument (section 4): treating the
 * slowest operation as the per-byte processing cost, the filter rate
 * in bytes/second is 1e9 / t_ns.  235 ns yields ~4.26 MB/s, quoted as
 * "approximately 4.25 Mbytes/second".
 */
double worstCaseFilterRate();

} // namespace clare::fs2

#endif // CLARE_FS2_DATAPATH_HH
