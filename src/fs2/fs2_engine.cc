#include "fs2/fs2_engine.hh"

#include "support/logging.hh"

namespace clare::fs2 {

using storage::ClauseFile;
using storage::ClauseRecord;
using storage::DiskModel;

double
Fs2SearchResult::filterRate() const
{
    Tick busy = tueBusyTime + sequencerTime;
    return busy == 0 ? 0.0 : bytesPerSecond(bytesStreamed, busy);
}

Fs2Engine::Fs2Engine(Fs2Config config)
    : config_(config),
      tue_(config.level, config.crossBinding),
      wcs_(WcsConfig{config.sequencerOverhead, 1u << 20}),
      compiled_(config.level, config.crossBinding,
                WcsConfig{config.sequencerOverhead, 1u << 20}),
      doubleBuffer_(config.doubleBufferBank),
      resultMemory_(config.resultMemoryBytes, config.resultSlotBytes)
{
    // Microprogramming mode: translate the matching algorithm into
    // control-store words and program the map ROM.
    RoutineAddresses routines;
    program_ = assembleMatchProgram(config_.level, routines);
    wcs_.loadProgram(program_);
    wcs_.loadMapRom(MapRom::program(config_.level, config_.crossBinding,
                                    routines));
}

void
Fs2Engine::setQuery(const term::TermArena &q_arena, term::TermRef q_goal)
{
    pif::Encoder encoder;
    pif::EncodedArgs args = encoder.encodeArgs(q_arena, q_goal,
                                               pif::Side::Query);
    term::PredicateId pred;
    if (q_arena.kind(q_goal) == term::TermKind::Atom) {
        pred = term::PredicateId{q_arena.atomSymbol(q_goal), 0};
    } else {
        pred = term::PredicateId{q_arena.functor(q_goal),
                                 q_arena.arity(q_goal)};
    }
    setQuery(std::move(args), pred);
}

void
Fs2Engine::setQuery(pif::EncodedArgs query, term::PredicateId predicate)
{
    query_ = std::move(query);
    predicate_ = predicate;
    queryLoaded_ = true;
}

Fs2SearchResult
Fs2Engine::search(const ClauseFile &file, const DiskModel *disk,
                  std::uint64_t file_offset)
{
    std::vector<std::uint32_t> all;
    all.reserve(file.clauseCount());
    for (std::size_t i = 0; i < file.clauseCount(); ++i)
        all.push_back(static_cast<std::uint32_t>(i));
    return runStream(file, all, disk, file_offset);
}

Fs2SearchResult
Fs2Engine::searchSelected(const ClauseFile &file,
                          const std::vector<std::uint32_t> &ordinals,
                          const DiskModel *disk, std::uint64_t file_offset)
{
    for (std::size_t i = 1; i < ordinals.size(); ++i)
        clare_assert(ordinals[i - 1] < ordinals[i],
                     "selected ordinals must be ascending");
    return runStream(file, ordinals, disk, file_offset);
}

Fs2SearchResult
Fs2Engine::runStream(const ClauseFile &file,
                     const std::vector<std::uint32_t> &ordinals,
                     const DiskModel *disk, std::uint64_t file_offset)
{
    clare_assert(queryLoaded_, "search started before Set Query");
    if (!(file.predicate() == predicate_))
        clare_fatal("clause file predicate does not match the query "
                    "(functor %u/%u vs %u/%u)",
                    file.predicate().functor, file.predicate().arity,
                    predicate_.functor, predicate_.arity);

    Fs2SearchResult result;
    tue_.resetStats();
    wcs_.resetStats();
    compiled_.resetStats();
    doubleBuffer_.reset();
    resultMemory_.reset();

    obs::ScopedSpan search_span(observer_.tracer, "fs2.search",
                                obsParent_);

    if (ordinals.empty())
        return result;

    // Disk timing.  Two fetch strategies are available to the CRS:
    // one sequential sweep over the spanned region (each record is
    // delivered when the head has streamed past its end), or a seek
    // per selected record.  The cheaper one is used — a full-file
    // search always sweeps; a sparse candidate fetch may seek.
    std::uint64_t span_start = file.record(ordinals.front()).offset;
    const ClauseRecord &last_rec = file.record(ordinals.back());
    std::uint64_t span_end = last_rec.offset + last_rec.length;
    Tick access = disk ? disk->accessTime() : 0;

    std::uint64_t selected_bytes = 0;
    for (std::uint32_t ordinal : ordinals)
        selected_bytes += file.record(ordinal).length;
    Tick sweep_total = 0;
    Tick seek_total = 0;
    bool per_record = false;
    if (disk) {
        sweep_total = access + disk->transferTime(span_end - span_start);
        seek_total = access * ordinals.size() +
            disk->transferTime(selected_bytes);
        per_record = seek_total < sweep_total;
    }

    std::uint64_t fetched_bytes = 0;
    std::size_t fetched_records = 0;
    for (std::uint32_t ordinal : ordinals) {
        const ClauseRecord &rec = file.record(ordinal);
        pif::EncodedArgs db_args = ClauseFile::decodeArgsAt(file.image(),
                                                            rec);

        Tick delivered = 0;
        fetched_bytes += rec.length;
        ++fetched_records;
        if (disk) {
            if (per_record) {
                delivered = access * fetched_records +
                    disk->transferTime(fetched_bytes);
            } else {
                std::uint64_t rec_end = rec.offset + rec.length;
                delivered = access +
                    disk->transferTime(rec_end - span_start);
            }
        }

        // The parallel copy into the Result Memory happens while the
        // record streams in.
        resultMemory_.beginClause(file.image().data() + rec.offset,
                                  rec.length);

        tue_.resetForClause(db_args.varSlots, query_.varSlots);
        // Both dispatch targets accumulate the identical sequencer
        // clock, so the busy-time delta reads whichever one ran.
        Tick busy_before = tue_.busyTime() +
            (config_.compiled ? compiled_.sequencerTime()
                              : wcs_.sequencerTime());
        ClauseVerdict verdict = config_.compiled
            ? compiled_.runClause(tue_, db_args.items, rec.arity,
                                  query_)
            : wcs_.runClause(tue_, db_args.items, rec.arity, query_);
        Tick processing = (tue_.busyTime() +
                           (config_.compiled
                                ? compiled_.sequencerTime()
                                : wcs_.sequencerTime())) -
            busy_before;

        doubleBuffer_.admit(delivered, processing, rec.length);

        // Per-fill detail spans, capped: a search admits one record
        // per clause and an uncapped trace would dwarf the rest.
        if (search_span.active() &&
            fetched_records <= maxDetailSpans_) {
            obs::ScopedSpan fill(observer_.tracer, "fs2.db.fill",
                                 search_span.id());
            fill.attr("ordinal", static_cast<std::uint64_t>(ordinal));
            fill.attr("bytes", static_cast<std::uint64_t>(rec.length));
            fill.attr("delivered_ticks", delivered);
            fill.setSimTicks(processing);
        }

        ++result.clausesExamined;
        result.bytesStreamed += rec.length;
        if (verdict == ClauseVerdict::Accepted) {
            result.acceptedOrdinals.push_back(ordinal);
            resultMemory_.commit();
        } else {
            resultMemory_.discard();
        }
    }

    result.ops = tue_.opCounts();
    result.tueBusyTime = tue_.busyTime();
    result.sequencerTime = config_.compiled
        ? compiled_.sequencerTime() : wcs_.sequencerTime();
    result.microInstructions = config_.compiled
        ? compiled_.instructionsExecuted()
        : wcs_.instructionsExecuted();
    result.stallTime = doubleBuffer_.stallTime();
    result.overruns = doubleBuffer_.overruns();
    if (disk) {
        result.diskTime = per_record ? seek_total : sweep_total;
        result.elapsed = std::max(result.diskTime,
                                  doubleBuffer_.lastCompletion());
    } else {
        result.elapsed = doubleBuffer_.lastCompletion();
    }
    result.satisfiers = resultMemory_.satisfierCount();
    result.resultOverflow = resultMemory_.overflowed();
    result.satisfiersDropped = resultMemory_.droppedSatisfiers();
    (void)file_offset;

    if (search_span.active()) {
        search_span.attr("clauses", result.clausesExamined);
        search_span.attr("accepted", result.hits());
        search_span.attr("stall_ticks", result.stallTime);
        search_span.attr("overruns", result.overruns);
        search_span.setSimTicks(result.elapsed);
    }
    if (observer_.metrics != nullptr) {
        obs::MetricsRegistry &m = *observer_.metrics;
        ++m.counter("fs2.searches", "FS2 search-mode runs");
        m.counter("fs2.clauses_examined",
                  "clause records run through the TUE") +=
            result.clausesExamined;
        m.counter("fs2.bytes_streamed",
                  "clause bytes streamed through the Double Buffer") +=
            result.bytesStreamed;
        m.counter("fs2.accepted", "clauses passing the filter") +=
            result.hits();
        m.counter("fs2.db.fills",
                  "records admitted to the Double Buffer") +=
            result.clausesExamined;
        m.counter("fs2.db.stall_ticks",
                  "simulated ticks the engine waited on the disk") +=
            result.stallTime;
        m.counter("fs2.db.overruns",
                  "deliveries that outran the filter") +=
            result.overruns;
        m.counter("fs2.micro_instructions",
                  "WCS microinstructions executed") +=
            result.microInstructions;
    }
    return result;
}

} // namespace clare::fs2
