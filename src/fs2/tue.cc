#include "fs2/tue.hh"

#include "support/logging.hh"

namespace clare::fs2 {

using pif::PifItem;
using unify::TueOp;

const char *
microTueOpName(MicroTueOp op)
{
    switch (op) {
      case MicroTueOp::None: return "NONE";
      case MicroTueOp::Match: return "MATCH";
      case MicroTueOp::DbStore: return "DB_STORE";
      case MicroTueOp::QueryStore: return "QUERY_STORE";
      case MicroTueOp::DbFetchMatch: return "DB_FETCH_MATCH";
      case MicroTueOp::QueryFetchMatch: return "QUERY_FETCH_MATCH";
      case MicroTueOp::SkipPair: return "SKIP_PAIR";
    }
    return "?";
}

namespace {

/** Render an operation's routes as the figures print them. */
std::string
describeRoutes(TueOp op)
{
    if (op == TueOp::Skip)
        return "(sequencer skip, no TUE activity)";
    const OperationSpec &spec = operationSpec(op);
    std::string s;
    for (std::size_t i = 0; i < spec.cycles.size(); ++i) {
        if (i)
            s += " ; ";
        if (spec.cycles.size() > 1) {
            s += "cycle ";
            s += std::to_string(i + 1);
            s += ": ";
        }
        s += "db: " + spec.cycles[i].dbRoute.describe();
        s += " | query: " + spec.cycles[i].queryRoute.describe();
    }
    return s;
}

} // namespace

TestUnificationEngine::TestUnificationEngine(int level, bool cross_binding)
    : engine_(level, cross_binding)
{
}

void
TestUnificationEngine::resetForClause(std::uint32_t db_slots,
                                      std::uint32_t q_slots)
{
    // The DB Memory is "reset to pointing to itself at the beginning
    // of each clause input"; the microprogram re-initializes the
    // query-variable cells likewise.
    engine_.reset(db_slots, q_slots);
}

bool
TestUnificationEngine::execute(MicroTueOp op, const PifItem &db_item,
                               const PifItem &q_item)
{
    // Validate that the map ROM dispatched sensibly.
    switch (op) {
      case MicroTueOp::None:
        clare_panic("TUE executed with no operation selected");
      case MicroTueOp::SkipPair:
        clare_assert(pif::isAnonVarItem(db_item) ||
                     pif::isAnonVarItem(q_item) ||
                     !engine_.crossBinding(),
                     "SKIP_PAIR dispatched on a non-skippable pair");
        break;
      case MicroTueOp::DbStore:
      case MicroTueOp::DbFetchMatch:
        clare_assert(pif::isDbVarItem(db_item),
                     "%s dispatched without a db variable",
                     microTueOpName(op));
        break;
      case MicroTueOp::QueryStore:
      case MicroTueOp::QueryFetchMatch:
        clare_assert(pif::isQueryVarItem(q_item),
                     "%s dispatched without a query variable",
                     microTueOpName(op));
        break;
      case MicroTueOp::Match:
        clare_assert(!pif::isNamedVarItem(db_item) &&
                     !pif::isNamedVarItem(q_item) &&
                     !pif::isAnonVarItem(db_item) &&
                     !pif::isAnonVarItem(q_item),
                     "MATCH dispatched on a variable item");
        break;
    }

    bool hit = engine_.matchPair(db_item, q_item,
        [this, &db_item, &q_item](TueOp performed) {
            ++opCounts_[static_cast<std::size_t>(performed)];
            Tick t = operationTime(performed);
            busyTime_ += t;
            if (tracing_) {
                trace_.push_back(TueTraceEntry{
                    performed, db_item, q_item, true,
                    operationTimeNs(performed),
                    describeRoutes(performed)});
            }
        });
    if (tracing_ && !trace_.empty())
        trace_.back().hit = hit;
    return hit;
}

void
TestUnificationEngine::resetStats()
{
    busyTime_ = 0;
    opCounts_ = unify::TueOpCounts{};
}

} // namespace clare::fs2
