#include "fs2/tue_datapath.hh"

#include "support/logging.hh"
#include "unify/pair_engine.hh"

namespace clare::fs2 {

using pif::PifItem;
using pif::TagClass;
using pif::tagClass;
using unify::TueOp;

TueDatapath::TueDatapath(int level)
    : level_(level)
{
    clare_assert(level >= 1 && level <= 3,
                 "TueDatapath level must be 1-3, got %d", level);
}

void
TueDatapath::loadQuery(const pif::EncodedArgs &query)
{
    // Set Query mode: the host writes the query stream through Sel4's
    // right branch.  Variable items address the binding-cell region,
    // which starts unbound (cells point to themselves).
    queryItems_ = query.items;
    queryCells_.assign(query.varSlots, TueWord{});
}

void
TueDatapath::resetForClause(std::uint32_t db_slots)
{
    // "The DB Memory ... is reset to pointing to itself at the
    // beginning of each clause input": a self-pointing cell reads as
    // unbound.  The microprogram re-initializes the query cells too.
    dbMemory_.assign(db_slots, TueWord{});
    for (auto &cell : queryCells_)
        cell = TueWord{};
}

TueWord
TueDatapath::readCell(const PifItem &var_item) const
{
    if (pif::isDbVarItem(var_item)) {
        clare_assert(var_item.content < dbMemory_.size(),
                     "DB Memory address %u out of range",
                     var_item.content);
        return dbMemory_[var_item.content];
    }
    clare_assert(pif::isQueryVarItem(var_item),
                 "cell read through a non-variable item");
    clare_assert(var_item.content < queryCells_.size(),
                 "Query Memory cell address %u out of range",
                 var_item.content);
    return queryCells_[var_item.content];
}

void
TueDatapath::writeCell(const PifItem &var_item, const PifItem &v)
{
    if (pif::isDbVarItem(var_item)) {
        clare_assert(var_item.content < dbMemory_.size(),
                     "DB Memory address %u out of range",
                     var_item.content);
        dbMemory_[var_item.content] = TueWord{true, v};
        return;
    }
    clare_assert(pif::isQueryVarItem(var_item),
                 "cell write through a non-variable item");
    clare_assert(var_item.content < queryCells_.size(),
                 "Query Memory cell address %u out of range",
                 var_item.content);
    queryCells_[var_item.content] = TueWord{true, v};
}

bool
TueDatapath::ultimate(PifItem item, PifItem &out) const
{
    // The microprogram recycles the fetched word through the memory
    // address port while its type field stays a variable reference
    // (figures 11/12, cycles 2..); a bounded visit count treats
    // reference cycles as unbound.
    std::size_t guard = dbMemory_.size() + queryCells_.size() + 2;
    while (pif::isNamedVarItem(item)) {
        if (guard-- == 0)
            return false;
        TueWord word = readCell(item);
        if (!word.bound)
            return false;
        item = word.item;
    }
    if (pif::isAnonVarItem(item))
        return false;
    out = item;
    return true;
}

TueExecResult
TueDatapath::dbVarOp(const PifItem &db_item, const PifItem &q_item)
{
    TueExecResult result;
    if (tagClass(db_item.tag) == TagClass::FirstDbVar) {
        // DB_STORE (fig. 7): query data through Sel6 -> Query Memory
        // -> Reg3 into the DB Memory input port, addressed by the
        // In-bus -> Sel1 -> Sel2 path.
        writeCell(db_item, q_item);
        result.performed.push_back(TueOp::DbStore);
        result.hit = true;
        return result;
    }

    // Subsequent DB variable: the In-bus addresses the B port (fig. 9).
    TueWord word = readCell(db_item);
    if (!word.bound) {
        result.performed.push_back(TueOp::DbFetch);
        result.hit = true;
        return result;
    }
    if (pif::isNamedVarItem(word.item)) {
        // DB_CROSS_BOUND_FETCH (fig. 11): the fetched reference is
        // recycled through Reg1 to the address port.
        result.performed.push_back(TueOp::DbCrossBoundFetch);
        PifItem final_value;
        if (!ultimate(word.item, final_value)) {
            result.hit = true;
            return result;
        }
        if (pif::isNamedVarItem(q_item)) {
            PifItem q_final;
            if (!ultimate(q_item, q_final)) {
                result.hit = true;
                return result;
            }
            result.hit = unify::compareItemHeaders(level_, final_value,
                                                   q_final);
            return result;
        }
        result.hit = unify::compareItemHeaders(level_, final_value,
                                               q_item);
        return result;
    }
    result.performed.push_back(TueOp::DbFetch);
    if (pif::isNamedVarItem(q_item)) {
        // The binding stands in for the database side against the
        // query-variable rules.
        TueExecResult sub = queryVarOp(word.item, q_item);
        result.hit = sub.hit;
        for (TueOp op : sub.performed)
            result.performed.push_back(op);
        return result;
    }
    result.hit = unify::compareItemHeaders(level_, word.item, q_item);
    return result;
}

TueExecResult
TueDatapath::queryVarOp(const PifItem &db_item, const PifItem &q_item)
{
    TueExecResult result;
    if (tagClass(q_item.tag) == TagClass::FirstQueryVar) {
        // QUERY_STORE (fig. 8): database data through Sel1 -> Sel5 ->
        // Sel4 into the Query Memory, addressed via Sel6.
        writeCell(q_item, db_item);
        result.performed.push_back(TueOp::QueryStore);
        result.hit = true;
        return result;
    }

    TueWord word = readCell(q_item);
    if (!word.bound) {
        result.performed.push_back(TueOp::QueryFetch);
        result.hit = true;
        return result;
    }
    if (pif::isNamedVarItem(word.item)) {
        // QUERY_CROSS_BOUND_FETCH (fig. 12).
        result.performed.push_back(TueOp::QueryCrossBoundFetch);
        PifItem final_value;
        if (!ultimate(word.item, final_value)) {
            result.hit = true;
            return result;
        }
        result.hit = unify::compareItemHeaders(level_, final_value,
                                               db_item);
        return result;
    }
    result.performed.push_back(TueOp::QueryFetch);
    result.hit = unify::compareItemHeaders(level_, word.item, db_item);
    return result;
}

TueExecResult
TueDatapath::execute(const PifItem &db_item, std::size_t q_index)
{
    clare_assert(q_index < queryItems_.size(),
                 "query item index %zu out of range", q_index);
    const PifItem &q_item = queryItems_[q_index];

    TueExecResult result;
    if (pif::isAnonVarItem(db_item) || pif::isAnonVarItem(q_item)) {
        result.performed.push_back(TueOp::Skip);
        result.hit = true;
        return result;
    }

    // Two first occurrences bind mutually (cf. the functional core).
    if (tagClass(db_item.tag) == TagClass::FirstDbVar &&
        tagClass(q_item.tag) == TagClass::FirstQueryVar) {
        writeCell(db_item, q_item);
        result.performed.push_back(TueOp::DbStore);
        writeCell(q_item, db_item);
        result.performed.push_back(TueOp::QueryStore);
        result.hit = true;
        return result;
    }

    if (pif::isDbVarItem(db_item))
        return dbVarOp(db_item, q_item);
    if (pif::isQueryVarItem(q_item))
        return queryVarOp(db_item, q_item);

    // MATCH (fig. 6): In-bus -> Sel1 to the A port; Sel6 -> Query
    // Memory -> Sel3 to the B port.
    result.performed.push_back(TueOp::Match);
    result.hit = unify::compareItemHeaders(level_, db_item, q_item);
    return result;
}

const TueWord &
TueDatapath::dbCell(std::uint32_t slot) const
{
    clare_assert(slot < dbMemory_.size(), "db cell %u out of range",
                 slot);
    return dbMemory_[slot];
}

const TueWord &
TueDatapath::queryCell(std::uint32_t slot) const
{
    clare_assert(slot < queryCells_.size(),
                 "query cell %u out of range", slot);
    return queryCells_[slot];
}

const PifItem &
TueDatapath::queryItem(std::size_t index) const
{
    clare_assert(index < queryItems_.size(),
                 "query item %zu out of range", index);
    return queryItems_[index];
}

} // namespace clare::fs2
