#include "fs2/compiled_routines.hh"

#include "support/logging.hh"

namespace clare::fs2 {

using pif::PifItem;
using pif::TagClass;

CompiledMatcher::CompiledMatcher(int level, bool cross_binding,
                                 WcsConfig config)
    : config_(config)
{
    for (std::size_t d = 0; d < pif::kTagClassCount; ++d)
        for (std::size_t q = 0; q < pif::kTagClassCount; ++q)
            table_[d * pif::kTagClassCount + q] =
                selectRoutine(static_cast<TagClass>(d),
                              static_cast<TagClass>(q), level,
                              cross_binding);
}

void
CompiledMatcher::micro()
{
    // Same per-instruction order as the interpreter loop: runaway
    // guard first, then the instruction is charged.
    if (clauseSteps_ >= config_.maxStepsPerClause)
        clare_panic("microprogram exceeded %llu steps on one clause",
                    static_cast<unsigned long long>(
                        config_.maxStepsPerClause));
    ++clauseSteps_;
    ++instructions_;
    sequencerTime_ += config_.sequencerOverhead;
}

MatchRoutine
CompiledMatcher::lookup(TagClass db_class, TagClass q_class) const
{
    clare_assert(static_cast<std::size_t>(db_class) <
                         pif::kTagClassCount &&
                     static_cast<std::size_t>(q_class) <
                         pif::kTagClassCount,
                 "tag class pair (%u, %u) outside the %zux%zu map ROM",
                 static_cast<unsigned>(db_class),
                 static_cast<unsigned>(q_class), pif::kTagClassCount,
                 pif::kTagClassCount);
    return table_[static_cast<std::size_t>(db_class) *
                      pif::kTagClassCount +
                  static_cast<std::size_t>(q_class)];
}

const PifItem &
CompiledMatcher::currentDb() const
{
    clare_assert(di_ < dbItems_->size(),
                 "db cursor %zu beyond stream of %zu items", di_,
                 dbItems_->size());
    return (*dbItems_)[di_];
}

const PifItem &
CompiledMatcher::currentQ() const
{
    clare_assert(qi_ < query_->items.size(),
                 "query cursor %zu beyond stream of %zu items", qi_,
                 query_->items.size());
    return query_->items[qi_];
}

void
CompiledMatcher::pushDepth()
{
    // The sequencer checks for stack overflow before pushing the
    // return address.
    clare_assert(depth_ < 16, "microprogram stack overflow");
    ++depth_;
}

void
CompiledMatcher::popDepth()
{
    clare_assert(depth_ > 0, "microprogram stack underflow");
    --depth_;
}

bool
CompiledMatcher::dispatchPair(TestUnificationEngine &tue)
{
    // CallMap: push the return address, then dispatch on the type
    // tags of the current item pair.
    micro();
    pushDepth();
    const TagClass dc = pif::tagClass(currentDb().tag);
    const TagClass qc = pif::tagClass(currentQ().tag);
    const MatchRoutine routine = lookup(dc, qc);
    clare_assert(routine != MatchRoutine::Trap,
                 "map ROM trap on pair (%s, %s)",
                 pif::tagClassName(dc), pif::tagClassName(qc));
    switch (routine) {
      case MatchRoutine::Skip:
        return runLeaf(tue, MicroTueOp::SkipPair, false);
      case MatchRoutine::DbStore:
        return runLeaf(tue, MicroTueOp::DbStore, false);
      case MatchRoutine::DbFetch:
        return runLeaf(tue, MicroTueOp::DbFetchMatch, true);
      case MatchRoutine::QueryStore:
        return runLeaf(tue, MicroTueOp::QueryStore, false);
      case MatchRoutine::QueryFetch:
        return runLeaf(tue, MicroTueOp::QueryFetchMatch, true);
      case MatchRoutine::MatchSimple:
        return runLeaf(tue, MicroTueOp::Match, true);
      case MatchRoutine::MatchComplex:
        return runMatchComplex(tue);
      case MatchRoutine::Trap:
        break;
    }
    clare_panic("unreachable routine dispatch");
}

bool
CompiledMatcher::runLeaf(TestUnificationEngine &tue, MicroTueOp op,
                         bool check_hit)
{
    // [tueOp]
    micro();
    const bool hit = tue.execute(op, currentDb(), currentQ());
    if (check_hit) {
        // [JNCC(HIT) -> reject]
        micro();
        if (!hit) {
            // [REJECT]
            micro();
            return false;
        }
    }
    // [RET adv.db adv.q]
    micro();
    ++di_;
    ++qi_;
    popDepth();
    return true;
}

bool
CompiledMatcher::runMatchComplex(TestUnificationEngine &tue)
{
    // [tue=Match]  header comparison
    micro();
    const bool hit =
        tue.execute(MicroTueOp::Match, currentDb(), currentQ());
    // [JNCC(HIT) -> reject]
    micro();
    if (!hit) {
        // [REJECT]
        micro();
        return false;
    }
    // [CONT adv.db adv.q]  step past the headers
    micro();
    ++di_;
    ++qi_;

    // elemloop: walk first-level element pairs on the shared counters.
    for (;;) {
        // [JCC(DBCTR=0) -> rtc_done]
        micro();
        if (dbCtr_ == 0)
            break;
        // [JCC(QCTR=0) -> rtc_done]
        micro();
        if (qCtr_ == 0)
            break;
        // [CALLMAP]  element pair dispatch (may nest; the nested walk
        // runs on these same counters — see the file header).
        if (!dispatchPair(tue))
            return false;
        // [JMP elemloop dec.db dec.q]
        micro();
        clare_assert(dbCtr_ > 0, "db element counter underflow");
        --dbCtr_;
        clare_assert(qCtr_ > 0, "query element counter underflow");
        --qCtr_;
    }
    // [rtc_done: RET]  leftovers drained by 'flush'
    micro();
    popDepth();
    return true;
}

void
CompiledMatcher::runFlush()
{
    pushDepth();
    for (;;) {
        // [JCC(DBCTR=0) -> flush_q]
        micro();
        if (dbCtr_ == 0)
            break;
        // [JMP flush adv.db dec.db]
        micro();
        ++di_;
        clare_assert(dbCtr_ > 0, "db element counter underflow");
        --dbCtr_;
    }
    for (;;) {
        // [flush_q: JCC(QCTR=0) -> flush_done]
        micro();
        if (qCtr_ == 0)
            break;
        // [JMP flush_q adv.q dec.q]
        micro();
        ++qi_;
        clare_assert(qCtr_ > 0, "query element counter underflow");
        --qCtr_;
    }
    // [flush_done: RET]
    micro();
    popDepth();
}

ClauseVerdict
CompiledMatcher::runClause(TestUnificationEngine &tue,
                           const std::vector<PifItem> &db_items,
                           std::uint32_t arity,
                           const pif::EncodedArgs &query)
{
    dbItems_ = &db_items;
    query_ = &query;
    di_ = 0;
    qi_ = 0;
    dbCtr_ = 0;
    qCtr_ = 0;
    depth_ = 0;
    clauseSteps_ = 0;

    // [entry: ld.arg]
    micro();
    std::uint32_t arg_ctr = arity;

    for (;;) {
        // [argloop: JCC(ARGCTR=0) -> accept]
        micro();
        if (arg_ctr == 0) {
            // [accept: ACCEPT]
            micro();
            return ClauseVerdict::Accepted;
        }
        // [ldctr]  element counters from the argument headers
        micro();
        {
            const PifItem &d = currentDb();
            const PifItem &q = currentQ();
            dbCtr_ = pif::isInlineComplexTag(d.tag)
                ? pif::tagArity(d.tag) : 0;
            qCtr_ = pif::isInlineComplexTag(q.tag)
                ? pif::tagArity(q.tag) : 0;
        }
        // [CALLMAP]  argument pair dispatch
        if (!dispatchPair(tue))
            return ClauseVerdict::Rejected;
        // [CALL flush]  drain any unconsumed elements
        micro();
        runFlush();
        // [JMP argloop dec.arg]
        micro();
        clare_assert(arg_ctr > 0, "argument counter underflow");
        --arg_ctr;
    }
}

} // namespace clare::fs2
