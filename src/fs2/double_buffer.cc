#include "fs2/double_buffer.hh"

#include "support/logging.hh"

namespace clare::fs2 {

DoubleBuffer::DoubleBuffer(std::uint32_t bank_bytes)
    : bankBytes_(bank_bytes)
{
    clare_assert(bank_bytes > 0, "bank size must be positive");
}

Tick
DoubleBuffer::admit(Tick delivered, Tick processing,
                    std::uint32_t clause_bytes)
{
    if (clause_bytes > bankBytes_)
        clare_fatal("clause record of %u bytes exceeds the %u-byte "
                    "Double Buffer bank", clause_bytes, bankBytes_);

    // Examination starts once the clause has arrived and the engine
    // finished the previous clause.
    Tick start = delivered > busyUntil_ ? delivered : busyUntil_;
    if (delivered > busyUntil_)
        stallTime_ += delivered - busyUntil_;

    // Overrun check: with two banks, this clause's delivery must not
    // complete while the clause *before the previous one* is still
    // being examined.  Equivalently, the previous examination must
    // have started (freeing the third-oldest bank) by now; we track it
    // conservatively as "previous examination still running past this
    // delivery while its own delivery was already complete".  The
    // previous delivery counts as complete when it carries the *same*
    // timestamp (back-to-back DMA chunks finishing on one Tick), so
    // the comparison is <=, not <.
    if (havePrev_ && busyUntil_ > delivered &&
        prevDelivered_ <= delivered) {
        ++overruns_;
    }

    busyUntil_ = start + processing;
    prevDelivered_ = delivered;
    havePrev_ = true;
    ++clauses_;
    return busyUntil_;
}

void
DoubleBuffer::reset()
{
    busyUntil_ = 0;
    prevDelivered_ = 0;
    havePrev_ = false;
    stallTime_ = 0;
    overruns_ = 0;
    clauses_ = 0;
}

} // namespace clare::fs2
