/**
 * @file
 * Microinstruction format and micro-assembler for the FS2 Writable
 * Control Store.
 *
 * The WCS holds up to 2048 microinstructions of 64 bits (section 3.1).
 * Each instruction carries a sequencer operation (AMD 2910A style:
 * continue, jump, conditional jump, map-ROM dispatch, subroutine call
 * and return), a condition select, an 11-bit branch address, a TUE
 * operation, and datapath control flags (stream advances, the two
 * element counters the WCS keeps for list/structure matching, and the
 * argument counter).
 *
 * Bit layout of a microword:
 *
 *   bits  0-3   sequencer op
 *   bits  4-5   condition select
 *   bits  8-18  branch address (11 bits)
 *   bits 19-21  TUE operation
 *   bit  24     advance database stream one item
 *   bit  25     advance query stream one item
 *   bit  26     load element counters from the current headers
 *   bit  27     decrement database element counter
 *   bit  28     decrement query element counter
 *   bit  29     decrement argument counter
 *   bit  30     load argument counter from the clause record arity
 */

#ifndef CLARE_FS2_MICROCODE_HH
#define CLARE_FS2_MICROCODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fs2/tue.hh"

namespace clare::fs2 {

/** Capacity of the WCS fast RAM in microwords. */
constexpr std::size_t kControlStoreWords = 2048;

/** Sequencer operations. */
enum class SeqOp : std::uint8_t
{
    Cont = 0,       ///< fall through to the next instruction
    Jump,           ///< unconditional jump to addr
    JumpIfCond,     ///< jump when the selected condition is true
    JumpIfNotCond,  ///< jump when the selected condition is false
    CallMap,        ///< push return, jump via the map ROM
    Call,           ///< push return, jump to addr
    Ret,            ///< pop return address
    Accept,         ///< clause is a satisfier; stop
    Reject,         ///< clause fails; stop
};

/** Conditions testable by the sequencer. */
enum class Cond : std::uint8_t
{
    Hit = 0,        ///< comparator HIT from the last TUE operation
    DbCtrZero,      ///< database element counter is zero
    QCtrZero,       ///< query element counter is zero
    ArgCtrZero,     ///< argument counter is zero
};

/** A decoded microinstruction. */
struct MicroInstruction
{
    SeqOp seqOp = SeqOp::Cont;
    Cond cond = Cond::Hit;
    std::uint16_t addr = 0;
    MicroTueOp tueOp = MicroTueOp::None;
    bool advanceDb = false;
    bool advanceQuery = false;
    bool loadCounters = false;
    bool decDbCtr = false;
    bool decQCtr = false;
    bool decArgCtr = false;
    bool loadArgCtr = false;

    /** Pack into the 64-bit microword wire format. */
    std::uint64_t encode() const;

    /** Unpack from a 64-bit microword. */
    static MicroInstruction decode(std::uint64_t word);

    /** One-line disassembly. */
    std::string disassemble() const;
};

/** An assembled microprogram. */
struct Microprogram
{
    std::vector<std::uint64_t> words;
    std::uint16_t entry = 0;

    std::size_t size() const { return words.size(); }
};

/**
 * Assembles microprograms with symbolic labels.  Forward references
 * are resolved at finish().
 */
class MicroAssembler
{
  public:
    /** Current emission address. */
    std::uint16_t here() const;

    /** Define a label at the current address. */
    void label(const std::string &name);

    /** Emit an instruction; addr fields may reference labels. */
    void emit(MicroInstruction insn, const std::string &target = "");

    /** Resolve labels and return the program. */
    Microprogram finish(const std::string &entry_label);

    /** Address of a defined label (post-finish use). */
    std::uint16_t address(const std::string &name) const;

  private:
    struct Fixup
    {
        std::size_t index;
        std::string target;
    };

    std::vector<MicroInstruction> insns_;
    std::vector<Fixup> fixups_;
    std::vector<std::pair<std::string, std::uint16_t>> labels_;

    std::uint16_t lookup(const std::string &name) const;
};

/** Routine entry points the map ROM can dispatch to. */
struct RoutineAddresses
{
    std::uint16_t skip = 0;
    std::uint16_t dbStore = 0;
    std::uint16_t dbFetch = 0;
    std::uint16_t queryStore = 0;
    std::uint16_t queryFetch = 0;
    std::uint16_t matchSimple = 0;
    std::uint16_t matchComplex = 0;
};

/**
 * Assemble the standard partial-test-unification microprogram for a
 * query (section 3: "When a query is posed, it is translated into
 * microprogram instructions").  The program polls for a clause, walks
 * the argument pairs dispatching through the map ROM, walks
 * first-level elements of in-line complex pairs with the two element
 * counters, and accepts or rejects the clause.
 *
 * @param level matching level (1-3); below 3 the complex-element walk
 *        is omitted
 * @param out_routines receives the routine entry addresses for the
 *        map ROM
 */
Microprogram assembleMatchProgram(int level,
                                  RoutineAddresses &out_routines);

} // namespace clare::fs2

#endif // CLARE_FS2_MICROCODE_HH
