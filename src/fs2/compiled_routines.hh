/**
 * @file
 * AOT-compiled FS2 match routines: the partial-test-unification
 * microprogram lowered to straight-line host code.
 *
 * The Wcs interpreter fetches and decodes one 64-bit microword per
 * step; this matcher executes the same control flow as compiled C++
 * (the map ROM becomes a 14x14 routine table built from the shared
 * selectRoutine() rule, routines become member functions), while
 * accumulating the identical accounting stream: every microword the
 * interpreter would have executed is charged to the instruction
 * counter and sequencer clock at the same point, every TUE operation
 * fires on the same item pair in the same order, and every guard the
 * sequencer enforces (stream bounds, counter underflow, 16-deep
 * subroutine stack, the map-ROM trap, the runaway-step budget) aborts
 * identically.  The interpreter therefore remains the oracle: the
 * EngineEquivalence fuzz compares verdicts, Table-1 op counts, tick
 * streams, and instruction counts across both.
 *
 * Hardware quirk preserved deliberately: the WCS has ONE pair of
 * element counters with no save/restore across map-ROM dispatches, so
 * a nested in-line complex element walks the same counters its parent
 * was using.  The counters here are member state, not locals, for
 * exactly that reason.
 */

#ifndef CLARE_FS2_COMPILED_ROUTINES_HH
#define CLARE_FS2_COMPILED_ROUTINES_HH

#include <array>
#include <cstdint>
#include <vector>

#include "fs2/map_rom.hh"
#include "fs2/tue.hh"
#include "fs2/wcs.hh"
#include "pif/encoder.hh"
#include "support/sim_time.hh"

namespace clare::fs2 {

/** The compiled-routine drop-in for the Wcs interpreter. */
class CompiledMatcher
{
  public:
    /**
     * Build the routine dispatch table for a matching configuration.
     * The (level, cross_binding) pair must match the TUE the routines
     * will drive, exactly as the assembled microprogram must.
     */
    CompiledMatcher(int level, bool cross_binding,
                    WcsConfig config = {});

    /** Mirror of Wcs::runClause (same contract, same accounting). */
    ClauseVerdict runClause(TestUnificationEngine &tue,
                            const std::vector<pif::PifItem> &db_items,
                            std::uint32_t arity,
                            const pif::EncodedArgs &query);

    /** Microinstructions the interpreter would have executed. */
    std::uint64_t instructionsExecuted() const { return instructions_; }
    Tick sequencerTime() const { return sequencerTime_; }

    void
    resetStats()
    {
        instructions_ = 0;
        sequencerTime_ = 0;
    }

  private:
    /** Charge one microinstruction's worth of accounting. */
    void micro();

    /** Table lookup with the same backstop as MapRom::lookup. */
    MatchRoutine lookup(pif::TagClass db_class,
                        pif::TagClass q_class) const;

    const pif::PifItem &currentDb() const;
    const pif::PifItem &currentQ() const;

    /**
     * Dispatch the current item pair through the routine table (one
     * CallMap).  Returns false when the routine rejected the clause
     * (the Reject microword is already charged).
     */
    bool dispatchPair(TestUnificationEngine &tue);

    bool runLeaf(TestUnificationEngine &tue, MicroTueOp op,
                 bool check_hit);
    bool runMatchComplex(TestUnificationEngine &tue);
    void runFlush();

    void pushDepth();
    void popDepth();

    WcsConfig config_;
    /** 14x14 MatchRoutine table (the compiled map ROM). */
    std::array<MatchRoutine,
               pif::kTagClassCount * pif::kTagClassCount> table_;

    std::uint64_t instructions_ = 0;
    Tick sequencerTime_ = 0;

    // Per-clause machine state (members, not locals: nested in-line
    // complex dispatches share the element counters, see file header).
    const std::vector<pif::PifItem> *dbItems_ = nullptr;
    const pif::EncodedArgs *query_ = nullptr;
    std::size_t di_ = 0;
    std::size_t qi_ = 0;
    std::uint32_t dbCtr_ = 0;
    std::uint32_t qCtr_ = 0;
    std::size_t depth_ = 0;
    std::uint64_t clauseSteps_ = 0;
};

} // namespace clare::fs2

#endif // CLARE_FS2_COMPILED_ROUTINES_HH
