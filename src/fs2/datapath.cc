#include "fs2/datapath.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace clare::fs2 {

using unify::TueOp;

std::uint64_t
componentDelayNs(Component c)
{
    switch (c) {
      case Component::DoubleBufferOut: return 20;
      case Component::Sel1:
      case Component::Sel2:
      case Component::Sel3:
      case Component::Sel4:
      case Component::Sel5:
      case Component::Sel6:
        return 20;
      case Component::QueryMemoryRead: return 35;
      case Component::QueryMemoryWrite: return 35;
      case Component::DbMemoryRead: return 25;
      case Component::DbMemoryWrite: return 20;
      case Component::Reg1:
      case Component::Reg2:
      case Component::Reg3:
        return 20;
      case Component::Comparator: return 30;
      case Component::MicroBits: return 0;
    }
    clare_panic("unknown component");
}

const char *
componentName(Component c)
{
    switch (c) {
      case Component::DoubleBufferOut: return "Double Buffer";
      case Component::Sel1: return "Sel1";
      case Component::Sel2: return "Sel2";
      case Component::Sel3: return "Sel3";
      case Component::Sel4: return "Sel4";
      case Component::Sel5: return "Sel5";
      case Component::Sel6: return "Sel6";
      case Component::QueryMemoryRead: return "Query Memory";
      case Component::QueryMemoryWrite: return "Query Memory (write)";
      case Component::DbMemoryRead: return "DB Memory";
      case Component::DbMemoryWrite: return "DB Memory (write)";
      case Component::Reg1: return "Reg1";
      case Component::Reg2: return "Reg2";
      case Component::Reg3: return "Reg3";
      case Component::Comparator: return "Comparator";
      case Component::MicroBits: return "ub13-20";
    }
    return "?";
}

std::uint64_t
Route::delayNs() const
{
    std::uint64_t t = 0;
    for (Component c : legs)
        t += componentDelayNs(c);
    return t;
}

std::string
Route::describe() const
{
    std::string s;
    for (std::size_t i = 0; i < legs.size(); ++i) {
        if (i)
            s += " -> ";
        s += componentName(legs[i]);
    }
    return s.empty() ? "(idle)" : s;
}

std::uint64_t
Cycle::delayNs() const
{
    return std::max(dbRoute.delayNs(), queryRoute.delayNs());
}

std::uint64_t
OperationSpec::executionTimeNs() const
{
    std::uint64_t t = 0;
    for (const Cycle &cycle : cycles)
        t += cycle.delayNs();
    switch (finalAction) {
      case FinalAction::Comparison:
        t += componentDelayNs(Component::Comparator);
        break;
      case FinalAction::DbMemoryWrite:
        t += componentDelayNs(Component::DbMemoryWrite);
        break;
      case FinalAction::QueryMemoryWrite:
        t += componentDelayNs(Component::QueryMemoryWrite);
        break;
    }
    return t;
}

namespace {

using C = Component;

/**
 * The operation specifications transcribed from figures 6-12.  Each
 * cycle's two routes run in parallel; the figures take the critical
 * path per cycle and add the closing comparison or write.
 *
 * A route that is "set in an earlier cycle" (the figures' phrase for
 * a side that holds its value) is represented as an empty route.
 */
const std::map<TueOp, OperationSpec> &
specTable()
{
    static const std::map<TueOp, OperationSpec> table = [] {
        std::map<TueOp, OperationSpec> t;

        // Fig. 6: MATCH.  db: DoubleBuffer->Sel1 (40).
        // query: Sel6->QueryMemory->Sel3 (75).  +comparison = 105.
        t[TueOp::Match] = OperationSpec{
            TueOp::Match, 6,
            {Cycle{Route{{C::DoubleBufferOut, C::Sel1}},
                   Route{{C::Sel6, C::QueryMemoryRead, C::Sel3}}}},
            FinalAction::Comparison};

        // Fig. 7: DB_STORE.  db: DoubleBuffer->Sel1->Sel2 (60, address).
        // query: Sel6->QueryMemory->Reg3 (75, data).  +DB write = 95.
        t[TueOp::DbStore] = OperationSpec{
            TueOp::DbStore, 7,
            {Cycle{Route{{C::DoubleBufferOut, C::Sel1, C::Sel2}},
                   Route{{C::Sel6, C::QueryMemoryRead, C::Reg3}}}},
            FinalAction::DbMemoryWrite};

        // Fig. 8: QUERY_STORE.  db: DoubleBuffer->Sel1->Sel5->Sel4
        // (80, data).  query: Sel6 (20, address).  +Query write = 115.
        t[TueOp::QueryStore] = OperationSpec{
            TueOp::QueryStore, 8,
            {Cycle{Route{{C::DoubleBufferOut, C::Sel1, C::Sel5, C::Sel4}},
                   Route{{C::Sel6}}}},
            FinalAction::QueryMemoryWrite};

        // Fig. 9: DB_FETCH.  db: DoubleBuffer->DBMemory->Sel1 (65).
        // query: Sel6->QueryMemory->Sel3 (75).  +comparison = 105.
        t[TueOp::DbFetch] = OperationSpec{
            TueOp::DbFetch, 9,
            {Cycle{Route{{C::DoubleBufferOut, C::DbMemoryRead, C::Sel1}},
                   Route{{C::Sel6, C::QueryMemoryRead, C::Sel3}}}},
            FinalAction::Comparison};

        // Fig. 10: QUERY_FETCH.  Cycle 1 query route reaches through
        // the DB Memory A port (Sel6->QueryMemory->Sel3->Sel2->DBMem,
        // 120); cycle 2 routes the binding via Sel3 (20); the db side
        // sets up in parallel with cycle 1 (40).  +comparison = 170.
        t[TueOp::QueryFetch] = OperationSpec{
            TueOp::QueryFetch, 10,
            {Cycle{Route{{C::DoubleBufferOut, C::Sel1}},
                   Route{{C::Sel6, C::QueryMemoryRead, C::Sel3, C::Sel2,
                          C::DbMemoryRead}}},
             Cycle{Route{},
                   Route{{C::Sel3}}}},
            FinalAction::Comparison};

        // Fig. 11: DB_CROSS_BOUND_FETCH.  Cycle 1: db
        // DoubleBuffer->DBMemory->Reg1 (65) in parallel with query
        // Sel6->QueryMemory->Sel3 (75); cycle 2: db
        // Reg1->DBMemory->Sel1 (65), query holds.  +comparison = 170.
        t[TueOp::DbCrossBoundFetch] = OperationSpec{
            TueOp::DbCrossBoundFetch, 11,
            {Cycle{Route{{C::DoubleBufferOut, C::DbMemoryRead, C::Reg1}},
                   Route{{C::Sel6, C::QueryMemoryRead, C::Sel3}}},
             Cycle{Route{{C::Reg1, C::DbMemoryRead, C::Sel1}},
                   Route{}}},
            FinalAction::Comparison};

        // Fig. 12: QUERY_CROSS_BOUND_FETCH.  Cycle 1: db
        // DoubleBuffer->Sel1 (40), query
        // Sel6->QueryMemory->Sel3->Sel2 (95); cycle 2: query
        // DBMemory->Sel3->Sel2 (65); cycle 3: query DBMemory->Sel3
        // (45).  +comparison = 235.
        t[TueOp::QueryCrossBoundFetch] = OperationSpec{
            TueOp::QueryCrossBoundFetch, 12,
            {Cycle{Route{{C::DoubleBufferOut, C::Sel1}},
                   Route{{C::Sel6, C::QueryMemoryRead, C::Sel3, C::Sel2}}},
             Cycle{Route{},
                   Route{{C::DbMemoryRead, C::Sel3, C::Sel2}}},
             Cycle{Route{},
                   Route{{C::DbMemoryRead, C::Sel3}}}},
            FinalAction::Comparison};

        return t;
    }();
    return table;
}

} // namespace

const OperationSpec &
operationSpec(TueOp op)
{
    const auto &table = specTable();
    auto it = table.find(op);
    clare_assert(it != table.end(),
                 "no datapath specification for op %s", tueOpName(op));
    return it->second;
}

std::uint64_t
operationTimeNs(TueOp op)
{
    if (op == TueOp::Skip)
        return 0;   // no TUE datapath activity
    return operationSpec(op).executionTimeNs();
}

Tick
operationTime(TueOp op)
{
    return nanoseconds(operationTimeNs(op));
}

double
worstCaseFilterRate()
{
    std::uint64_t worst = 0;
    for (TueOp op : {TueOp::Match, TueOp::DbStore, TueOp::QueryStore,
                     TueOp::DbFetch, TueOp::QueryFetch,
                     TueOp::DbCrossBoundFetch,
                     TueOp::QueryCrossBoundFetch}) {
        worst = std::max(worst, operationTimeNs(op));
    }
    return 1e9 / static_cast<double>(worst);
}

} // namespace clare::fs2
