/**
 * @file
 * The Map ROM: jump vectors dispatching the microprogram on the type
 * fields of the current database and query items (section 3.1).
 *
 * Only the type tags of db-data and Q-data reach the ROM's address
 * port; the 14 tag classes on each side index a 14x14 vector table
 * whose entries are microprogram routine addresses.
 */

#ifndef CLARE_FS2_MAP_ROM_HH
#define CLARE_FS2_MAP_ROM_HH

#include <array>
#include <cstdint>

#include "fs2/microcode.hh"
#include "pif/type_tags.hh"
#include "support/logging.hh"

namespace clare::fs2 {

/** Entry value marking an impossible type pair. */
constexpr std::uint16_t kMapTrap = 0xffff;

/**
 * The microroutine a map entry dispatches to.  Trap marks type pairs
 * that cannot occur in a well-formed stream (query-variable classes on
 * the database side and vice versa).
 */
enum class MatchRoutine : std::uint8_t
{
    Trap,
    Skip,
    DbStore,
    DbFetch,
    QueryStore,
    QueryFetch,
    MatchSimple,
    MatchComplex,
};

/**
 * The single source of truth for the 14x14 dispatch rule, shared by
 * MapRom::program (which lowers it to microprogram addresses) and by
 * the compiled routines (which lower it to direct calls) — the two
 * engines cannot disagree on dispatch.
 */
MatchRoutine selectRoutine(pif::TagClass db_class, pif::TagClass q_class,
                           int level, bool cross_binding);

/** The programmable jump-vector ROM. */
class MapRom
{
  public:
    MapRom() { entries_.fill(kMapTrap); }

    /**
     * Program the ROM for a matching configuration: dispatch anonymous
     * variables to skip, database variables to store/fetch, query
     * variables to store/fetch (or all variables to skip when
     * cross-binding checks are off), in-line complex pairs to the
     * element-walking routine (level 3), and everything else to the
     * simple header match.
     */
    static MapRom program(int level, bool cross_binding,
                          const RoutineAddresses &routines);

    /**
     * Look up the routine address for a type-class pair.  The classes
     * must be the decoded enum values: a raw tag byte corrupted after
     * decoding would otherwise index past the 14x14 table, so the
     * bound is checked here (the load path rejects corrupt tags with
     * a typed CorruptionError before they ever reach the engine; this
     * assert is the engine-side backstop).
     */
    std::uint16_t
    lookup(pif::TagClass db_class, pif::TagClass q_class) const
    {
        clare_assert(static_cast<std::size_t>(db_class) <
                             pif::kTagClassCount &&
                         static_cast<std::size_t>(q_class) <
                             pif::kTagClassCount,
                     "tag class pair (%u, %u) outside the %zux%zu map "
                     "ROM",
                     static_cast<unsigned>(db_class),
                     static_cast<unsigned>(q_class),
                     pif::kTagClassCount, pif::kTagClassCount);
        return entries_[index(db_class, q_class)];
    }

  private:
    std::array<std::uint16_t,
               pif::kTagClassCount * pif::kTagClassCount> entries_;

    static std::size_t
    index(pif::TagClass db_class, pif::TagClass q_class)
    {
        return static_cast<std::size_t>(db_class) * pif::kTagClassCount +
            static_cast<std::size_t>(q_class);
    }
};

} // namespace clare::fs2

#endif // CLARE_FS2_MAP_ROM_HH
