/**
 * @file
 * The complete second stage filter (FS2), integrating the Writable
 * Control Store, map ROM, Test Unification Engine, Double Buffer and
 * Result Memory behind the host-visible protocol of section 3:
 *
 *   1. Microprogramming mode — the query is translated into a
 *      microprogram and loaded into the WCS.
 *   2. Set Query mode — the compiled query arguments are written into
 *      the Query Memory.
 *   3. Search mode — clause records stream from the (modeled) disk
 *      through the Double Buffer; the TUE examines each; satisfiers
 *      are captured in the Result Memory.
 *   4. Read Result mode — the captured satisfiers are read back.
 *
 * The engine reports both functional results (accepted ordinals,
 * operation counts) and timing (TUE busy time, disk-bound elapsed
 * time, stalls, overruns).
 */

#ifndef CLARE_FS2_FS2_ENGINE_HH
#define CLARE_FS2_FS2_ENGINE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "fs2/compiled_routines.hh"
#include "fs2/double_buffer.hh"
#include "fs2/result_memory.hh"
#include "fs2/tue.hh"
#include "fs2/wcs.hh"
#include "pif/encoder.hh"
#include "storage/clause_file.hh"
#include "storage/disk_model.hh"
#include "support/obs.hh"
#include "term/clause.hh"
#include "unify/tue_op.hh"

namespace clare::fs2 {

/** FS2 configuration. */
struct Fs2Config
{
    int level = 3;                  ///< matching level (paper: 3)
    bool crossBinding = true;       ///< cross-binding checks (added)
    Tick sequencerOverhead = 0;     ///< per-microinstruction time
    /**
     * Run clauses through the AOT-compiled match routines instead of
     * the microcode interpreter.  Verdicts, Table-1 op streams,
     * microinstruction counts, and every timing field are
     * bit-identical either way (the EngineEquivalence fuzz enforces
     * it); only the host CPU cost per clause changes.  The
     * microprogram is still assembled and loaded, so disassembly and
     * the WCS remain inspectable.
     */
    bool compiled = false;
    std::uint32_t doubleBufferBank = 8192;
    std::uint32_t resultMemoryBytes = 32 * 1024;
    std::uint32_t resultSlotBytes = 512;
};

/** Outcome and accounting of one FS2 search. */
struct Fs2SearchResult
{
    /** Ordinals of accepted clauses, in stream order. */
    std::vector<std::uint32_t> acceptedOrdinals;

    std::uint64_t clausesExamined = 0;
    std::uint64_t bytesStreamed = 0;
    unify::TueOpCounts ops{};
    std::uint64_t microInstructions = 0;

    Tick tueBusyTime = 0;       ///< datapath time (Table 1 weighted)
    Tick sequencerTime = 0;     ///< microinstruction overhead (if any)
    Tick diskTime = 0;          ///< access + transfer of the stream
    Tick elapsed = 0;           ///< end-to-end (pipeline completion)
    Tick stallTime = 0;         ///< engine waiting on disk
    std::uint64_t overruns = 0; ///< disk outran the filter

    std::uint32_t satisfiers = 0;
    bool resultOverflow = false;
    /** Satisfiers lost past the 64-slot capacity (requeue these). */
    std::uint32_t satisfiersDropped = 0;

    std::uint64_t hits() const { return acceptedOrdinals.size(); }

    /** Effective filtering rate over the streamed bytes (bytes/s). */
    double filterRate() const;
};

/** The FS2 board model. */
class Fs2Engine
{
  public:
    explicit Fs2Engine(Fs2Config config = {});

    const Fs2Config &config() const { return config_; }

    /**
     * Microprogramming + Set Query modes: compile the query goal into
     * a microprogram and a Query Memory image.
     *
     * @param q_arena,q_goal the query goal (atom or structure)
     */
    void setQuery(const term::TermArena &q_arena, term::TermRef q_goal);

    /** Set a pre-encoded query argument stream directly. */
    void setQuery(pif::EncodedArgs query, term::PredicateId predicate);

    /**
     * Attach tracer/metrics sinks for subsequent searches.  Each
     * search records one "fs2.search" span under @p parent plus up to
     * @p max_detail_spans "fs2.db.fill" children (one per clause
     * record admitted to the Double Buffer — capped because a search
     * examines thousands of records), and accumulates fs2.* counters
     * (clauses examined, bytes streamed, buffer stalls/overruns).
     */
    void
    setObserver(const obs::Observer &obs, obs::SpanId parent = 0,
                std::uint32_t max_detail_spans = 32)
    {
        observer_ = obs;
        obsParent_ = parent;
        maxDetailSpans_ = max_detail_spans;
    }

    /**
     * Search mode over a whole clause file.
     *
     * @param file the compiled clause file (must match the query's
     *        predicate)
     * @param disk optional disk model; when present, delivery times
     *        and stalls are simulated, otherwise only TUE busy time
     *        accrues
     * @param file_offset position of the clause file on the disk
     */
    Fs2SearchResult search(const storage::ClauseFile &file,
                           const storage::DiskModel *disk = nullptr,
                           std::uint64_t file_offset = 0);

    /**
     * Search mode over selected records only (the FS1+FS2 two-stage
     * configuration): the disk sweeps the spanned region once and the
     * engine examines just the selected records.
     *
     * @param ordinals clause ordinals to examine, ascending
     */
    Fs2SearchResult searchSelected(const storage::ClauseFile &file,
                                   const std::vector<std::uint32_t> &
                                       ordinals,
                                   const storage::DiskModel *disk =
                                       nullptr,
                                   std::uint64_t file_offset = 0);

    /** Read Result mode: the capture memory. */
    const ResultMemory &results() const { return resultMemory_; }

    /** The TUE (e.g. to enable datapath tracing). */
    TestUnificationEngine &tue() { return tue_; }

    /** The assembled microprogram (for inspection/disassembly). */
    const Microprogram &microprogram() const { return program_; }

  private:
    Fs2Config config_;
    TestUnificationEngine tue_;
    Wcs wcs_;
    CompiledMatcher compiled_;
    DoubleBuffer doubleBuffer_;
    ResultMemory resultMemory_;
    Microprogram program_;

    pif::EncodedArgs query_;
    term::PredicateId predicate_;
    bool queryLoaded_ = false;

    obs::Observer observer_{};
    obs::SpanId obsParent_ = 0;
    std::uint32_t maxDetailSpans_ = 32;

    Fs2SearchResult runStream(const storage::ClauseFile &file,
                              const std::vector<std::uint32_t> &ordinals,
                              const storage::DiskModel *disk,
                              std::uint64_t file_offset);
};

} // namespace clare::fs2

#endif // CLARE_FS2_FS2_ENGINE_HH
