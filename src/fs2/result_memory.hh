/**
 * @file
 * The Result Memory (figure 4): 32 Kbytes capturing clause satisfiers.
 *
 * While disk data transfers to the Double Buffer, a copy is written to
 * the Result Memory in parallel.  The Address Generator is two
 * counters: a 6-bit counter forming the upper address bits (one slot
 * per satisfier, incremented when the TUE accepts a clause — its final
 * value is the satisfier count) and a 9-bit counter forming the lower
 * bits (the byte offset within the slot, reset after every clause).
 * 32 KB / 512-byte slots = 64 satisfiers: exactly the worst case of
 * one disk track of minimum-size clauses, which the paper cites as the
 * sizing rationale.
 */

#ifndef CLARE_FS2_RESULT_MEMORY_HH
#define CLARE_FS2_RESULT_MEMORY_HH

#include <cstdint>
#include <vector>

namespace clare::fs2 {

/** The satisfier-capture memory with its two-counter address generator. */
class ResultMemory
{
  public:
    /**
     * @param bytes total capacity (paper: 32 K)
     * @param slot_bytes bytes addressed by the lower counter (paper:
     *        9 bits = 512)
     */
    explicit ResultMemory(std::uint32_t bytes = 32 * 1024,
                          std::uint32_t slot_bytes = 512);

    std::uint32_t slotCount() const { return slotCount_; }
    std::uint32_t slotBytes() const { return slotBytes_; }

    /**
     * Stream one clause's bytes into the current slot (the parallel
     * copy during disk transfer).  Bytes beyond the slot size are
     * dropped and flagged, as the real offset counter would wrap.
     */
    void beginClause(const std::uint8_t *data, std::uint32_t length);

    /** The TUE accepted the clause: advance the satisfier counter. */
    void commit();

    /** The TUE rejected the clause: the slot will be overwritten. */
    void discard();

    /** Satisfiers captured (the 6-bit counter's value). */
    std::uint32_t satisfierCount() const { return satisfiers_; }

    /** A satisfier arrived after the 6-bit counter was exhausted. */
    bool overflowed() const { return overflowed_; }

    /**
     * Satisfiers that arrived after the counter was exhausted and were
     * NOT captured.  In the real hardware the 6-bit counter would wrap
     * and silently overwrite slot 0; the model makes the loss explicit
     * so the CRS can requeue the dropped clauses through a second pass
     * instead of corrupting the result set.
     */
    std::uint32_t droppedSatisfiers() const { return droppedSatisfiers_; }

    /** A clause exceeded the slot size (bytes were dropped). */
    bool clauseTruncated() const { return truncated_; }

    /** Read Result mode: the captured bytes of satisfier @p i. */
    std::vector<std::uint8_t> slot(std::uint32_t i) const;

    void reset();

  private:
    std::uint32_t slotBytes_;
    std::uint32_t slotCount_;
    std::vector<std::uint8_t> memory_;
    std::vector<std::uint32_t> slotLengths_;
    std::uint32_t satisfiers_ = 0;
    std::uint32_t pendingLength_ = 0;
    std::uint32_t droppedSatisfiers_ = 0;
    bool overflowed_ = false;
    bool truncated_ = false;
};

} // namespace clare::fs2

#endif // CLARE_FS2_RESULT_MEMORY_HH
