/**
 * @file
 * The Double Buffer (figure 4): two alternating memory banks between
 * the disk and the Test Unification Engine.
 *
 * While one bank fills with the clause streaming from disk, the other
 * bank's previous clause is examined.  The model tracks, clause by
 * clause, when data became available (disk delivery time) and when the
 * engine finished the previous clause, yielding per-clause start
 * times, total stall (engine waiting on disk), and overrun events
 * (disk delivering a new clause before its bank was freed — the
 * situation the paper's "filter faster than disk" argument exists to
 * preclude).
 */

#ifndef CLARE_FS2_DOUBLE_BUFFER_HH
#define CLARE_FS2_DOUBLE_BUFFER_HH

#include <cstdint>

#include "support/sim_time.hh"

namespace clare::fs2 {

/** Timing bookkeeping for the two-bank pipeline. */
class DoubleBuffer
{
  public:
    /** @param bank_bytes capacity of each bank */
    explicit DoubleBuffer(std::uint32_t bank_bytes = 8192);

    std::uint32_t bankBytes() const { return bankBytes_; }

    /**
     * Account one clause passing through the buffer.
     *
     * @param delivered time the disk finished writing the input bank
     * @param processing how long the TUE will examine the clause
     * @param clause_bytes record size (must fit one bank)
     * @return the time examination of this clause completes
     */
    Tick admit(Tick delivered, Tick processing,
               std::uint32_t clause_bytes);

    /** Time the engine spent waiting for the disk. */
    Tick stallTime() const { return stallTime_; }

    /**
     * Number of clauses whose bank was still being examined when the
     * next delivery completed (the disk would have overrun it).
     */
    std::uint64_t overruns() const { return overruns_; }

    /** Clauses admitted. */
    std::uint64_t clauses() const { return clauses_; }

    /** Completion time of the most recent examination. */
    Tick lastCompletion() const { return busyUntil_; }

    void reset();

  private:
    std::uint32_t bankBytes_;
    Tick busyUntil_ = 0;        ///< when the output bank frees
    Tick prevDelivered_ = 0;
    bool havePrev_ = false;
    Tick stallTime_ = 0;
    std::uint64_t overruns_ = 0;
    std::uint64_t clauses_ = 0;
};

} // namespace clare::fs2

#endif // CLARE_FS2_DOUBLE_BUFFER_HH
