#include "fs2/map_rom.hh"

namespace clare::fs2 {

using pif::TagClass;

namespace {

bool
isDbVarClass(TagClass cls)
{
    return cls == TagClass::FirstDbVar || cls == TagClass::SubDbVar;
}

bool
isQueryVarClass(TagClass cls)
{
    return cls == TagClass::FirstQueryVar || cls == TagClass::SubQueryVar;
}

bool
isInlineComplexClass(TagClass cls)
{
    return cls == TagClass::StructInline ||
           cls == TagClass::TermListInline ||
           cls == TagClass::UntermListInline;
}

} // namespace

MatchRoutine
selectRoutine(TagClass dc, TagClass qc, int level, bool cross_binding)
{
    // Query-variable classes never appear in a database stream, and
    // vice versa: trap those addresses.
    if (isQueryVarClass(dc) || isDbVarClass(qc))
        return MatchRoutine::Trap;
    if (dc == TagClass::AnonymousVar || qc == TagClass::AnonymousVar)
        return MatchRoutine::Skip;
    if (dc == TagClass::FirstDbVar)
        return cross_binding ? MatchRoutine::DbStore
                             : MatchRoutine::Skip;
    if (dc == TagClass::SubDbVar)
        return cross_binding ? MatchRoutine::DbFetch
                             : MatchRoutine::Skip;
    if (qc == TagClass::FirstQueryVar)
        return cross_binding ? MatchRoutine::QueryStore
                             : MatchRoutine::Skip;
    if (qc == TagClass::SubQueryVar)
        return cross_binding ? MatchRoutine::QueryFetch
                             : MatchRoutine::Skip;
    if (level >= 3 && isInlineComplexClass(dc) &&
        isInlineComplexClass(qc))
        return MatchRoutine::MatchComplex;
    return MatchRoutine::MatchSimple;
}

MapRom
MapRom::program(int level, bool cross_binding,
                const RoutineAddresses &routines)
{
    MapRom rom;
    for (std::size_t d = 0; d < pif::kTagClassCount; ++d) {
        for (std::size_t q = 0; q < pif::kTagClassCount; ++q) {
            TagClass dc = static_cast<TagClass>(d);
            TagClass qc = static_cast<TagClass>(q);

            std::uint16_t target;
            switch (selectRoutine(dc, qc, level, cross_binding)) {
              case MatchRoutine::Trap:
                continue;
              case MatchRoutine::Skip:
                target = routines.skip;
                break;
              case MatchRoutine::DbStore:
                target = routines.dbStore;
                break;
              case MatchRoutine::DbFetch:
                target = routines.dbFetch;
                break;
              case MatchRoutine::QueryStore:
                target = routines.queryStore;
                break;
              case MatchRoutine::QueryFetch:
                target = routines.queryFetch;
                break;
              case MatchRoutine::MatchSimple:
                target = routines.matchSimple;
                break;
              case MatchRoutine::MatchComplex:
                target = routines.matchComplex;
                break;
            }
            rom.entries_[index(dc, qc)] = target;
        }
    }
    return rom;
}

} // namespace clare::fs2
