#include "fs2/map_rom.hh"

namespace clare::fs2 {

using pif::TagClass;

namespace {

bool
isDbVarClass(TagClass cls)
{
    return cls == TagClass::FirstDbVar || cls == TagClass::SubDbVar;
}

bool
isQueryVarClass(TagClass cls)
{
    return cls == TagClass::FirstQueryVar || cls == TagClass::SubQueryVar;
}

bool
isInlineComplexClass(TagClass cls)
{
    return cls == TagClass::StructInline ||
           cls == TagClass::TermListInline ||
           cls == TagClass::UntermListInline;
}

} // namespace

MapRom
MapRom::program(int level, bool cross_binding,
                const RoutineAddresses &routines)
{
    MapRom rom;
    for (std::size_t d = 0; d < pif::kTagClassCount; ++d) {
        for (std::size_t q = 0; q < pif::kTagClassCount; ++q) {
            TagClass dc = static_cast<TagClass>(d);
            TagClass qc = static_cast<TagClass>(q);

            // Query-variable classes never appear in a database
            // stream, and vice versa: trap those addresses.
            if (isQueryVarClass(dc) || isDbVarClass(qc))
                continue;

            std::uint16_t target;
            if (dc == TagClass::AnonymousVar ||
                qc == TagClass::AnonymousVar) {
                target = routines.skip;
            } else if (dc == TagClass::FirstDbVar) {
                target = cross_binding ? routines.dbStore : routines.skip;
            } else if (dc == TagClass::SubDbVar) {
                target = cross_binding ? routines.dbFetch : routines.skip;
            } else if (qc == TagClass::FirstQueryVar) {
                target = cross_binding ? routines.queryStore
                                       : routines.skip;
            } else if (qc == TagClass::SubQueryVar) {
                target = cross_binding ? routines.queryFetch
                                       : routines.skip;
            } else if (level >= 3 && isInlineComplexClass(dc) &&
                       isInlineComplexClass(qc)) {
                target = routines.matchComplex;
            } else {
                target = routines.matchSimple;
            }
            rom.entries_[index(dc, qc)] = target;
        }
    }
    return rom;
}

} // namespace clare::fs2
