/**
 * @file
 * Structural model of the Test Unification Engine (figure 5).
 *
 * The TUE consists of the dual-port DB Memory (run-time bindings of
 * database variables), the Query Memory (pre-loaded query items and
 * query-variable bindings), an 8-bit comparator, three registers and
 * six selectors.  The microprogram invokes one of the micro-level
 * operations below per item pair; the TUE resolves the
 * fetch-or-cross-bound distinction internally (as the hardware does by
 * branching on the fetched type field), performs the figure-6..12
 * datapath routing, accumulates the corresponding execution time, and
 * reports the Table-1 operation that actually occurred.
 *
 * Matching semantics are delegated to the shared PairEngine, so the
 * hardware model and the functional model agree by construction.
 */

#ifndef CLARE_FS2_TUE_HH
#define CLARE_FS2_TUE_HH

#include <string>
#include <vector>

#include "fs2/datapath.hh"
#include "pif/pif_item.hh"
#include "support/sim_time.hh"
#include "unify/pair_engine.hh"
#include "unify/tue_op.hh"

namespace clare::fs2 {

/** The operations a microinstruction can ask the TUE to perform. */
enum class MicroTueOp : std::uint8_t
{
    None = 0,
    Match,              ///< both sides non-variable
    DbStore,            ///< database side is a first-occurrence DV
    QueryStore,         ///< query side is a first-occurrence QV
    DbFetchMatch,       ///< database side is a subsequent DV
    QueryFetchMatch,    ///< query side is a subsequent QV
    SkipPair,           ///< anonymous variable on either side
};

/** Name of a MicroTueOp (for traces). */
const char *microTueOpName(MicroTueOp op);

/** One entry of the optional datapath trace. */
struct TueTraceEntry
{
    unify::TueOp op;
    pif::PifItem dbItem;
    pif::PifItem queryItem;
    bool hit;
    std::uint64_t timeNs;
    std::string route;  ///< "db: ... | query: ..." per cycle
};

/** The TUE structural model. */
class TestUnificationEngine
{
  public:
    explicit TestUnificationEngine(int level = 3,
                                   bool cross_binding = true);

    /** Reset binding cells at the start of each clause. */
    void resetForClause(std::uint32_t db_slots, std::uint32_t q_slots);

    /**
     * Execute a micro operation on an item pair.
     *
     * @return the comparator HIT outcome (true for the store ops).
     */
    bool execute(MicroTueOp op, const pif::PifItem &db_item,
                 const pif::PifItem &q_item);

    /** Accumulated datapath busy time. */
    Tick busyTime() const { return busyTime_; }

    /** Table-1 operation counts performed so far. */
    const unify::TueOpCounts &opCounts() const { return opCounts_; }

    /** Reset time and counters (between searches). */
    void resetStats();

    /** Enable recording of a per-operation datapath trace. */
    void setTracing(bool on) { tracing_ = on; }
    const std::vector<TueTraceEntry> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

  private:
    unify::PairEngine engine_;
    Tick busyTime_ = 0;
    unify::TueOpCounts opCounts_{};
    bool tracing_ = false;
    std::vector<TueTraceEntry> trace_;
};

} // namespace clare::fs2

#endif // CLARE_FS2_TUE_HH
