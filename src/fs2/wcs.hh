/**
 * @file
 * The Writable Control Store and Micro Program Controller (figure 3).
 *
 * The WCS holds the microprogram in its fast RAM (2048 x 64 bits,
 * loaded in Microprogramming mode), sequences it with an AMD-2910A
 * style controller (internal counter, branch addresses, a subroutine
 * stack, and map-ROM dispatch), keeps the two element counters used
 * for list/structure matching plus the argument counter, and monitors
 * the condition code register fed by the TUE comparator.
 */

#ifndef CLARE_FS2_WCS_HH
#define CLARE_FS2_WCS_HH

#include <cstdint>
#include <vector>

#include "fs2/map_rom.hh"
#include "fs2/microcode.hh"
#include "fs2/tue.hh"
#include "pif/encoder.hh"
#include "support/sim_time.hh"

namespace clare::fs2 {

/** Sequencer configuration. */
struct WcsConfig
{
    /**
     * Time charged per microinstruction for sequencing itself (the
     * paper's rate arithmetic ignores it, so the default is zero; the
     * overhead ablation sets it to the 125 ns of the 8 MHz clock).
     */
    Tick sequencerOverhead = 0;

    /** Runaway-microprogram guard. */
    std::uint64_t maxStepsPerClause = 1u << 20;
};

/** Verdict for one clause. */
enum class ClauseVerdict : std::uint8_t { Accepted, Rejected };

/** The control store plus sequencer. */
class Wcs
{
  public:
    explicit Wcs(WcsConfig config = {});

    /** Load a microprogram (Microprogramming mode). */
    void loadProgram(const Microprogram &program);

    /** Install the map ROM contents. */
    void loadMapRom(const MapRom &rom);

    /**
     * Run the microprogram over one clause.
     *
     * @param tue the Test Unification Engine (already reset for the
     *        clause)
     * @param db_items the clause head's decoded item stream
     * @param arity the argument count (loaded into the arg counter)
     * @param query the pre-loaded query argument stream
     */
    ClauseVerdict runClause(TestUnificationEngine &tue,
                            const std::vector<pif::PifItem> &db_items,
                            std::uint32_t arity,
                            const pif::EncodedArgs &query);

    std::uint64_t instructionsExecuted() const { return instructions_; }
    Tick sequencerTime() const { return sequencerTime_; }

    void
    resetStats()
    {
        instructions_ = 0;
        sequencerTime_ = 0;
    }

  private:
    /** Assert sequencerTime == instructions * sequencerOverhead. */
    void checkAccounting() const;

    WcsConfig config_;
    std::vector<std::uint64_t> ram_;
    std::uint16_t entry_ = 0;
    MapRom mapRom_;
    bool programmed_ = false;

    std::uint64_t instructions_ = 0;
    Tick sequencerTime_ = 0;
};

} // namespace clare::fs2

#endif // CLARE_FS2_WCS_HH
