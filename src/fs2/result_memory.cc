#include "fs2/result_memory.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace clare::fs2 {

ResultMemory::ResultMemory(std::uint32_t bytes, std::uint32_t slot_bytes)
    : slotBytes_(slot_bytes), slotCount_(bytes / slot_bytes),
      memory_(bytes, 0), slotLengths_(slotCount_, 0)
{
    clare_assert(slot_bytes > 0 && bytes >= slot_bytes,
                 "result memory must hold at least one slot");
}

void
ResultMemory::beginClause(const std::uint8_t *data, std::uint32_t length)
{
    if (satisfiers_ >= slotCount_) {
        // The 6-bit counter is exhausted; nothing more can be captured.
        // Still record what the offset counter would have seen, so an
        // oversize clause reports truncation identically whether or
        // not it arrived after overflow.
        if (length > slotBytes_)
            truncated_ = true;
        if (length > 0)
            pendingLength_ = length;
        return;
    }
    std::uint32_t n = std::min(length, slotBytes_);
    if (length > slotBytes_)
        truncated_ = true;
    std::memcpy(memory_.data() +
                static_cast<std::size_t>(satisfiers_) * slotBytes_,
                data, n);
    pendingLength_ = n;
}

void
ResultMemory::commit()
{
    if (satisfiers_ >= slotCount_) {
        overflowed_ = true;
        ++droppedSatisfiers_;
        return;
    }
    slotLengths_[satisfiers_] = pendingLength_;
    ++satisfiers_;
    pendingLength_ = 0;
}

void
ResultMemory::discard()
{
    pendingLength_ = 0;
}

std::vector<std::uint8_t>
ResultMemory::slot(std::uint32_t i) const
{
    clare_assert(i < satisfiers_, "satisfier %u out of range (%u)",
                 i, satisfiers_);
    auto begin = memory_.begin() +
        static_cast<std::ptrdiff_t>(static_cast<std::size_t>(i) *
                                    slotBytes_);
    return std::vector<std::uint8_t>(begin, begin + slotLengths_[i]);
}

// Full reset contract: a replayed (e.g. cached-then-recomputed) query
// must observe a memory indistinguishable from a freshly constructed
// one — data bytes, slot lengths, the satisfier and pending counters,
// the dropped-satisfier count, and the overflow/truncation flags all
// return to zero.  test_fs2's replay regression asserts this.
void
ResultMemory::reset()
{
    std::fill(memory_.begin(), memory_.end(), 0);
    std::fill(slotLengths_.begin(), slotLengths_.end(), 0);
    satisfiers_ = 0;
    pendingLength_ = 0;
    droppedSatisfiers_ = 0;
    overflowed_ = false;
    truncated_ = false;
}

} // namespace clare::fs2
