#include "fs2/wcs.hh"

#include "support/logging.hh"

namespace clare::fs2 {

using pif::PifItem;

Wcs::Wcs(WcsConfig config)
    : config_(config)
{
}

void
Wcs::loadProgram(const Microprogram &program)
{
    clare_assert(program.size() <= kControlStoreWords,
                 "microprogram of %zu words exceeds the control store",
                 program.size());
    ram_ = program.words;
    entry_ = program.entry;
    programmed_ = true;
}

void
Wcs::loadMapRom(const MapRom &rom)
{
    mapRom_ = rom;
}

ClauseVerdict
Wcs::runClause(TestUnificationEngine &tue,
               const std::vector<PifItem> &db_items, std::uint32_t arity,
               const pif::EncodedArgs &query)
{
    clare_assert(programmed_, "search started before microprogramming");

    std::uint16_t upc = entry_;
    std::uint16_t stack[16];
    std::size_t sp = 0;
    std::uint32_t db_ctr = 0;
    std::uint32_t q_ctr = 0;
    std::uint32_t arg_ctr = 0;
    std::size_t di = 0;
    std::size_t qi = 0;
    bool cc_hit = false;

    auto current_db = [&]() -> const PifItem & {
        clare_assert(di < db_items.size(),
                     "db cursor %zu beyond stream of %zu items",
                     di, db_items.size());
        return db_items[di];
    };
    auto current_q = [&]() -> const PifItem & {
        clare_assert(qi < query.items.size(),
                     "query cursor %zu beyond stream of %zu items",
                     qi, query.items.size());
        return query.items[qi];
    };

    for (std::uint64_t step = 0;; ++step) {
        if (step >= config_.maxStepsPerClause)
            clare_panic("microprogram exceeded %llu steps on one clause",
                        static_cast<unsigned long long>(
                            config_.maxStepsPerClause));
        clare_assert(upc < ram_.size(),
                     "microprogram counter 0x%03x out of range", upc);
        MicroInstruction insn = MicroInstruction::decode(ram_[upc]);
        ++instructions_;
        sequencerTime_ += config_.sequencerOverhead;

        // 1. TUE operation on the current item pair.
        if (insn.tueOp != MicroTueOp::None)
            cc_hit = tue.execute(insn.tueOp, current_db(), current_q());

        // 2. Counter loads (from the current headers, pre-advance).
        if (insn.loadCounters) {
            const PifItem &d = current_db();
            const PifItem &q = current_q();
            db_ctr = pif::isInlineComplexTag(d.tag)
                ? pif::tagArity(d.tag) : 0;
            q_ctr = pif::isInlineComplexTag(q.tag)
                ? pif::tagArity(q.tag) : 0;
        }
        if (insn.loadArgCtr)
            arg_ctr = arity;

        // 3. Stream advances.
        if (insn.advanceDb)
            ++di;
        if (insn.advanceQuery)
            ++qi;

        // 4. Counter decrements.
        if (insn.decDbCtr) {
            clare_assert(db_ctr > 0, "db element counter underflow");
            --db_ctr;
        }
        if (insn.decQCtr) {
            clare_assert(q_ctr > 0, "query element counter underflow");
            --q_ctr;
        }
        if (insn.decArgCtr) {
            clare_assert(arg_ctr > 0, "argument counter underflow");
            --arg_ctr;
        }

        // 5. Sequencing.
        auto cond_value = [&](Cond c) {
            switch (c) {
              case Cond::Hit: return cc_hit;
              case Cond::DbCtrZero: return db_ctr == 0;
              case Cond::QCtrZero: return q_ctr == 0;
              case Cond::ArgCtrZero: return arg_ctr == 0;
            }
            clare_panic("unknown condition");
        };

        switch (insn.seqOp) {
          case SeqOp::Cont:
            ++upc;
            break;
          case SeqOp::Jump:
            upc = insn.addr;
            break;
          case SeqOp::JumpIfCond:
            upc = cond_value(insn.cond)
                ? insn.addr : static_cast<std::uint16_t>(upc + 1);
            break;
          case SeqOp::JumpIfNotCond:
            upc = !cond_value(insn.cond)
                ? insn.addr : static_cast<std::uint16_t>(upc + 1);
            break;
          case SeqOp::CallMap: {
            clare_assert(sp < 16, "microprogram stack overflow");
            stack[sp++] = static_cast<std::uint16_t>(upc + 1);
            std::uint16_t target = mapRom_.lookup(
                pif::tagClass(current_db().tag),
                pif::tagClass(current_q().tag));
            clare_assert(target != kMapTrap,
                         "map ROM trap on pair (%s, %s)",
                         pif::tagClassName(
                             pif::tagClass(current_db().tag)),
                         pif::tagClassName(
                             pif::tagClass(current_q().tag)));
            upc = target;
            break;
          }
          case SeqOp::Call:
            clare_assert(sp < 16, "microprogram stack overflow");
            stack[sp++] = static_cast<std::uint16_t>(upc + 1);
            upc = insn.addr;
            break;
          case SeqOp::Ret:
            clare_assert(sp > 0, "microprogram stack underflow");
            upc = stack[--sp];
            break;
          case SeqOp::Accept:
            checkAccounting();
            return ClauseVerdict::Accepted;
          case SeqOp::Reject:
            checkAccounting();
            return ClauseVerdict::Rejected;
        }
    }
}

void
Wcs::checkAccounting() const
{
    // Every executed microword charges the sequencer clock exactly
    // once, so the accumulated time is always the instruction count
    // times the per-instruction overhead.  A drift here means an
    // accounting path double-charged or skipped an instruction.
    clare_assert(sequencerTime_ ==
                     static_cast<Tick>(instructions_) *
                         config_.sequencerOverhead,
                 "sequencer clock %llu ticks out of step with %llu "
                 "instructions at %llu ticks each",
                 static_cast<unsigned long long>(sequencerTime_),
                 static_cast<unsigned long long>(instructions_),
                 static_cast<unsigned long long>(
                     config_.sequencerOverhead));
}

} // namespace clare::fs2
