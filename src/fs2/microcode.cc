#include "fs2/microcode.hh"

#include <cstdio>

#include "support/logging.hh"

namespace clare::fs2 {

namespace {

constexpr std::uint64_t kSeqShift = 0;
constexpr std::uint64_t kCondShift = 4;
constexpr std::uint64_t kAddrShift = 8;
constexpr std::uint64_t kTueShift = 19;
constexpr std::uint64_t kAdvDbBit = 24;
constexpr std::uint64_t kAdvQBit = 25;
constexpr std::uint64_t kLoadCtrBit = 26;
constexpr std::uint64_t kDecDbBit = 27;
constexpr std::uint64_t kDecQBit = 28;
constexpr std::uint64_t kDecArgBit = 29;
constexpr std::uint64_t kLoadArgBit = 30;

constexpr std::uint64_t
bit(std::uint64_t n)
{
    return std::uint64_t{1} << n;
}

const char *
seqOpName(SeqOp op)
{
    switch (op) {
      case SeqOp::Cont: return "CONT";
      case SeqOp::Jump: return "JMP";
      case SeqOp::JumpIfCond: return "JCC";
      case SeqOp::JumpIfNotCond: return "JNCC";
      case SeqOp::CallMap: return "CALLMAP";
      case SeqOp::Call: return "CALL";
      case SeqOp::Ret: return "RET";
      case SeqOp::Accept: return "ACCEPT";
      case SeqOp::Reject: return "REJECT";
    }
    return "?";
}

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::Hit: return "HIT";
      case Cond::DbCtrZero: return "DBCTR=0";
      case Cond::QCtrZero: return "QCTR=0";
      case Cond::ArgCtrZero: return "ARGCTR=0";
    }
    return "?";
}

} // namespace

std::uint64_t
MicroInstruction::encode() const
{
    std::uint64_t w = 0;
    w |= static_cast<std::uint64_t>(seqOp) << kSeqShift;
    w |= static_cast<std::uint64_t>(cond) << kCondShift;
    w |= static_cast<std::uint64_t>(addr & 0x7ff) << kAddrShift;
    w |= static_cast<std::uint64_t>(tueOp) << kTueShift;
    if (advanceDb)
        w |= bit(kAdvDbBit);
    if (advanceQuery)
        w |= bit(kAdvQBit);
    if (loadCounters)
        w |= bit(kLoadCtrBit);
    if (decDbCtr)
        w |= bit(kDecDbBit);
    if (decQCtr)
        w |= bit(kDecQBit);
    if (decArgCtr)
        w |= bit(kDecArgBit);
    if (loadArgCtr)
        w |= bit(kLoadArgBit);
    return w;
}

MicroInstruction
MicroInstruction::decode(std::uint64_t w)
{
    MicroInstruction insn;
    insn.seqOp = static_cast<SeqOp>((w >> kSeqShift) & 0xf);
    insn.cond = static_cast<Cond>((w >> kCondShift) & 0x3);
    insn.addr = static_cast<std::uint16_t>((w >> kAddrShift) & 0x7ff);
    insn.tueOp = static_cast<MicroTueOp>((w >> kTueShift) & 0x7);
    insn.advanceDb = w & bit(kAdvDbBit);
    insn.advanceQuery = w & bit(kAdvQBit);
    insn.loadCounters = w & bit(kLoadCtrBit);
    insn.decDbCtr = w & bit(kDecDbBit);
    insn.decQCtr = w & bit(kDecQBit);
    insn.decArgCtr = w & bit(kDecArgBit);
    insn.loadArgCtr = w & bit(kLoadArgBit);
    return insn;
}

std::string
MicroInstruction::disassemble() const
{
    std::string s = seqOpName(seqOp);
    if (seqOp == SeqOp::JumpIfCond || seqOp == SeqOp::JumpIfNotCond) {
        s += "(";
        s += condName(cond);
        s += ")";
    }
    if (seqOp == SeqOp::Jump || seqOp == SeqOp::JumpIfCond ||
        seqOp == SeqOp::JumpIfNotCond || seqOp == SeqOp::Call) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), " @%03x", addr);
        s += buf;
    }
    if (tueOp != MicroTueOp::None) {
        s += " tue=";
        s += microTueOpName(tueOp);
    }
    if (loadCounters)
        s += " ldctr";
    if (advanceDb)
        s += " adv.db";
    if (advanceQuery)
        s += " adv.q";
    if (decDbCtr)
        s += " dec.db";
    if (decQCtr)
        s += " dec.q";
    if (decArgCtr)
        s += " dec.arg";
    if (loadArgCtr)
        s += " ld.arg";
    return s;
}

std::uint16_t
MicroAssembler::here() const
{
    return static_cast<std::uint16_t>(insns_.size());
}

void
MicroAssembler::label(const std::string &name)
{
    for (const auto &kv : labels_)
        clare_assert(kv.first != name, "duplicate label '%s'",
                     name.c_str());
    labels_.emplace_back(name, here());
}

void
MicroAssembler::emit(MicroInstruction insn, const std::string &target)
{
    if (!target.empty())
        fixups_.push_back(Fixup{insns_.size(), target});
    insns_.push_back(insn);
    clare_assert(insns_.size() <= kControlStoreWords,
                 "microprogram exceeds the %zu-word control store",
                 kControlStoreWords);
}

std::uint16_t
MicroAssembler::lookup(const std::string &name) const
{
    for (const auto &kv : labels_)
        if (kv.first == name)
            return kv.second;
    clare_panic("undefined microprogram label '%s'", name.c_str());
}

std::uint16_t
MicroAssembler::address(const std::string &name) const
{
    return lookup(name);
}

Microprogram
MicroAssembler::finish(const std::string &entry_label)
{
    for (const Fixup &f : fixups_)
        insns_[f.index].addr = lookup(f.target);
    Microprogram prog;
    prog.entry = lookup(entry_label);
    prog.words.reserve(insns_.size());
    for (const auto &insn : insns_)
        prog.words.push_back(insn.encode());
    return prog;
}

Microprogram
assembleMatchProgram(int level, RoutineAddresses &out_routines)
{
    MicroAssembler as;
    MicroInstruction i;

    // --- main argument loop ---------------------------------------
    as.label("entry");
    i = {};
    i.loadArgCtr = true;
    as.emit(i);

    as.label("argloop");
    i = {};
    i.seqOp = SeqOp::JumpIfCond;
    i.cond = Cond::ArgCtrZero;
    as.emit(i, "accept");

    i = {};
    i.loadCounters = true;          // element counters from arg headers
    as.emit(i);

    i = {};
    i.seqOp = SeqOp::CallMap;       // dispatch on the type-tag pair
    as.emit(i);

    i = {};
    i.seqOp = SeqOp::Call;          // drain any unconsumed elements
    as.emit(i, "flush");

    i = {};
    i.seqOp = SeqOp::Jump;
    i.decArgCtr = true;
    as.emit(i, "argloop");

    as.label("accept");
    i = {};
    i.seqOp = SeqOp::Accept;
    as.emit(i);

    as.label("reject");
    i = {};
    i.seqOp = SeqOp::Reject;
    as.emit(i);

    // --- leaf routines ---------------------------------------------
    auto leaf = [&](const std::string &name, MicroTueOp op,
                    bool check_hit) {
        as.label(name);
        MicroInstruction w{};
        w.tueOp = op;
        as.emit(w);
        if (check_hit) {
            w = {};
            w.seqOp = SeqOp::JumpIfNotCond;
            w.cond = Cond::Hit;
            as.emit(w, "reject");
        }
        w = {};
        w.seqOp = SeqOp::Ret;
        w.advanceDb = true;
        w.advanceQuery = true;
        as.emit(w);
    };

    leaf("rt_skip", MicroTueOp::SkipPair, false);
    leaf("rt_db_store", MicroTueOp::DbStore, false);
    leaf("rt_db_fetch", MicroTueOp::DbFetchMatch, true);
    leaf("rt_query_store", MicroTueOp::QueryStore, false);
    leaf("rt_query_fetch", MicroTueOp::QueryFetchMatch, true);
    leaf("rt_match_simple", MicroTueOp::Match, true);

    // --- in-line complex matching (level 3) -------------------------
    as.label("rt_match_complex");
    i = {};
    i.tueOp = MicroTueOp::Match;    // header comparison
    as.emit(i);
    i = {};
    i.seqOp = SeqOp::JumpIfNotCond;
    i.cond = Cond::Hit;
    as.emit(i, "reject");
    i = {};
    i.advanceDb = true;             // step past the headers
    i.advanceQuery = true;
    as.emit(i);

    as.label("elemloop");
    i = {};
    i.seqOp = SeqOp::JumpIfCond;
    i.cond = Cond::DbCtrZero;
    as.emit(i, "rtc_done");
    i = {};
    i.seqOp = SeqOp::JumpIfCond;
    i.cond = Cond::QCtrZero;
    as.emit(i, "rtc_done");
    i = {};
    i.seqOp = SeqOp::CallMap;       // element pair dispatch
    as.emit(i);
    i = {};
    i.seqOp = SeqOp::Jump;
    i.decDbCtr = true;
    i.decQCtr = true;
    as.emit(i, "elemloop");

    as.label("rtc_done");
    i = {};
    i.seqOp = SeqOp::Ret;           // leftovers drained by 'flush'
    as.emit(i);

    // --- element flush ----------------------------------------------
    as.label("flush");
    i = {};
    i.seqOp = SeqOp::JumpIfCond;
    i.cond = Cond::DbCtrZero;
    as.emit(i, "flush_q");
    i = {};
    i.seqOp = SeqOp::Jump;
    i.advanceDb = true;
    i.decDbCtr = true;
    as.emit(i, "flush");

    as.label("flush_q");
    i = {};
    i.seqOp = SeqOp::JumpIfCond;
    i.cond = Cond::QCtrZero;
    as.emit(i, "flush_done");
    i = {};
    i.seqOp = SeqOp::Jump;
    i.advanceQuery = true;
    i.decQCtr = true;
    as.emit(i, "flush_q");

    as.label("flush_done");
    i = {};
    i.seqOp = SeqOp::Ret;
    as.emit(i);

    Microprogram prog = as.finish("entry");
    out_routines.skip = as.address("rt_skip");
    out_routines.dbStore = as.address("rt_db_store");
    out_routines.dbFetch = as.address("rt_db_fetch");
    out_routines.queryStore = as.address("rt_query_store");
    out_routines.queryFetch = as.address("rt_query_fetch");
    out_routines.matchSimple = as.address("rt_match_simple");
    out_routines.matchComplex = level >= 3
        ? as.address("rt_match_complex")
        : as.address("rt_match_simple");
    return prog;
}

} // namespace clare::fs2
