/**
 * @file
 * The CLARE board: FS1 and FS2 behind the VMEbus host interface.
 *
 * The board occupies a memory-mapped window (the paper gives the range
 * 0xffff7e00-0xffff7fff in the SUN's /dev/vme24d16 space; the text
 * also says "128k bytes in total", which contradicts the 512-byte hex
 * range — we follow the hex range and note the discrepancy).  Both
 * filter stages share the window and are mutually exclusive, selected
 * by control-register bit b2.
 *
 * The ClareDriver below performs the documented host sequences:
 * Microprogramming -> Set Query -> Search -> (b7?) -> Read Result.
 */

#ifndef CLARE_CLARE_BOARD_HH
#define CLARE_CLARE_BOARD_HH

#include <cstdint>
#include <memory>

#include "clare/control_register.hh"
#include "fs1/fs1_engine.hh"
#include "fs2/fs2_engine.hh"
#include "scw/index_file.hh"
#include "storage/clause_file.hh"
#include "storage/disk_model.hh"

namespace clare::engine {

/** VME window constants (see the file comment for the discrepancy). */
constexpr std::uint32_t kVmeWindowBase = 0xffff7e00u;
constexpr std::uint32_t kVmeWindowEnd = 0xffff7fffu;
constexpr std::uint32_t kVmeWindowBytes = kVmeWindowEnd -
    kVmeWindowBase + 1;

/** Offset of the control register within the window. */
constexpr std::uint32_t kControlRegisterOffset = 0;

/** The plug-in board pair. */
class ClareBoard
{
  public:
    ClareBoard(scw::CodewordGenerator generator,
               fs1::Fs1Config fs1_config = {},
               fs2::Fs2Config fs2_config = {});

    /** Host write to a window address (control register only). */
    void write8(std::uint32_t address, std::uint8_t value);

    /** Host read from a window address. */
    std::uint8_t read8(std::uint32_t address) const;

    OperationalMode mode() const { return control_.mode(); }
    FilterSelect filter() const { return control_.filter(); }

    fs1::Fs1Engine &fs1();
    fs2::Fs2Engine &fs2();

    /** Record that a search completed, updating b7. */
    void noteSearchOutcome(bool match_found);

  private:
    ControlRegister control_;
    fs1::Fs1Engine fs1_;
    fs2::Fs2Engine fs2_;

    void checkWindow(std::uint32_t address) const;
};

/** Performs the documented host driver sequences against the board. */
class ClareDriver
{
  public:
    explicit ClareDriver(ClareBoard &board) : board_(board) {}

    /**
     * Full FS2 retrieval sequence: select FS2, load the microprogram,
     * set the query, run the search, and read the result flag.
     */
    fs2::Fs2SearchResult fs2Search(const term::TermArena &q_arena,
                                   term::TermRef q_goal,
                                   const storage::ClauseFile &file,
                                   const storage::DiskModel *disk =
                                       nullptr);

    /** FS1 sequence: select FS1, set the query codeword, scan. */
    fs1::Fs1Result fs1Search(const scw::Signature &query,
                             const scw::SecondaryFile &index);

    /** The modes the driver stepped through in its last sequence. */
    const std::vector<OperationalMode> &lastSequence() const
    {
        return sequence_;
    }

  private:
    ClareBoard &board_;
    std::vector<OperationalMode> sequence_;

    void setMode(OperationalMode mode, FilterSelect filter);
};

} // namespace clare::engine

#endif // CLARE_CLARE_BOARD_HH
