/**
 * @file
 * The CLARE 8-bit control register (section 2.2/3).
 *
 * Bits b0/b1 select the operational mode of the enabled filter:
 *
 *   | mode             | b0 | b1 |
 *   |------------------|----|----|
 *   | Read Result      | 0  | 0  |
 *   | Search           | 0  | 1  |
 *   | Microprogramming | 1  | 0  |
 *   | Set Query        | 1  | 1  |
 *
 * Bit b2 selects between the two mutually exclusive filters (0 = FS1,
 * 1 = FS2), and bit b7 reports that a search found at least one match.
 */

#ifndef CLARE_CLARE_CONTROL_REGISTER_HH
#define CLARE_CLARE_CONTROL_REGISTER_HH

#include <cstdint>

namespace clare::engine {

/** Operational modes encoded in control-register bits b0/b1. */
enum class OperationalMode : std::uint8_t
{
    ReadResult = 0,         ///< b0=0 b1=0
    Search = 1,             ///< b0=0 b1=1
    Microprogramming = 2,   ///< b0=1 b1=0
    SetQuery = 3,           ///< b0=1 b1=1
};

/** Which filter board the register currently addresses. */
enum class FilterSelect : std::uint8_t
{
    Fs1 = 0,    ///< b2 = 0
    Fs2 = 1,    ///< b2 = 1
};

/** Human-readable mode name. */
const char *operationalModeName(OperationalMode mode);

/** Decode/encode helpers over the raw 8-bit register value. */
class ControlRegister
{
  public:
    std::uint8_t value() const { return value_; }
    void write(std::uint8_t v) { value_ = v; }

    OperationalMode
    mode() const
    {
        // b0 is the most significant of the two-bit mode field.
        std::uint8_t b0 = value_ & 0x01;
        std::uint8_t b1 = (value_ >> 1) & 0x01;
        return static_cast<OperationalMode>((b0 << 1) | b1);
    }

    FilterSelect
    filter() const
    {
        return (value_ & 0x04) ? FilterSelect::Fs2 : FilterSelect::Fs1;
    }

    bool matchFound() const { return value_ & 0x80; }

    void
    setMatchFound(bool found)
    {
        if (found)
            value_ |= 0x80;
        else
            value_ &= 0x7f;
    }

    /** Compose a register value from fields. */
    static std::uint8_t
    compose(OperationalMode mode, FilterSelect filter)
    {
        std::uint8_t m = static_cast<std::uint8_t>(mode);
        std::uint8_t b0 = (m >> 1) & 1;
        std::uint8_t b1 = m & 1;
        std::uint8_t v = static_cast<std::uint8_t>(b0 | (b1 << 1));
        if (filter == FilterSelect::Fs2)
            v |= 0x04;
        return v;
    }

  private:
    std::uint8_t value_ = 0;
};

} // namespace clare::engine

#endif // CLARE_CLARE_CONTROL_REGISTER_HH
