#include "clare/board.hh"

#include "support/logging.hh"

namespace clare::engine {

const char *
operationalModeName(OperationalMode mode)
{
    switch (mode) {
      case OperationalMode::ReadResult: return "Read Result";
      case OperationalMode::Search: return "Search";
      case OperationalMode::Microprogramming: return "Microprogramming";
      case OperationalMode::SetQuery: return "Set Query";
    }
    return "?";
}

ClareBoard::ClareBoard(scw::CodewordGenerator generator,
                       fs1::Fs1Config fs1_config,
                       fs2::Fs2Config fs2_config)
    : fs1_(std::move(generator), fs1_config), fs2_(fs2_config)
{
}

void
ClareBoard::checkWindow(std::uint32_t address) const
{
    if (address < kVmeWindowBase || address > kVmeWindowEnd)
        clare_fatal("VME access at 0x%08x outside the CLARE window "
                    "[0x%08x, 0x%08x]", address, kVmeWindowBase,
                    kVmeWindowEnd);
}

void
ClareBoard::write8(std::uint32_t address, std::uint8_t value)
{
    checkWindow(address);
    std::uint32_t offset = address - kVmeWindowBase;
    if (offset == kControlRegisterOffset) {
        // b7 is a status bit owned by the hardware; host writes do not
        // set it.
        bool match = control_.matchFound();
        control_.write(value);
        control_.setMatchFound(match);
        return;
    }
    clare_fatal("unmapped CLARE register write at offset 0x%x", offset);
}

std::uint8_t
ClareBoard::read8(std::uint32_t address) const
{
    checkWindow(address);
    std::uint32_t offset = address - kVmeWindowBase;
    if (offset == kControlRegisterOffset)
        return control_.value();
    clare_fatal("unmapped CLARE register read at offset 0x%x", offset);
}

fs1::Fs1Engine &
ClareBoard::fs1()
{
    clare_assert(control_.filter() == FilterSelect::Fs1,
                 "FS1 accessed while b2 selects FS2 (the filters are "
                 "mutually exclusive)");
    return fs1_;
}

fs2::Fs2Engine &
ClareBoard::fs2()
{
    clare_assert(control_.filter() == FilterSelect::Fs2,
                 "FS2 accessed while b2 selects FS1 (the filters are "
                 "mutually exclusive)");
    return fs2_;
}

void
ClareBoard::noteSearchOutcome(bool match_found)
{
    control_.setMatchFound(match_found);
}

void
ClareDriver::setMode(OperationalMode mode, FilterSelect filter)
{
    board_.write8(kVmeWindowBase + kControlRegisterOffset,
                  ControlRegister::compose(mode, filter));
    sequence_.push_back(mode);
}

fs2::Fs2SearchResult
ClareDriver::fs2Search(const term::TermArena &q_arena,
                       term::TermRef q_goal,
                       const storage::ClauseFile &file,
                       const storage::DiskModel *disk)
{
    sequence_.clear();

    // 1. Load the query's microprogram (assembled at construction in
    //    this model; the mode transition is still performed).
    setMode(OperationalMode::Microprogramming, FilterSelect::Fs2);

    // 2. Write the query arguments into the Query Memory.
    setMode(OperationalMode::SetQuery, FilterSelect::Fs2);
    board_.fs2().setQuery(q_arena, q_goal);

    // 3. Run the search; the DMA window is the FS2 address space.
    setMode(OperationalMode::Search, FilterSelect::Fs2);
    fs2::Fs2SearchResult result = board_.fs2().search(file, disk);
    board_.noteSearchOutcome(!result.acceptedOrdinals.empty());

    // 4. Extract potential answers if b7 is set.
    setMode(OperationalMode::ReadResult, FilterSelect::Fs2);
    return result;
}

fs1::Fs1Result
ClareDriver::fs1Search(const scw::Signature &query,
                       const scw::SecondaryFile &index)
{
    sequence_.clear();
    setMode(OperationalMode::SetQuery, FilterSelect::Fs1);
    setMode(OperationalMode::Search, FilterSelect::Fs1);
    fs1::Fs1Result result = board_.fs1().search(index, query);
    board_.noteSearchOutcome(!result.ordinals.empty());
    setMode(OperationalMode::ReadResult, FilterSelect::Fs1);
    return result;
}

} // namespace clare::engine
