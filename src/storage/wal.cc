#include "storage/wal.hh"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "storage/file_io.hh"
#include "support/crc32.hh"
#include "support/errors.hh"
#include "support/logging.hh"

namespace clare::storage {

namespace {

namespace fs = std::filesystem;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
    return v;
}

bool
validKind(std::uint8_t k)
{
    return k >= static_cast<std::uint8_t>(Wal::RecordKind::Assert) &&
        k <= static_cast<std::uint8_t>(Wal::RecordKind::Checkpoint);
}

std::vector<std::uint8_t>
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw IoError(path, "cannot open for reading");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        throw IoError(path, "short read");
    }
    std::fclose(f);
    return bytes;
}

/** Directory holding @p path ("." when the path has no parent). */
std::string
parentDir(const std::string &path)
{
    fs::path parent = fs::path(path).parent_path();
    return parent.empty() ? std::string(".") : parent.string();
}

} // namespace

Wal::Wal(std::string path, const support::FaultInjector *faults)
    : path_(std::move(path)), faults_(faults)
{
    std::error_code ec;
    if (!fs::exists(path_, ec)) {
        // Fresh log: persist the header immediately so a crash before
        // the first commit recovers to an empty, valid log.
        std::vector<std::uint8_t> header;
        encodeHeader(header, 0);
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        if (f == nullptr)
            throw IoError(path_, "cannot create write-ahead log");
        if (std::fwrite(header.data(), 1, header.size(), f) !=
            header.size()) {
            std::fclose(f);
            throw IoError(path_, "short header write");
        }
        syncFile(f, path_);
        std::fclose(f);
        syncDirectory(parentDir(path_));
        durableBytes_ = kWalHeaderBytes;
        return;
    }
    recoverFrom(readWholeFile(path_));
}

void
Wal::encodeHeader(std::vector<std::uint8_t> &out, std::uint64_t base_lsn)
{
    putU32(out, kWalMagic);
    putU32(out, kWalVersion);
    putU64(out, base_lsn);
    out.reserve(out.size() + 4);
    std::uint32_t crc = support::crc32(out.data() + out.size() - 16, 16);
    putU32(out, crc);
}

void
Wal::recoverFrom(std::vector<std::uint8_t> image)
{
    if (image.size() < kWalHeaderBytes) {
        // A crash during creation left a partial header: nothing was
        // ever committed, so recover to a fresh empty log.
        std::vector<std::uint8_t> header;
        encodeHeader(header, 0);
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        if (f == nullptr)
            throw IoError(path_, "cannot rewrite truncated header");
        if (std::fwrite(header.data(), 1, header.size(), f) !=
            header.size()) {
            std::fclose(f);
            throw IoError(path_, "short header write");
        }
        syncFile(f, path_);
        std::fclose(f);
        truncated_ = image.size();
        durableBytes_ = kWalHeaderBytes;
        return;
    }
    if (getU32(image, 0) != kWalMagic)
        throw CorruptionError(path_, 0, 0, "bad WAL magic");
    if (getU32(image, 4) != kWalVersion)
        throw CorruptionError(path_, 0, 4,
                              "unsupported WAL version " +
                                  std::to_string(getU32(image, 4)));
    if (support::crc32(image.data(), 16) != getU32(image, 16))
        throw CorruptionError(path_, 0, 16, "WAL header checksum");
    baseLsn_ = getU64(image, 8);

    // Walk the records; remember the end of the last complete commit
    // boundary and the committed records up to it.  Any structural
    // damage past that boundary is a torn tail, recovered by
    // truncation — the contract is "last complete commit", never a
    // partial transaction, never an abort.
    std::size_t at = kWalHeaderBytes;
    std::size_t committed_end = kWalHeaderBytes;
    std::vector<Record> group;
    while (at + 9 <= image.size()) {
        std::uint32_t payload_bytes = getU32(image, at);
        if (payload_bytes > image.size() ||
            at + 9 + payload_bytes > image.size())
            break;  // torn length or half-written payload
        std::uint8_t kind = image[at + 4];
        if (!validKind(kind))
            break;
        std::uint32_t crc =
            support::crc32(image.data() + at + 4, 1 + payload_bytes);
        if (crc != getU32(image, at + 5 + payload_bytes))
            break;  // bit-flipped tail record
        Record rec;
        rec.kind = static_cast<RecordKind>(kind);
        rec.lsn = baseLsn_ + (at - kWalHeaderBytes);
        rec.payload.assign(image.begin() + at + 5,
                           image.begin() + at + 5 + payload_bytes);
        at += 9 + payload_bytes;
        bool boundary = rec.kind == RecordKind::Commit ||
            rec.kind == RecordKind::Checkpoint;
        group.push_back(std::move(rec));
        if (boundary) {
            committed_end = at;
            for (Record &r : group)
                recovered_.push_back(std::move(r));
            group.clear();
        }
    }
    if (committed_end < image.size()) {
        truncated_ = image.size() - committed_end;
        std::error_code ec;
        fs::resize_file(path_, committed_end, ec);
        if (ec)
            throw IoError(path_, "cannot truncate torn tail: " +
                                     ec.message());
        // Make the truncation itself durable, or a post-recovery
        // power loss could resurrect the torn tail under appended
        // records.
        std::FILE *f = std::fopen(path_.c_str(), "rb+");
        if (f == nullptr)
            throw IoError(path_, "cannot reopen after truncation");
        syncFile(f, path_);
        std::fclose(f);
    }
    durableBytes_ = committed_end;
}

std::uint64_t
Wal::tailLsn() const
{
    return baseLsn_ + (durableBytes_ - kWalHeaderBytes) +
        pending_.size();
}

std::uint64_t
Wal::append(RecordKind kind, const std::vector<std::uint8_t> &payload)
{
    std::uint64_t lsn = tailLsn();
    std::size_t start = pending_.size();
    putU32(pending_, static_cast<std::uint32_t>(payload.size()));
    pending_.push_back(static_cast<std::uint8_t>(kind));
    pending_.insert(pending_.end(), payload.begin(), payload.end());
    std::uint32_t crc = support::crc32(pending_.data() + start + 4,
                                       1 + payload.size());
    putU32(pending_, crc);
    ++pendingRecords_;
    return lsn;
}

std::uint64_t
Wal::commit()
{
    std::uint64_t lsn = append(RecordKind::Commit, {});
    sync();
    return lsn;
}

void
Wal::sync()
{
    if (pending_.empty())
        return;
    std::vector<std::uint8_t> bytes = std::move(pending_);
    pending_.clear();
    pendingRecords_ = 0;
    writeDurable(bytes.data(), bytes.size(), "wal.commit");
    durableBytes_ += bytes.size();
}

void
Wal::reset(std::uint64_t applied_lsn)
{
    clare_assert(pending_.empty(),
                 "reset with uncommitted buffered records");
    std::vector<std::uint8_t> header;
    encodeHeader(header, applied_lsn);
    // Truncate-then-rewrite is not atomic at the file level, but it
    // does not need to be: the checkpoint manifest already carries
    // applied_lsn, so a crash leaving the old log intact merely
    // replays records the manifest tells recovery to skip, and a
    // crash leaving a partial header recovers to an empty log (the
    // checkpointed store *is* the state).  The kill point makes both
    // windows sweepable.
    if (auto kill = faults_ != nullptr
            ? faults_->killOffset("wal.checkpoint", cumulative_,
                                  cumulative_ + header.size())
            : std::nullopt) {
        std::size_t keep = static_cast<std::size_t>(*kill - cumulative_);
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        if (f != nullptr) {
            std::fwrite(header.data(), 1, keep, f);
            std::fflush(f);
            std::fclose(f);
        }
        cumulative_ = *kill;
        throw CrashError("wal.checkpoint", *kill);
    }
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr)
        throw IoError(path_, "cannot rewrite write-ahead log");
    if (std::fwrite(header.data(), 1, header.size(), f) !=
        header.size()) {
        std::fclose(f);
        throw IoError(path_, "short header write");
    }
    syncFile(f, path_);
    std::fclose(f);
    cumulative_ += header.size();
    baseLsn_ = applied_lsn;
    durableBytes_ = kWalHeaderBytes;
}

void
Wal::writeDurable(const std::uint8_t *data, std::size_t size,
                  std::string_view site)
{
    std::optional<std::uint64_t> kill = faults_ != nullptr
        ? faults_->killOffset(site, cumulative_, cumulative_ + size)
        : std::nullopt;
    std::size_t persist =
        kill ? static_cast<std::size_t>(*kill - cumulative_) : size;
    std::FILE *f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr)
        throw IoError(path_, "cannot open write-ahead log for append");
    if (persist > 0 &&
        std::fwrite(data, 1, persist, f) != persist) {
        std::fclose(f);
        throw IoError(path_, "short append");
    }
    if (kill) {
        // Simulated crash: the prefix reaches the file (the in-process
        // fuzzers reread it immediately) but durability is deliberately
        // not promised — a real crash makes none either.
        std::fflush(f);
        std::fclose(f);
        cumulative_ = *kill;
        throw CrashError(std::string(site), *kill);
    }
    syncFile(f, path_);
    std::fclose(f);
    cumulative_ += size;
}

} // namespace clare::storage
