/**
 * @file
 * Append-only write-ahead log for live KB updates (store format v4).
 *
 * The PDBM store was built once and immutable; a production service
 * asserts and retracts online.  Durability protocol: every update
 * transaction appends its operation records followed by one Commit
 * record and syncs (fflush + fsync, so the bytes survive an OS crash
 * or power loss, not just a process exit) before the in-memory store
 * publishes the new generation, so any crash replays to exactly a
 * commit boundary.
 *
 * Wire format (all integers little-endian):
 *
 *   header   "CLWL" | u32 version (=1) | u64 baseLsn | u32 crc32
 *            (crc over the 16 bytes before it)
 *   record   u32 payloadBytes | u8 kind | payload | u32 crc32
 *            (crc over kind + payload)
 *
 * A record's LSN is `baseLsn + (file offset - header size)`; reset()
 * after a checkpoint rewrites the header with baseLsn = the applied
 * LSN, so LSNs grow monotonically across the whole WAL lifetime and
 * a manifest's `wal ... appliedLsn` watermark never collides with a
 * post-reset record.
 *
 * Torn-tail discipline (the robustness contract): open() walks the
 * records and truncates everything after the last complete Commit or
 * Checkpoint record — a half-written record, a bit-flipped tail CRC,
 * or uncommitted operation records are all discarded silently (that
 * is recovery, not corruption).  Only a damaged *header* is a typed
 * CorruptionError: there is no earlier commit boundary to fall back
 * to, so the caller must decide.  Never a process abort.
 *
 * Crash kill points: every durable write consults the injector's
 * killOffset() for site "wal.commit" (or "wal.checkpoint" during
 * reset) against the cumulative bytes written this process run; a hit
 * persists exactly the prefix and throws CrashError, which is what
 * lets the fuzzers prove commit atomicity at every byte offset.
 */

#ifndef CLARE_STORAGE_WAL_HH
#define CLARE_STORAGE_WAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/fault_injector.hh"

namespace clare::storage {

/** Magic number of a write-ahead log ("CLWL"). */
constexpr std::uint32_t kWalMagic = 0x434c574cu;
constexpr std::uint32_t kWalVersion = 1;
/** Header bytes: magic + version + baseLsn + header crc. */
constexpr std::size_t kWalHeaderBytes = 20;

/** Append-only, CRC-framed, crash-recoverable log. */
class Wal
{
  public:
    enum class RecordKind : std::uint8_t
    {
        Assert = 1,     ///< payload: u8 front flag, u32 len, clause text
        Retract = 2,    ///< payload: u32 arity, u32 ordinal,
                        ///< u32 nameLen, functor name (by *name* so
                        ///< replay survives symbol-id drift)
        Commit = 3,     ///< empty payload; transaction boundary
        Checkpoint = 4, ///< empty payload; store snapshot boundary
    };

    /** One committed record as recovered from disk. */
    struct Record
    {
        RecordKind kind;
        std::uint64_t lsn;
        std::vector<std::uint8_t> payload;
    };

    /**
     * Open (or create) the log at @p path, running torn-tail recovery.
     *
     * @param faults optional kill-point oracle for the durable writes
     * @throws IoError on unopenable paths, CorruptionError on a
     *         damaged header
     */
    explicit Wal(std::string path,
                 const support::FaultInjector *faults = nullptr);

    const std::string &path() const { return path_; }

    /** Committed records recovered at open, in log order. */
    const std::vector<Record> &recovered() const { return recovered_; }

    /** Torn/uncommitted tail bytes discarded at open (0 = clean). */
    std::uint64_t truncatedBytes() const { return truncated_; }

    /** LSN the current header starts numbering from. */
    std::uint64_t baseLsn() const { return baseLsn_; }

    /** LSN the next appended record will get. */
    std::uint64_t tailLsn() const;

    /**
     * Buffer one record.  Nothing is durable until commit() (or
     * sync()) — a crash loses buffered records, by design: they are
     * uncommitted.  @return the record's LSN
     */
    std::uint64_t append(RecordKind kind,
                         const std::vector<std::uint8_t> &payload);

    /**
     * Append a Commit record and durably flush everything buffered
     * (fsynced: on return the transaction is recoverable across OS
     * crash and power loss).  @return commit LSN
     * @throws CrashError at an armed kill point (prefix persisted),
     *         IoError on real write failures
     */
    std::uint64_t commit();

    /** Durably flush buffered records without a commit boundary. */
    void sync();

    /**
     * Truncate to a fresh header with baseLsn = @p applied_lsn (the
     * checkpoint watermark).  Records at or below the watermark are
     * folded into the checkpointed store; the log restarts empty.
     * Kill site: "wal.checkpoint".
     */
    void reset(std::uint64_t applied_lsn);

  private:
    /** Write + flush @p data, honoring the kill point of @p site. */
    void writeDurable(const std::uint8_t *data, std::size_t size,
                      std::string_view site);

    /** Serialize a fresh header with @p base_lsn into @p out. */
    static void encodeHeader(std::vector<std::uint8_t> &out,
                             std::uint64_t base_lsn);

    /** Walk the file image: recovery at construction. */
    void recoverFrom(std::vector<std::uint8_t> image);

    std::string path_;
    const support::FaultInjector *faults_;

    std::uint64_t baseLsn_ = 0;
    /** Durable size of the file (header + complete records). */
    std::uint64_t durableBytes_ = 0;
    /** Records appended but not yet synced. */
    std::vector<std::uint8_t> pending_;
    std::uint64_t pendingRecords_ = 0;

    /** Cumulative injector-visible bytes written this process run. */
    std::uint64_t cumulative_ = 0;

    std::vector<Record> recovered_;
    std::uint64_t truncated_ = 0;
};

} // namespace clare::storage

#endif // CLARE_STORAGE_WAL_HH
