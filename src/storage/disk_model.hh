/**
 * @file
 * Parameterized model of the disks CLARE streams clauses from.
 *
 * The paper's target platform is a SUN3/160 with either a SCSI disk
 * (e.g. Micropolis 1325) or a faster SMD disk (e.g. Fujitsu M2351A,
 * peak transfer circa 2 Mbytes/s).  The evaluation argument rests on
 * the sustained transfer rate — the filters must keep up with it — and
 * on the one-track worst case used to size the Result Memory, so the
 * model captures transfer rate, track geometry, and average access
 * time, and delivers data in DMA chunks with timestamps.
 */

#ifndef CLARE_STORAGE_DISK_MODEL_HH
#define CLARE_STORAGE_DISK_MODEL_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "support/fault_injector.hh"
#include "support/lru.hh"
#include "support/obs.hh"
#include "support/sim_time.hh"

namespace clare::storage {

/**
 * Bounded retry of transient device errors.  Each retry re-positions
 * the head, so it costs a full accessTime(); a chunk that fails every
 * attempt is a permanent failure (IoError).
 */
struct RetryPolicy
{
    std::uint32_t maxAttempts = 3;
};

/** Static description of a disk. */
struct DiskGeometry
{
    std::string name;
    std::uint32_t bytesPerSector = 512;
    std::uint32_t sectorsPerTrack = 64;     ///< 32 KB tracks by default
    std::uint32_t rpm = 3600;
    Tick averageSeek = 20 * kMillisecond;
    /** Sustained transfer rate in bytes per second. */
    double transferRate = 2.0e6;

    std::uint32_t
    trackBytes() const
    {
        return bytesPerSector * sectorsPerTrack;
    }

    /** SCSI disk option of the SUN3/160 (slower transfer). */
    static DiskGeometry micropolis1325();

    /** SMD disk option, tuned to its ~2 MB/s peak rate. */
    static DiskGeometry fujitsuM2351A();
};

/**
 * L1 of the retrieval cache hierarchy: an LRU track buffer in front
 * of the disk model.  A read whose tracks are all resident skips the
 * seek + rotational latency entirely and transfers at @ref cacheRate
 * (a memory-speed copy); a miss pays the usual access + stream and
 * then fills the touched tracks.  Fault injection applies to fills
 * only — a cached hit re-reads bytes that were already delivered and
 * CRC-verified once — and a fill that delivered corrupted bytes is
 * never admitted.
 */
struct DiskCacheConfig
{
    /** Capacity in tracks of the owning DiskGeometry; 0 disables. */
    std::uint32_t capacityTracks = 0;
    /** Hit transfer rate in bytes per second (memory-speed copy). */
    double cacheRate = 200.0e6;
};

/** Modeled timing of one read, cache-aware (see DiskModel::modelRead). */
struct ReadTiming
{
    Tick access = 0;    ///< seek + rotation (0 on a cache hit)
    Tick transfer = 0;  ///< at the disk or cache rate
    bool cacheHit = false;

    Tick total() const { return access + transfer; }
};

/**
 * A disk holding one byte image, streamed in DMA chunks.
 *
 * The model is deliberately simple: an access (seek + half rotation)
 * positions the head, then bytes arrive at the sustained transfer
 * rate.  Chunk delivery times are exact fractions of the rate so that
 * filter-vs-disk rate comparisons are faithful.
 */
class DiskModel
{
  public:
    explicit DiskModel(DiskGeometry geometry);

    // Movable despite the cache mutex (stores are returned by value
    // from loaders); the mutex itself is freshly constructed and the
    // source is locked while its cache state is taken.
    DiskModel(DiskModel &&other) noexcept;
    DiskModel &operator=(DiskModel &&other) noexcept;

    const DiskGeometry &geometry() const { return geometry_; }

    /** Replace the stored image. */
    void load(std::vector<std::uint8_t> image);

    const std::vector<std::uint8_t> &image() const { return image_; }

    /** Average positioning time: seek plus half a rotation. */
    Tick accessTime() const;

    /** Pure transfer time for a byte count at the sustained rate. */
    Tick transferTime(std::uint64_t bytes) const;

    /**
     * Enable (capacityTracks > 0) or disable (== 0) the LRU track
     * cache.  Reconfiguring drops all resident tracks.
     */
    void configureCache(DiskCacheConfig config);

    const DiskCacheConfig &cacheConfig() const { return cacheConfig_; }

    /** Tracks currently resident in the cache. */
    std::size_t cachedTracks() const;

    /**
     * Drop every resident track (e.g. after a store reload).  Const
     * like the read paths: only the mutable cache state changes.
     */
    void dropCache() const;

    /**
     * Analytic cache-aware read model, used by the CRS in place of
     * accessTime() + transferTime() for index streams and candidate
     * fetches.  A hit (every touched track resident) returns zero
     * access and a cacheRate transfer; a miss returns the usual disk
     * timing and admits the touched tracks (unless the range exceeds
     * the whole capacity — a scan that large would only flush the
     * cache without ever hitting).  With the cache disabled this is
     * exactly {accessTime(), transferTime(length), false} and touches
     * no counters, so clean runs stay bit-identical.
     *
     * Thread-safe; the LRU update is deterministic in call order.
     *
     * @param obs optional metrics sink: disk.cache.hit / miss / evict
     *        counters, created lazily only when the cache is enabled
     */
    ReadTiming modelRead(std::uint64_t offset, std::uint64_t length,
                         const obs::Observer &obs = {}) const;

    /**
     * Stream a byte range as DMA chunks.
     *
     * @param offset,length range within the image
     * @param chunk_bytes DMA chunk size (e.g. one Double Buffer bank)
     * @param start simulated time the command is issued
     * @param sink called per chunk with (data pointer, size,
     *        delivery-complete time); delivery times include the
     *        initial access time
     * @param obs optional sinks: a "disk.stream" span (simTicks = the
     *        modeled access + transfer time) and counters
     *        disk.streams / disk.bytes_streamed / disk.chunks (plus
     *        disk.retry.* when faults force re-reads)
     * @param parent span the "disk.stream" span nests under
     * @param faults optional fault oracle; transient errors force a
     *        bounded re-read (each costing a re-seek that shows in the
     *        delivery times), corrupt chunks are delivered from a
     *        scratch copy with the deterministic bit flipped, delayed
     *        chunks shift the rest of the stream
     * @param retry bound on the re-read attempts per chunk
     * @param site fault-oracle channel name the chunk keys live in
     * @return the time the final chunk completes (= start + access +
     *         transfer of all bytes + fault penalties), or start for
     *         an empty range
     * @throws IoError when a chunk fails every bounded attempt
     */
    Tick stream(std::uint64_t offset, std::uint64_t length,
                std::uint32_t chunk_bytes, Tick start,
                const std::function<void(const std::uint8_t *,
                                         std::uint32_t, Tick)> &sink,
                const obs::Observer &obs = {},
                obs::SpanId parent = 0,
                const support::FaultInjector *faults = nullptr,
                RetryPolicy retry = {},
                std::string_view site = "disk.data") const;

  private:
    DiskGeometry geometry_;
    std::vector<std::uint8_t> image_;

    /**
     * L1 track cache.  Mutable behind a mutex: reads are logically
     * const (the server holds the store by const reference) but warm
     * the cache as a real track buffer would.  Keys are track
     * numbers; the value is unused.
     */
    DiskCacheConfig cacheConfig_;
    mutable std::mutex cacheMutex_;
    mutable support::LruCache<std::uint64_t, char> cache_;

    /** Hit test + LRU admission for a byte range; counts hit/miss. */
    bool cacheLookup(std::uint64_t offset, std::uint64_t length,
                     const obs::Observer &obs) const;

    /** Admit a cleanly-read range's tracks (fill path). */
    void cacheFill(std::uint64_t offset, std::uint64_t length,
                   const obs::Observer &obs) const;

    /** Hit-path transfer time at the memory-speed cache rate. */
    Tick cacheTransferTime(std::uint64_t bytes) const;
};

} // namespace clare::storage

#endif // CLARE_STORAGE_DISK_MODEL_HH
