/**
 * @file
 * On-disk persistence for compiled clause files and secondary files.
 *
 * In the PDBM system large modules live in operating-system files and
 * are opened per session; these helpers serialize the in-memory images
 * with a small header (magic, version, predicate identity) so a store
 * can be built once and reloaded.
 */

#ifndef CLARE_STORAGE_FILE_IO_HH
#define CLARE_STORAGE_FILE_IO_HH

#include <string>
#include <vector>

#include "storage/clause_file.hh"
#include "term/symbol_table.hh"

namespace clare::storage {

/** Magic number of a persisted clause file ("CLRE"). */
constexpr std::uint32_t kClauseFileMagic = 0x434c5245u;
/** Current on-disk format version. */
constexpr std::uint32_t kClauseFileVersion = 1;

/** Write raw bytes to a path (fatal on I/O failure). */
void writeBytes(const std::string &path,
                const std::vector<std::uint8_t> &bytes);

/** Read a whole file (fatal on I/O failure). */
std::vector<std::uint8_t> readBytes(const std::string &path);

/**
 * Persist a clause file: header (magic, version, functor, arity,
 * clause count, image size) followed by the record image.
 */
void saveClauseFile(const std::string &path, const ClauseFile &file);

/**
 * Load a persisted clause file, re-deriving the record directory by
 * walking the image.  Fatal on bad magic/version or a corrupt image.
 */
ClauseFile loadClauseFile(const std::string &path);

/** Persist a symbol table (atom names and float constants). */
void saveSymbolTable(const std::string &path,
                     const term::SymbolTable &symbols);

/**
 * Repopulate a *fresh* symbol table from a persisted one; the interned
 * ids come out identical to the saved ids.  Fatal if @p symbols has
 * interned anything beyond the reserved entries.
 */
void loadSymbolTable(const std::string &path,
                     term::SymbolTable &symbols);

} // namespace clare::storage

#endif // CLARE_STORAGE_FILE_IO_HH
