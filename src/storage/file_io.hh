/**
 * @file
 * On-disk persistence for compiled clause files and secondary files.
 *
 * In the PDBM system large modules live in operating-system files and
 * are opened per session; these helpers serialize the in-memory images
 * with a small header (magic, version, predicate identity) so a store
 * can be built once and reloaded.
 *
 * Format v2 adds CRC-32 page framing: after the header, one checksum
 * per 4 KB page of the payload, verified on load so that a flipped
 * bit anywhere in the image is reported as a typed CorruptionError
 * naming the file, page, and byte offset — never consumed silently
 * and never a process abort.  v1 images (no checksums) still load.
 *
 * Error taxonomy (support/errors.hh): IoError for open/short
 * read/write failures, CorruptionError for bad magic/version,
 * truncation, checksum mismatches, and structural walk failures.
 */

#ifndef CLARE_STORAGE_FILE_IO_HH
#define CLARE_STORAGE_FILE_IO_HH

#include <cstdio>
#include <string>
#include <vector>

#include "storage/clause_file.hh"
#include "support/errors.hh"
#include "term/symbol_table.hh"

namespace clare::storage {

/** Magic number of a persisted clause file ("CLRE"). */
constexpr std::uint32_t kClauseFileMagic = 0x434c5245u;
/** Current clause-file format: v2 = CRC-32 page framing. */
constexpr std::uint32_t kClauseFileVersion = 2;
/** Oldest clause-file format still readable (no checksums). */
constexpr std::uint32_t kClauseFileVersionCompat = 1;

/** Magic number of a persisted symbol table ("CLSY"). */
constexpr std::uint32_t kSymbolFileMagic = 0x434c5359u;
/** Current symbol-table format: v2 = payload CRC-32. */
constexpr std::uint32_t kSymbolFileVersion = 2;

/** Magic number of a framed raw-byte file ("CLFR"). */
constexpr std::uint32_t kFramedMagic = 0x434c4652u;
constexpr std::uint32_t kFramedVersion = 1;

/**
 * Flush @p f's stdio buffer and fsync its descriptor, so the written
 * bytes survive an OS crash or power loss — not merely a process
 * crash.  The stream stays open; the caller still fcloses it.
 * @throws IoError (named after @p path)
 */
void syncFile(std::FILE *f, const std::string &path);

/**
 * fsync the directory at @p path so a just-created or just-renamed
 * entry inside it is durable.  Best-effort: a no-op on platforms
 * without directory descriptors.
 */
void syncDirectory(const std::string &path);

/** Write raw bytes to a path.  @throws IoError */
void writeBytes(const std::string &path,
                const std::vector<std::uint8_t> &bytes);

/** Read a whole file.  @throws IoError */
std::vector<std::uint8_t> readBytes(const std::string &path);

/**
 * Write raw bytes wrapped in the checksummed page frame (header +
 * per-page CRC-32 + payload).  Used for secondary (index) files,
 * whose payload layout is owned by scw.  @throws IoError
 */
void writeFramedBytes(const std::string &path,
                      const std::vector<std::uint8_t> &bytes);

/**
 * Read a page-framed file back, verifying the header and every page
 * checksum.  @throws IoError, CorruptionError
 */
std::vector<std::uint8_t> readFramedBytes(const std::string &path);

/**
 * Persist a clause file: header (magic, version, functor, arity,
 * clause count, image size, page geometry, header CRC), per-page
 * image checksums, then the record image.  @throws IoError
 */
void saveClauseFile(const std::string &path, const ClauseFile &file);

/**
 * Load a persisted clause file (v1 or v2), verifying checksums (v2)
 * and re-deriving the record directory by walking the image.
 * @throws IoError, CorruptionError
 */
ClauseFile loadClauseFile(const std::string &path);

/**
 * Persist a symbol table (atom names and float constants) with a
 * payload CRC-32.  @throws IoError
 */
void saveSymbolTable(const std::string &path,
                     const term::SymbolTable &symbols);

/**
 * Repopulate a *fresh* symbol table from a persisted one (v1 or v2);
 * the interned ids come out identical to the saved ids.  Throws
 * FatalError if @p symbols has interned anything beyond the reserved
 * entries (a usage error), CorruptionError on damaged images.
 */
void loadSymbolTable(const std::string &path,
                     term::SymbolTable &symbols);

} // namespace clare::storage

#endif // CLARE_STORAGE_FILE_IO_HH
