#include "storage/clause_file.hh"

#include <algorithm>
#include <cstdio>

#include "support/crc32.hh"
#include "support/errors.hh"
#include "support/logging.hh"

namespace clare::storage {

namespace {

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
getU16(const std::vector<std::uint8_t> &in, std::size_t at)
{
    return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    return v;
}

} // namespace

const ClauseRecord &
ClauseFile::record(std::size_t i) const
{
    clare_assert(i < records_.size(), "clause index %zu out of range", i);
    return records_[i];
}

ClauseRecord
ClauseFile::parseHeader(const std::vector<std::uint8_t> &image,
                        std::size_t offset)
{
    if (offset + kRecordHeaderBytes > image.size())
        clare_fatal("clause record header truncated at offset %zu",
                    offset);
    ClauseRecord rec;
    rec.offset = static_cast<std::uint32_t>(offset);
    rec.ordinal = getU32(image, offset);
    rec.functor = getU32(image, offset + 4);
    rec.arity = image[offset + 8];
    rec.flags = image[offset + 9];
    rec.itemCount = getU16(image, offset + 10);
    std::uint32_t item_bytes = getU32(image, offset + 12);
    std::uint32_t source_bytes = getU32(image, offset + 16);
    rec.length = static_cast<std::uint32_t>(kRecordHeaderBytes) +
        item_bytes + source_bytes;
    if (offset + rec.length > image.size())
        clare_fatal("clause record body truncated at offset %zu", offset);
    return rec;
}

pif::EncodedArgs
ClauseFile::decodeArgsAt(const std::vector<std::uint8_t> &image,
                         const ClauseRecord &rec)
{
    // This is the boundary between stored bytes and the engine: a
    // clause-file v1 image has no page checksums, so a flipped byte
    // arrives here undetected.  Every structural property the engine
    // relies on is validated with a typed CorruptionError — the
    // engine's own guards are clare_assert backstops, not error
    // reporting.
    auto fail = [](std::size_t at, const std::string &why) {
        throw CorruptionError(
            "clause image", at / support::kChecksumPageBytes, at, why);
    };
    auto hex_tag = [](pif::Tag tag) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "0x%02x",
                      static_cast<unsigned>(tag));
        return std::string(buf);
    };
    const std::size_t rec_end = std::min<std::size_t>(
        static_cast<std::size_t>(rec.offset) + rec.length, image.size());

    pif::EncodedArgs args;
    std::vector<std::size_t> item_at;
    item_at.reserve(rec.itemCount);
    std::size_t at = rec.offset + kRecordHeaderBytes;
    for (std::uint16_t i = 0; i < rec.itemCount; ++i) {
        if (at >= rec_end)
            fail(at, "PIF stream truncated after " +
                     std::to_string(i) + " of " +
                     std::to_string(rec.itemCount) + " items");
        const pif::Tag tag = image[at];
        if (!pif::isValidTag(tag))
            fail(at, "invalid PIF tag " + hex_tag(tag));
        const pif::TagClass cls = pif::tagClass(tag);
        if (cls == pif::TagClass::FirstQueryVar ||
            cls == pif::TagClass::SubQueryVar)
            fail(at, "query-variable tag " + hex_tag(tag) +
                     " in a database stream");
        if (at + (pif::tagHasExtension(tag) ? 9u : 5u) > rec_end)
            fail(at, "PIF item overruns the record body");
        item_at.push_back(at);
        // All of deserializeItem's fatal paths are pre-checked above
        // (against the record end, which is tighter than the image
        // end), so this cannot abort.
        args.items.push_back(pif::deserializeItem(image, at));
    }

    // Rebuild the argument index and variable-slot count.
    std::uint32_t max_slot = 0;
    bool any_var = false;
    for (std::size_t i = 0; i < args.items.size(); ++i) {
        const pif::PifItem &item = args.items[i];
        pif::TagClass cls = pif::tagClass(item.tag);
        if (cls == pif::TagClass::FirstDbVar ||
            cls == pif::TagClass::SubDbVar) {
            // Slots are assigned densely from zero, one per distinct
            // variable, so a slot at or past the item count can only
            // come from a corrupted content word — and would size the
            // TUE binding memory arbitrarily.
            if (item.content >= rec.itemCount)
                fail(item_at[i], "variable slot " +
                                 std::to_string(item.content) +
                                 " out of range for a record of " +
                                 std::to_string(rec.itemCount) +
                                 " items");
            any_var = true;
            max_slot = std::max(max_slot, item.content);
        }
    }
    args.varSlots = any_var ? max_slot + 1 : 0;

    std::size_t idx = 0;
    std::uint32_t seen = 0;
    while (idx < args.items.size()) {
        args.argIndex.push_back(idx);
        const pif::PifItem &item = args.items[idx];
        std::size_t width = 1;
        if (pif::isInlineComplexTag(item.tag)) {
            width = 1 + pif::tagArity(item.tag);
            if (idx + width > args.items.size())
                fail(item_at[idx],
                     "in-line complex item needs " +
                         std::to_string(width - 1) +
                         " elements but only " +
                         std::to_string(args.items.size() - idx - 1) +
                         " items follow");
        }
        idx += width;
        ++seen;
    }
    if (seen != rec.arity)
        fail(rec.offset, "decoded " + std::to_string(seen) +
                         " arguments but record arity is " +
                         std::to_string(rec.arity));
    return args;
}

pif::EncodedArgs
ClauseFile::decodeArgs(std::size_t i) const
{
    return decodeArgsAt(image_, record(i));
}

std::string
ClauseFile::sourceText(std::size_t i) const
{
    const ClauseRecord &rec = record(i);
    std::uint32_t item_bytes = getU32(image_, rec.offset + 12);
    std::uint32_t source_bytes = getU32(image_, rec.offset + 16);
    std::size_t at = rec.offset + kRecordHeaderBytes + item_bytes;
    return std::string(image_.begin() + static_cast<std::ptrdiff_t>(at),
                       image_.begin() +
                       static_cast<std::ptrdiff_t>(at + source_bytes));
}

void
ClauseFileBuilder::add(const term::Clause &clause)
{
    term::PredicateId pred = clause.predicate();
    if (!havePredicate_) {
        file_.predicate_ = pred;
        havePredicate_ = true;
    } else if (!(pred == file_.predicate_)) {
        clare_fatal("clause file mixes predicates (functor %u/%u vs "
                    "%u/%u)", pred.functor, pred.arity,
                    file_.predicate_.functor, file_.predicate_.arity);
    }
    if (pred.arity > 255)
        clare_fatal("predicate arity %u exceeds the record limit",
                    pred.arity);

    pif::EncodedArgs args = encoder_.encodeArgs(clause.arena(),
                                                clause.head(),
                                                pif::Side::Db);
    std::vector<std::uint8_t> items;
    for (const auto &item : args.items)
        pif::serializeItem(item, items);
    std::string source = writer_.writeClause(clause);

    ClauseRecord rec;
    rec.ordinal = firstOrdinal_ +
        static_cast<std::uint32_t>(file_.records_.size());
    rec.offset = static_cast<std::uint32_t>(file_.image_.size());
    rec.functor = pred.functor;
    rec.arity = static_cast<std::uint8_t>(pred.arity);
    rec.flags = static_cast<std::uint8_t>(
        (clause.isFact() ? 0x01 : 0x00) |
        (clause.isGroundFact() ? 0x02 : 0x00));
    if (args.items.size() > 0xffff)
        clare_fatal("clause head compiles to %zu PIF items (limit 65535)",
                    args.items.size());
    rec.itemCount = static_cast<std::uint16_t>(args.items.size());
    rec.length = static_cast<std::uint32_t>(
        kRecordHeaderBytes + items.size() + source.size());

    putU32(file_.image_, rec.ordinal);
    putU32(file_.image_, rec.functor);
    file_.image_.push_back(rec.arity);
    file_.image_.push_back(rec.flags);
    putU16(file_.image_, rec.itemCount);
    putU32(file_.image_, static_cast<std::uint32_t>(items.size()));
    putU32(file_.image_, static_cast<std::uint32_t>(source.size()));
    file_.image_.insert(file_.image_.end(), items.begin(), items.end());
    file_.image_.insert(file_.image_.end(), source.begin(), source.end());
    file_.records_.push_back(rec);
}

ClauseFile
ClauseFileBuilder::finish()
{
    ClauseFile out = std::move(file_);
    file_ = ClauseFile();
    havePredicate_ = false;
    return out;
}

ClauseFile
ClauseFile::concat(const ClauseFile &base, const ClauseFile &tail)
{
    if (base.clauseCount() == 0)
        return tail;
    if (tail.clauseCount() == 0)
        return base;
    clare_assert(base.predicate_ == tail.predicate_,
                 "concatenating clause files of different predicates");
    clare_assert(tail.records_.front().ordinal ==
                     base.records_.size(),
                 "tail ordinals start at %u, base holds %zu clauses",
                 tail.records_.front().ordinal, base.records_.size());
    ClauseFile out;
    out.predicate_ = base.predicate_;
    out.image_.reserve(base.image_.size() + tail.image_.size());
    out.image_ = base.image_;
    out.image_.insert(out.image_.end(), tail.image_.begin(),
                      tail.image_.end());
    out.records_ = base.records_;
    out.records_.reserve(base.records_.size() + tail.records_.size());
    std::uint32_t shift = static_cast<std::uint32_t>(base.image_.size());
    for (ClauseRecord rec : tail.records_) {
        rec.offset += shift;    // directory-only; not in the wire bytes
        out.records_.push_back(rec);
    }
    return out;
}

} // namespace clare::storage
