/**
 * @file
 * The compiled clause file: one predicate's clauses in PIF, in source
 * order, framed for on-the-fly filtering.
 *
 * "Predicates with the same functor names and arities are stored in a
 * compiled clause file" (section 2.1).  Each record carries the
 * compiled head-argument stream that FS2 matches, plus the clause's
 * source text so the host can reconstruct the full clause (head and
 * body) for final unification and resolution after retrieval.
 *
 * Record wire layout (little endian):
 *
 *   u32 ordinal       clause position within the predicate
 *   u32 functor       symbol-table offset of the head functor
 *   u8  arity
 *   u8  flags         bit0 = fact (no body), bit1 = ground fact
 *   u16 itemCount     number of PIF items that follow
 *   u32 itemBytes     wire size of the PIF items
 *   u32 sourceBytes   length of the source text
 *   ...PIF items...
 *   ...source text...
 */

#ifndef CLARE_STORAGE_CLAUSE_FILE_HH
#define CLARE_STORAGE_CLAUSE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pif/encoder.hh"
#include "term/clause.hh"
#include "term/term_writer.hh"

namespace clare::storage {

/** Size of the fixed record header in bytes. */
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 1 + 1 + 2 + 4 + 4;

/** Per-clause directory entry of a clause file. */
struct ClauseRecord
{
    std::uint32_t ordinal = 0;
    std::uint32_t offset = 0;       ///< byte offset of the record
    std::uint32_t length = 0;       ///< total record bytes
    std::uint32_t functor = 0;
    std::uint8_t arity = 0;
    std::uint8_t flags = 0;
    std::uint16_t itemCount = 0;

    bool isFact() const { return flags & 0x01; }
    bool isGroundFact() const { return flags & 0x02; }
};

/**
 * An immutable compiled clause file plus its record directory.
 *
 * The byte image is what the disk stores and the filters stream; the
 * directory is what the host (and FS1's address list) uses to fetch
 * individual clauses.
 */
class ClauseFile
{
  public:
    ClauseFile() = default;

    const std::vector<std::uint8_t> &image() const { return image_; }
    std::size_t clauseCount() const { return records_.size(); }
    const ClauseRecord &record(std::size_t i) const;

    term::PredicateId predicate() const { return predicate_; }

    /** Decode the compiled head-argument stream of clause @p i. */
    pif::EncodedArgs decodeArgs(std::size_t i) const;

    /** The stored source text of clause @p i. */
    std::string sourceText(std::size_t i) const;

    /** Parse one record starting at @p offset of an arbitrary image. */
    static ClauseRecord parseHeader(const std::vector<std::uint8_t> &image,
                                    std::size_t offset);

    /** Decode a record's argument stream from an arbitrary image. */
    static pif::EncodedArgs decodeArgsAt(
        const std::vector<std::uint8_t> &image, const ClauseRecord &rec);

    /**
     * Concatenate two clause files of one predicate into a composite
     * whose byte image equals base.image() + tail.image() — the live
     * write path appends assertz deltas this way.  The tail must have
     * been built with first_ordinal == base.clauseCount() (the record
     * ordinals live inside the wire bytes, so numbering is fixed at
     * build time); the result is then byte-identical to rebuilding
     * the whole predicate from scratch.  An empty base yields tail.
     */
    static ClauseFile concat(const ClauseFile &base,
                             const ClauseFile &tail);

  private:
    friend class ClauseFileBuilder;
    friend ClauseFile loadClauseFile(const std::string &path);

    term::PredicateId predicate_;
    std::vector<std::uint8_t> image_;
    std::vector<ClauseRecord> records_;
};

/** Builds a clause file for one predicate, preserving clause order. */
class ClauseFileBuilder
{
  public:
    /**
     * @param writer renders clause source text for the host-side copy
     * @param first_ordinal ordinal of the first clause added — the
     *        live write path builds *delta* files whose numbering
     *        continues a base file's, so ClauseFile::concat yields an
     *        image byte-identical to a from-scratch rebuild
     */
    explicit ClauseFileBuilder(const term::TermWriter &writer,
                               std::uint32_t first_ordinal = 0)
        : writer_(writer), firstOrdinal_(first_ordinal)
    {}

    /** Append a clause; all clauses must share one predicate. */
    void add(const term::Clause &clause);

    /** Number of clauses added so far. */
    std::size_t size() const { return file_.records_.size(); }

    /** Finish and return the file (builder becomes empty). */
    ClauseFile finish();

  private:
    const term::TermWriter &writer_;
    pif::Encoder encoder_;
    ClauseFile file_;
    bool havePredicate_ = false;
    std::uint32_t firstOrdinal_ = 0;
};

} // namespace clare::storage

#endif // CLARE_STORAGE_CLAUSE_FILE_HH
