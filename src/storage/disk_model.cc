#include "storage/disk_model.hh"

#include <algorithm>

#include "support/errors.hh"
#include "support/logging.hh"

namespace clare::storage {

DiskGeometry
DiskGeometry::micropolis1325()
{
    DiskGeometry g;
    g.name = "Micropolis 1325 (SCSI)";
    g.bytesPerSector = 512;
    g.sectorsPerTrack = 64;
    g.rpm = 3600;
    g.averageSeek = 28 * kMillisecond;
    g.transferRate = 1.0e6;     // SCSI-era sustained rate, ~1 MB/s
    return g;
}

DiskGeometry
DiskGeometry::fujitsuM2351A()
{
    DiskGeometry g;
    g.name = "Fujitsu M2351A (SMD)";
    g.bytesPerSector = 512;
    g.sectorsPerTrack = 64;
    g.rpm = 3961;
    g.averageSeek = 18 * kMillisecond;
    g.transferRate = 2.0e6;     // the paper's "circa 2 Mbytes/second"
    return g;
}

DiskModel::DiskModel(DiskGeometry geometry)
    : geometry_(std::move(geometry))
{
    clare_assert(geometry_.transferRate > 0, "transfer rate must be > 0");
}

void
DiskModel::load(std::vector<std::uint8_t> image)
{
    image_ = std::move(image);
}

Tick
DiskModel::accessTime() const
{
    // Half a rotation of latency on average.  Synthetic zero-rpm
    // geometries (e.g. a memory-backed feed) have no rotational
    // latency at all.
    if (geometry_.rpm == 0)
        return geometry_.averageSeek;
    double rotation_s = 60.0 / geometry_.rpm;
    Tick half_rotation = static_cast<Tick>(rotation_s / 2.0 * kSecond);
    return geometry_.averageSeek + half_rotation;
}

Tick
DiskModel::transferTime(std::uint64_t bytes) const
{
    double seconds = static_cast<double>(bytes) / geometry_.transferRate;
    return static_cast<Tick>(seconds * kSecond);
}

// ---------------------------------------------------------------------
// L1 track cache.
// ---------------------------------------------------------------------

DiskModel::DiskModel(DiskModel &&other) noexcept
    : geometry_(std::move(other.geometry_)),
      image_(std::move(other.image_))
{
    std::lock_guard<std::mutex> lock(other.cacheMutex_);
    cacheConfig_ = other.cacheConfig_;
    cache_ = std::move(other.cache_);
}

DiskModel &
DiskModel::operator=(DiskModel &&other) noexcept
{
    if (this != &other) {
        std::scoped_lock lock(cacheMutex_, other.cacheMutex_);
        geometry_ = std::move(other.geometry_);
        image_ = std::move(other.image_);
        cacheConfig_ = other.cacheConfig_;
        cache_ = std::move(other.cache_);
    }
    return *this;
}

void
DiskModel::configureCache(DiskCacheConfig config)
{
    clare_assert(config.capacityTracks == 0 || config.cacheRate > 0,
                 "cache hit rate must be a positive byte rate");
    std::lock_guard<std::mutex> lock(cacheMutex_);
    cacheConfig_ = config;
    cache_ = support::LruCache<std::uint64_t, char>(
        config.capacityTracks);
}

std::size_t
DiskModel::cachedTracks() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_.size();
}

void
DiskModel::dropCache() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    cache_.clear();
}

Tick
DiskModel::cacheTransferTime(std::uint64_t bytes) const
{
    double seconds = static_cast<double>(bytes) /
        cacheConfig_.cacheRate;
    return static_cast<Tick>(seconds * kSecond);
}

bool
DiskModel::cacheLookup(std::uint64_t offset, std::uint64_t length,
                       const obs::Observer &obs) const
{
    const std::uint64_t track_bytes = geometry_.trackBytes();
    std::uint64_t first = offset / track_bytes;
    std::uint64_t last = (offset + length - 1) / track_bytes;
    std::lock_guard<std::mutex> lock(cacheMutex_);
    bool hit = true;
    for (std::uint64_t t = first; t <= last && hit; ++t)
        hit = cache_.contains(t);
    if (hit) {
        // Promote the whole range: the read touched every track.
        for (std::uint64_t t = first; t <= last; ++t)
            cache_.get(t);
    }
    if (obs.metrics != nullptr) {
        if (hit)
            ++obs.metrics->counter("disk.cache.hit",
                                   "reads served from the track cache");
        else
            ++obs.metrics->counter("disk.cache.miss",
                                   "reads that went to the platters");
    }
    return hit;
}

void
DiskModel::cacheFill(std::uint64_t offset, std::uint64_t length,
                     const obs::Observer &obs) const
{
    const std::uint64_t track_bytes = geometry_.trackBytes();
    std::uint64_t first = offset / track_bytes;
    std::uint64_t last = (offset + length - 1) / track_bytes;
    // A range wider than the whole cache would evict itself before it
    // could ever hit; leave the resident set alone (scan resistance).
    if (last - first + 1 > cacheConfig_.capacityTracks)
        return;
    std::uint64_t evictions = 0;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        for (std::uint64_t t = first; t <= last; ++t)
            evictions += cache_.put(t, 0) ? 1 : 0;
    }
    if (evictions > 0 && obs.metrics != nullptr) {
        obs.metrics->counter("disk.cache.evict",
                             "tracks evicted from the track cache") +=
            evictions;
    }
}

ReadTiming
DiskModel::modelRead(std::uint64_t offset, std::uint64_t length,
                     const obs::Observer &obs) const
{
    ReadTiming timing;
    if (length == 0)
        return timing;
    if (cacheConfig_.capacityTracks == 0) {
        // Disabled: exactly the pre-cache timing, no counters, so the
        // default configuration stays bit-identical.
        timing.access = accessTime();
        timing.transfer = transferTime(length);
        return timing;
    }
    if (cacheLookup(offset, length, obs)) {
        timing.cacheHit = true;
        timing.transfer = cacheTransferTime(length);
        return timing;
    }
    timing.access = accessTime();
    timing.transfer = transferTime(length);
    cacheFill(offset, length, obs);
    return timing;
}

Tick
DiskModel::stream(std::uint64_t offset, std::uint64_t length,
                  std::uint32_t chunk_bytes, Tick start,
                  const std::function<void(const std::uint8_t *,
                                           std::uint32_t, Tick)> &sink,
                  const obs::Observer &obs, obs::SpanId parent,
                  const support::FaultInjector *faults,
                  RetryPolicy retry, std::string_view site) const
{
    clare_assert(chunk_bytes > 0, "chunk size must be positive");
    clare_assert(retry.maxAttempts >= 1,
                 "need at least one read attempt per chunk");
    if (length == 0)
        return start;
    clare_assert(offset + length <= image_.size(),
                 "stream range [%llu, +%llu) exceeds image of %zu bytes",
                 static_cast<unsigned long long>(offset),
                 static_cast<unsigned long long>(length),
                 image_.size());
    if (faults != nullptr && !faults->config().anyFaults())
        faults = nullptr;

    obs::ScopedSpan span(obs.tracer, "disk.stream", parent);

    if (cacheConfig_.capacityTracks > 0 &&
        cacheLookup(offset, length, obs)) {
        // Cache hit: no seek, no rotational latency, memory-speed
        // delivery — and no fault exposure, because the bytes were
        // already delivered and verified when the tracks were filled.
        Tick ready = start;
        std::uint64_t done = 0;
        std::uint64_t chunks = 0;
        while (done < length) {
            std::uint32_t n = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(chunk_bytes, length - done));
            Tick delivered = ready + cacheTransferTime(done + n);
            sink(image_.data() + offset + done, n, delivered);
            done += n;
            ++chunks;
        }
        Tick end = ready + cacheTransferTime(length);
        if (span.active()) {
            span.attr("bytes", length);
            span.attr("chunks", chunks);
            span.attr("cache_hit", static_cast<std::uint64_t>(1));
            span.setSimTicks(end - start);
        }
        if (obs.metrics != nullptr) {
            ++obs.metrics->counter("disk.streams",
                                   "DMA stream commands");
            obs.metrics->counter("disk.bytes_streamed",
                                 "bytes delivered by DMA streams") +=
                length;
            obs.metrics->counter("disk.chunks",
                                 "DMA chunks delivered") += chunks;
        }
        return end;
    }

    // Fault penalties accumulate into the head position time, so a
    // retried or delayed chunk honestly pushes out every later chunk
    // of the stream.
    Tick ready = start + accessTime();
    std::uint64_t done = 0;
    std::uint64_t chunks = 0;
    std::uint64_t retries = 0;
    std::uint64_t flips = 0;
    std::vector<std::uint8_t> scratch;
    while (done < length) {
        std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk_bytes, length - done));
        const std::uint8_t *data = image_.data() + offset + done;
        if (faults != nullptr) {
            std::uint64_t key = faults->chunkKey(offset + done);
            std::uint32_t attempt = 0;
            while (attempt < retry.maxAttempts &&
                   faults->transientError(site, key, attempt)) {
                ++attempt;
            }
            retries += attempt;
            // Each failed attempt forces a re-position before the
            // chunk can be read again.
            ready += static_cast<Tick>(attempt) * accessTime();
            if (attempt == retry.maxAttempts) {
                if (obs.metrics != nullptr) {
                    obs.metrics->counter(
                        "disk.retry.attempts",
                        "chunk re-reads after transient errors") +=
                        retries;
                    ++obs.metrics->counter(
                        "disk.retry.exhausted",
                        "chunks unreadable after bounded retries");
                }
                throw IoError(geometry_.name,
                              "chunk at byte " +
                              std::to_string(offset + done) +
                              " unreadable after " +
                              std::to_string(retry.maxAttempts) +
                              " attempts");
            }
            if (faults->corruptChunk(site, key)) {
                scratch.assign(data, data + n);
                faults->flipBit(site, key, scratch.data(),
                                scratch.size());
                data = scratch.data();
                ++flips;
            }
            ready += faults->chunkDelay(site, key);
        }
        // Delivery completes once all bytes of the chunk have been
        // transferred at the sustained rate.
        Tick delivered = ready + transferTime(done + n);
        sink(data, n, delivered);
        done += n;
        ++chunks;
    }
    Tick end = ready + transferTime(length);
    // Fill on the way out — but never admit a range whose delivered
    // copy was corrupted: CRC verification happens at fill time only,
    // so a poisoned track would keep serving flipped bits from then
    // on.  (The transient-retry path is fine: the eventual read is the
    // clean master image.)
    if (cacheConfig_.capacityTracks > 0 && flips == 0)
        cacheFill(offset, length, obs);
    if (span.active()) {
        span.attr("bytes", length);
        span.attr("chunks", chunks);
        if (retries > 0)
            span.attr("retries", retries);
        span.setSimTicks(end - start);
    }
    if (obs.metrics != nullptr) {
        ++obs.metrics->counter("disk.streams", "DMA stream commands");
        obs.metrics->counter("disk.bytes_streamed",
                             "bytes delivered by DMA streams") += length;
        obs.metrics->counter("disk.chunks", "DMA chunks delivered") +=
            chunks;
        // Fault counters are created lazily, only on actual fault
        // events, so clean runs keep a bit-identical metrics dump.
        if (retries > 0)
            obs.metrics->counter(
                "disk.retry.attempts",
                "chunk re-reads after transient errors") += retries;
        if (flips > 0)
            obs.metrics->counter(
                "disk.faults.bit_flips",
                "chunks delivered with an injected bit flip") += flips;
    }
    return end;
}

} // namespace clare::storage
