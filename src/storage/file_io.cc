#include "storage/file_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "support/crc32.hh"
#include "support/logging.hh"

namespace clare::storage {

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    return v;
}

[[noreturn]] void
corrupt(const std::string &path, std::uint64_t page,
        std::uint64_t offset, const std::string &why)
{
    throw CorruptionError(path, page, offset, why);
}

/**
 * Verify the per-page checksums of @p payload against the table at
 * @p crc_at of @p in.  @p payload_at is the payload's byte offset in
 * the file, used to report absolute corruption locations.
 */
void
verifyPages(const std::string &path, const std::vector<std::uint8_t> &in,
            std::size_t crc_at, std::size_t payload_at,
            std::size_t payload_size, std::uint32_t page_bytes,
            std::uint32_t n_pages)
{
    for (std::uint32_t p = 0; p < n_pages; ++p) {
        std::size_t page_off = static_cast<std::size_t>(p) * page_bytes;
        std::size_t n = std::min<std::size_t>(page_bytes,
                                              payload_size - page_off);
        std::uint32_t want = getU32(in, crc_at + 4u * p);
        std::uint32_t got = support::crc32(
            in.data() + payload_at + page_off, n);
        if (got != want)
            corrupt(path, p, payload_at + page_off,
                    "page checksum mismatch (stored " +
                    std::to_string(want) + ", computed " +
                    std::to_string(got) + ")");
    }
}

std::uint32_t
pageCount(std::size_t payload_size, std::uint32_t page_bytes)
{
    return static_cast<std::uint32_t>(
        (payload_size + page_bytes - 1) / page_bytes);
}

void
putPageCrcs(std::vector<std::uint8_t> &out,
            const std::vector<std::uint8_t> &payload,
            std::uint32_t page_bytes)
{
    for (std::uint32_t c : support::pageChecksums(
             payload.data(), payload.size(), page_bytes))
        putU32(out, c);
}

} // namespace

void
syncFile(std::FILE *f, const std::string &path)
{
    if (std::fflush(f) != 0)
        throw IoError(path, "cannot flush");
#ifndef _WIN32
    if (::fsync(::fileno(f)) != 0)
        throw IoError(path, "cannot fsync");
#endif
}

void
syncDirectory(const std::string &path)
{
#ifndef _WIN32
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#endif
}

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "wb"), &std::fclose);
    if (!f)
        throw IoError(path, "cannot open for writing");
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) !=
            bytes.size()) {
        throw IoError(path, "short write");
    }
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        throw IoError(path, "cannot open for reading");
    std::fseek(f.get(), 0, SEEK_END);
    long size = std::ftell(f.get());
    if (size < 0)
        throw IoError(path, "cannot size file");
    std::fseek(f.get(), 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        std::fread(bytes.data(), 1, bytes.size(), f.get()) !=
            bytes.size()) {
        throw IoError(path, "short read");
    }
    return bytes;
}

// ---------------------------------------------------------------------
// Framed raw bytes (secondary files).
//
//   u32 magic "CLFR"   u32 version   u32 payload_size
//   u32 page_bytes     u32 n_pages   u32 header_crc (bytes [0,20))
//   u32 crc[n_pages]   u8 payload[payload_size]
// ---------------------------------------------------------------------

void
writeFramedBytes(const std::string &path,
                 const std::vector<std::uint8_t> &bytes)
{
    const std::uint32_t page = support::kChecksumPageBytes;
    std::vector<std::uint8_t> out;
    putU32(out, kFramedMagic);
    putU32(out, kFramedVersion);
    putU32(out, static_cast<std::uint32_t>(bytes.size()));
    putU32(out, page);
    putU32(out, pageCount(bytes.size(), page));
    putU32(out, support::crc32(out.data(), out.size()));
    putPageCrcs(out, bytes, page);
    out.insert(out.end(), bytes.begin(), bytes.end());
    writeBytes(path, out);
}

std::vector<std::uint8_t>
readFramedBytes(const std::string &path)
{
    std::vector<std::uint8_t> in = readBytes(path);
    if (in.size() < 24)
        corrupt(path, kNoFilePosition, in.size(),
                "too short to hold a frame header");
    if (getU32(in, 0) != kFramedMagic)
        corrupt(path, kNoFilePosition, 0, "bad frame magic");
    if (getU32(in, 4) != kFramedVersion)
        corrupt(path, kNoFilePosition, 4, "unsupported frame version " +
                std::to_string(getU32(in, 4)));
    if (getU32(in, 20) != support::crc32(in.data(), 20))
        corrupt(path, kNoFilePosition, 20, "frame header checksum "
                "mismatch");
    std::uint32_t payload_size = getU32(in, 8);
    std::uint32_t page_bytes = getU32(in, 12);
    std::uint32_t n_pages = getU32(in, 16);
    if (page_bytes == 0 || n_pages != pageCount(payload_size, page_bytes))
        corrupt(path, kNoFilePosition, 12, "incoherent page geometry");
    std::size_t payload_at = 24u + 4u * static_cast<std::size_t>(n_pages);
    if (in.size() != payload_at + payload_size)
        corrupt(path, kNoFilePosition, in.size(),
                "truncated payload (" +
                std::to_string(in.size() - std::min(in.size(),
                                                    payload_at)) +
                " of " + std::to_string(payload_size) + " bytes)");
    verifyPages(path, in, 24, payload_at, payload_size, page_bytes,
                n_pages);
    return std::vector<std::uint8_t>(
        in.begin() + static_cast<std::ptrdiff_t>(payload_at), in.end());
}

// ---------------------------------------------------------------------
// Clause files.
//
// v2: u32 magic  u32 version  u32 functor  u32 arity  u32 count
//     u32 image_size  u32 page_bytes  u32 n_pages
//     u32 header_crc (bytes [0,32))  u32 crc[n_pages]  u8 image[]
// v1: u32 magic  u32 version  u32 functor  u32 arity  u32 count
//     u32 image_size  u8 image[]           (read-compat only)
// ---------------------------------------------------------------------

void
saveClauseFile(const std::string &path, const ClauseFile &file)
{
    const std::uint32_t page = support::kChecksumPageBytes;
    std::vector<std::uint8_t> out;
    putU32(out, kClauseFileMagic);
    putU32(out, kClauseFileVersion);
    putU32(out, file.predicate().functor);
    putU32(out, file.predicate().arity);
    putU32(out, static_cast<std::uint32_t>(file.clauseCount()));
    putU32(out, static_cast<std::uint32_t>(file.image().size()));
    putU32(out, page);
    putU32(out, pageCount(file.image().size(), page));
    putU32(out, support::crc32(out.data(), out.size()));
    putPageCrcs(out, file.image(), page);
    out.insert(out.end(), file.image().begin(), file.image().end());
    writeBytes(path, out);
}

ClauseFile
loadClauseFile(const std::string &path)
{
    std::vector<std::uint8_t> in = readBytes(path);
    if (in.size() < 24)
        corrupt(path, kNoFilePosition, in.size(),
                "too short to be a clause file");
    if (getU32(in, 0) != kClauseFileMagic)
        corrupt(path, kNoFilePosition, 0, "bad magic number");
    std::uint32_t version = getU32(in, 4);
    if (version != kClauseFileVersion &&
        version != kClauseFileVersionCompat) {
        corrupt(path, kNoFilePosition, 4, "unsupported version " +
                std::to_string(version) + " (this build reads v" +
                std::to_string(kClauseFileVersionCompat) + "-v" +
                std::to_string(kClauseFileVersion) + ")");
    }
    std::uint32_t functor = getU32(in, 8);
    std::uint32_t arity = getU32(in, 12);
    std::uint32_t count = getU32(in, 16);
    std::uint32_t image_size = getU32(in, 20);

    std::size_t image_at = 24;
    if (version == kClauseFileVersion) {
        if (in.size() < 36)
            corrupt(path, kNoFilePosition, in.size(),
                    "truncated v2 header");
        if (getU32(in, 32) != support::crc32(in.data(), 32))
            corrupt(path, kNoFilePosition, 32,
                    "header checksum mismatch");
        std::uint32_t page_bytes = getU32(in, 24);
        std::uint32_t n_pages = getU32(in, 28);
        if (page_bytes == 0 ||
            n_pages != pageCount(image_size, page_bytes)) {
            corrupt(path, kNoFilePosition, 24,
                    "incoherent page geometry");
        }
        image_at = 36u + 4u * static_cast<std::size_t>(n_pages);
        if (in.size() != image_at + image_size)
            corrupt(path, kNoFilePosition, in.size(),
                    "truncated (" +
                    std::to_string(in.size() -
                                   std::min(in.size(), image_at)) +
                    " of " + std::to_string(image_size) +
                    " image bytes)");
        verifyPages(path, in, 36, image_at, image_size, page_bytes,
                    n_pages);
    } else if (in.size() != image_at + image_size) {
        corrupt(path, kNoFilePosition, in.size(),
                "truncated (" +
                std::to_string(in.size() - std::min(in.size(), image_at))
                + " of " + std::to_string(image_size) + " image bytes)");
    }

    ClauseFile file;
    file.predicate_ = term::PredicateId{functor, arity};
    file.image_.assign(in.begin() + static_cast<std::ptrdiff_t>(image_at),
                       in.end());

    // Re-derive the record directory by walking the image.  With a v2
    // checksum pass behind us a walk failure means a writer bug, but
    // v1 images are unverified, so every structural violation is a
    // typed error rather than an assert.
    std::size_t offset = 0;
    while (offset < file.image_.size()) {
        ClauseRecord rec;
        try {
            rec = ClauseFile::parseHeader(file.image_, offset);
        } catch (const FatalError &e) {
            corrupt(path, offset / support::kChecksumPageBytes,
                    image_at + offset, e.what());
        }
        if (rec.functor != functor || rec.arity != arity)
            corrupt(path, offset / support::kChecksumPageBytes,
                    image_at + offset,
                    "record " + std::to_string(rec.ordinal) +
                    " does not match the file predicate");
        file.records_.push_back(rec);
        offset += rec.length;
    }
    if (file.records_.size() != count)
        corrupt(path, kNoFilePosition, kNoFilePosition,
                "directory count " +
                std::to_string(file.records_.size()) +
                " != header count " + std::to_string(count));
    return file;
}

// ---------------------------------------------------------------------
// Symbol tables.
//
// v2: u32 magic "CLSY"  u32 version  u32 atoms  u32 floats
//     u32 payload_crc (seeded with the crc of bytes [0,16), so the
//     counts are covered too)  u8 payload[]
// v1: u32 magic  u32 version  u32 atoms  u32 floats  u8 payload[]
// ---------------------------------------------------------------------

void
saveSymbolTable(const std::string &path,
                const term::SymbolTable &symbols)
{
    std::vector<std::uint8_t> payload;
    for (std::uint32_t i = 0; i < symbols.atomCount(); ++i) {
        const std::string &name = symbols.name(i);
        putU32(payload, static_cast<std::uint32_t>(name.size()));
        payload.insert(payload.end(), name.begin(), name.end());
    }
    for (std::uint32_t i = 0; i < symbols.floatCount(); ++i) {
        double v = symbols.floatValue(i);
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        putU32(payload, static_cast<std::uint32_t>(bits));
        putU32(payload, static_cast<std::uint32_t>(bits >> 32));
    }

    std::vector<std::uint8_t> out;
    putU32(out, kSymbolFileMagic);
    putU32(out, kSymbolFileVersion);
    putU32(out, static_cast<std::uint32_t>(symbols.atomCount()));
    putU32(out, static_cast<std::uint32_t>(symbols.floatCount()));
    putU32(out, support::crc32(payload.data(), payload.size(),
                               support::crc32(out.data(), out.size())));
    out.insert(out.end(), payload.begin(), payload.end());
    writeBytes(path, out);
}

void
loadSymbolTable(const std::string &path, term::SymbolTable &symbols)
{
    if (symbols.atomCount() != 2 || symbols.floatCount() != 0)
        clare_fatal("symbol table must be fresh before loading '%s'",
                    path.c_str());
    std::vector<std::uint8_t> in = readBytes(path);
    if (in.size() < 16 || getU32(in, 0) != kSymbolFileMagic)
        corrupt(path, kNoFilePosition, 0, "not a symbol table file");
    std::uint32_t version = getU32(in, 4);
    if (version != 1 && version != kSymbolFileVersion)
        corrupt(path, kNoFilePosition, 4, "unsupported version " +
                std::to_string(version));
    std::uint32_t atoms = getU32(in, 8);
    std::uint32_t floats = getU32(in, 12);
    std::size_t at = 16;
    if (version == kSymbolFileVersion) {
        if (in.size() < 20)
            corrupt(path, kNoFilePosition, in.size(),
                    "truncated v2 header");
        at = 20;
        std::uint32_t want = getU32(in, 16);
        std::uint32_t got = support::crc32(in.data() + at,
                                           in.size() - at,
                                           support::crc32(in.data(), 16));
        if (got != want)
            corrupt(path, kNoFilePosition, at,
                    "payload checksum mismatch (stored " +
                    std::to_string(want) + ", computed " +
                    std::to_string(got) + ")");
    }
    for (std::uint32_t i = 0; i < atoms; ++i) {
        if (at + 4 > in.size())
            corrupt(path, kNoFilePosition, at,
                    "truncated in atom names");
        std::uint32_t len = getU32(in, at);
        at += 4;
        if (at + len > in.size() || at + len < at)
            corrupt(path, kNoFilePosition, at,
                    "truncated in atom names");
        std::string name(in.begin() + static_cast<std::ptrdiff_t>(at),
                         in.begin() + static_cast<std::ptrdiff_t>(
                             at + len));
        at += len;
        term::SymbolId id = symbols.intern(name);
        if (id != i)
            corrupt(path, kNoFilePosition, at,
                    "atom '" + name + "' loaded with id " +
                    std::to_string(id) + ", expected " +
                    std::to_string(i));
    }
    for (std::uint32_t i = 0; i < floats; ++i) {
        if (at + 8 > in.size())
            corrupt(path, kNoFilePosition, at,
                    "truncated in float constants");
        std::uint64_t bits = getU32(in, at) |
            (static_cast<std::uint64_t>(getU32(in, at + 4)) << 32);
        at += 8;
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        term::FloatId id = symbols.internFloat(v);
        if (id != i)
            corrupt(path, kNoFilePosition, at,
                    "float " + std::to_string(i) + " loaded out of "
                    "order");
    }
}

} // namespace clare::storage
