#include "storage/file_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "support/logging.hh"

namespace clare::storage {

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
    return v;
}

} // namespace

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "wb"), &std::fclose);
    if (!f)
        clare_fatal("cannot open '%s' for writing", path.c_str());
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) !=
            bytes.size()) {
        clare_fatal("short write to '%s'", path.c_str());
    }
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::unique_ptr<std::FILE, int (*)(std::FILE *)> f(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!f)
        clare_fatal("cannot open '%s' for reading", path.c_str());
    std::fseek(f.get(), 0, SEEK_END);
    long size = std::ftell(f.get());
    if (size < 0)
        clare_fatal("cannot size '%s'", path.c_str());
    std::fseek(f.get(), 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        std::fread(bytes.data(), 1, bytes.size(), f.get()) !=
            bytes.size()) {
        clare_fatal("short read from '%s'", path.c_str());
    }
    return bytes;
}

void
saveClauseFile(const std::string &path, const ClauseFile &file)
{
    std::vector<std::uint8_t> out;
    putU32(out, kClauseFileMagic);
    putU32(out, kClauseFileVersion);
    putU32(out, file.predicate().functor);
    putU32(out, file.predicate().arity);
    putU32(out, static_cast<std::uint32_t>(file.clauseCount()));
    putU32(out, static_cast<std::uint32_t>(file.image().size()));
    out.insert(out.end(), file.image().begin(), file.image().end());
    writeBytes(path, out);
}

ClauseFile
loadClauseFile(const std::string &path)
{
    std::vector<std::uint8_t> in = readBytes(path);
    if (in.size() < 24)
        clare_fatal("'%s' is too short to be a clause file",
                    path.c_str());
    if (getU32(in, 0) != kClauseFileMagic)
        clare_fatal("'%s' has a bad magic number", path.c_str());
    if (getU32(in, 4) != kClauseFileVersion)
        clare_fatal("'%s' has unsupported version %u", path.c_str(),
                    getU32(in, 4));
    std::uint32_t functor = getU32(in, 8);
    std::uint32_t arity = getU32(in, 12);
    std::uint32_t count = getU32(in, 16);
    std::uint32_t image_size = getU32(in, 20);
    if (in.size() != 24u + image_size)
        clare_fatal("'%s' is truncated (%zu of %u image bytes)",
                    path.c_str(), in.size() - 24, image_size);

    ClauseFile file;
    file.predicate_ = term::PredicateId{functor, arity};
    file.image_.assign(in.begin() + 24, in.end());

    // Re-derive the record directory by walking the image.
    std::size_t offset = 0;
    while (offset < file.image_.size()) {
        ClauseRecord rec = ClauseFile::parseHeader(file.image_, offset);
        if (rec.functor != functor || rec.arity != arity)
            clare_fatal("'%s': record %u does not match the file "
                        "predicate", path.c_str(), rec.ordinal);
        file.records_.push_back(rec);
        offset += rec.length;
    }
    if (file.records_.size() != count)
        clare_fatal("'%s': directory count %zu != header count %u",
                    path.c_str(), file.records_.size(), count);
    return file;
}

void
saveSymbolTable(const std::string &path,
                const term::SymbolTable &symbols)
{
    std::vector<std::uint8_t> out;
    putU32(out, 0x434c5359u);   // "CLSY"
    putU32(out, 1);             // version
    putU32(out, static_cast<std::uint32_t>(symbols.atomCount()));
    putU32(out, static_cast<std::uint32_t>(symbols.floatCount()));
    for (std::uint32_t i = 0; i < symbols.atomCount(); ++i) {
        const std::string &name = symbols.name(i);
        putU32(out, static_cast<std::uint32_t>(name.size()));
        out.insert(out.end(), name.begin(), name.end());
    }
    for (std::uint32_t i = 0; i < symbols.floatCount(); ++i) {
        double v = symbols.floatValue(i);
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        putU32(out, static_cast<std::uint32_t>(bits));
        putU32(out, static_cast<std::uint32_t>(bits >> 32));
    }
    writeBytes(path, out);
}

void
loadSymbolTable(const std::string &path, term::SymbolTable &symbols)
{
    if (symbols.atomCount() != 2 || symbols.floatCount() != 0)
        clare_fatal("symbol table must be fresh before loading '%s'",
                    path.c_str());
    std::vector<std::uint8_t> in = readBytes(path);
    if (in.size() < 16 || getU32(in, 0) != 0x434c5359u)
        clare_fatal("'%s' is not a symbol table file", path.c_str());
    if (getU32(in, 4) != 1)
        clare_fatal("'%s' has unsupported version %u", path.c_str(),
                    getU32(in, 4));
    std::uint32_t atoms = getU32(in, 8);
    std::uint32_t floats = getU32(in, 12);
    std::size_t at = 16;
    for (std::uint32_t i = 0; i < atoms; ++i) {
        if (at + 4 > in.size())
            clare_fatal("'%s' truncated in atom names", path.c_str());
        std::uint32_t len = getU32(in, at);
        at += 4;
        if (at + len > in.size())
            clare_fatal("'%s' truncated in atom names", path.c_str());
        std::string name(in.begin() + static_cast<std::ptrdiff_t>(at),
                         in.begin() + static_cast<std::ptrdiff_t>(
                             at + len));
        at += len;
        term::SymbolId id = symbols.intern(name);
        if (id != i)
            clare_fatal("'%s': atom '%s' loaded with id %u, expected "
                        "%u", path.c_str(), name.c_str(), id, i);
    }
    for (std::uint32_t i = 0; i < floats; ++i) {
        if (at + 8 > in.size())
            clare_fatal("'%s' truncated in float constants",
                        path.c_str());
        std::uint64_t bits = getU32(in, at) |
            (static_cast<std::uint64_t>(getU32(in, at + 4)) << 32);
        at += 8;
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        term::FloatId id = symbols.internFloat(v);
        if (id != i)
            clare_fatal("'%s': float %u loaded out of order",
                        path.c_str(), i);
    }
}

} // namespace clare::storage
