/**
 * @file
 * The tagged payload codecs of the CLARE wire protocol.
 *
 * Every Request/Response payload is a sequence of TLV fields: a one-
 * byte tag, a little-endian 32-bit byte length, and the field bytes.
 * Decoders skip fields with unknown tags, so a v1 peer keeps working
 * when a newer peer adds fields — forward compatibility is structural,
 * not negotiated.  Required fields that are absent, and fields whose
 * bytes do not parse, raise a typed CorruptionError naming the peer.
 *
 * Request fields:
 *
 *   tag  field
 *     1  request id (u64) — echoed verbatim in the response
 *     2  predicate (functor u32, arity u32) — duplicated out of the
 *        goal so the router can shard without decoding PIF
 *     3  goal (recursive PIF item stream, term_codec.hh)
 *     4  explicit search mode (u8; absent = server chooses)
 *     5  bypassCache (u8 != 0)
 *
 * Response fields:
 *
 *   tag  field
 *     1  request id (u64)
 *     2  resolved search mode (u8)
 *     3  candidates (u32 count, u32 ordinals)
 *     4  answers (u32 count, u32 ordinals)
 *     5  scan stats (indexEntriesScanned u64, fs1Hits u64,
 *        clausesExamined u64)
 *     6  filter op counts (u32 count, u64 per op)
 *     7  stage breakdown (queueWait, cacheTime, indexTime, filterTime,
 *        hostUnifyTime — five u64 ticks)
 *     8  elapsed (u64 ticks)
 *     9  flags (u8: bit0 degraded, bit1 resultOverflow)
 *    10  corruptIndexPages (u32)
 *    11  satisfiersRequeued (u32)
 *
 * The breakdown travels bit-exactly: the exactness contract extends
 * over the wire, so a response relayed through the router carries the
 * same modeled ticks a single-process serve() would have produced.
 *
 * Error payloads are a one-byte ErrorCode followed by a UTF-8 message.
 */

#ifndef CLARE_NET_WIRE_HH
#define CLARE_NET_WIRE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crs/api.hh"
#include "term/clause.hh"

namespace clare::net {

/** A retrieval request as it travels the wire (goal kept opaque). */
struct WireRequest
{
    std::uint64_t id = 0;
    term::PredicateId predicate{};
    /** Recursive PIF encoding of the goal (term_codec.hh). */
    std::vector<std::uint8_t> goalPif;
    std::optional<crs::SearchMode> mode;
    bool bypassCache = false;
};

/** Error codes carried by Error frames. */
enum class ErrorCode : std::uint8_t
{
    Overloaded = 1,  ///< admission control shed this request
    Unavailable = 2, ///< no healthy replica could answer
    BadRequest = 3,  ///< the request failed validation
    Internal = 4,    ///< the peer failed while serving
};

/** Human-readable slug of an ErrorCode. */
const char *errorCodeName(ErrorCode code);

/**
 * A peer answered with an Error frame.  Typed so callers can
 * distinguish protocol-level rejection (shedding, bad request) from
 * transport faults (IoError) and damaged bytes (CorruptionError).
 */
class RemoteError : public Error
{
  public:
    RemoteError(ErrorCode code, const std::string &message)
        : Error(std::string(errorCodeName(code)) + ": " + message),
          code_(code)
    {
    }

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/** @name Request payload codec. */
/// @{
std::vector<std::uint8_t> encodeRequest(const WireRequest &request);
WireRequest decodeRequest(const std::vector<std::uint8_t> &payload,
                          const std::string &peer);
/// @}

/** @name Response payload codec. */
/// @{
std::vector<std::uint8_t> encodeResponse(std::uint64_t request_id,
                                         const crs::RetrievalResponse &r);

/** A decoded response: the echoed id plus the reconstructed payload. */
struct WireResponse
{
    std::uint64_t id = 0;
    crs::RetrievalResponse response;
};

WireResponse decodeResponse(const std::vector<std::uint8_t> &payload,
                            const std::string &peer);
/// @}

/** @name Error payload codec. */
/// @{
std::vector<std::uint8_t> encodeError(ErrorCode code,
                                      const std::string &message);

struct WireError
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

WireError decodeError(const std::vector<std::uint8_t> &payload,
                      const std::string &peer);
/// @}

/** @name Batch payload codec.
 *
 * A BatchRequest/BatchResponse payload is a u32 item count followed by
 * count length-prefixed (u32) item payloads.  Each item is a complete
 * Request or Response payload, byte-for-byte what a single-frame peer
 * would have sent — so a router can scatter a batch across shards and
 * gather the item payloads back verbatim, and the per-item bit-identity
 * contract composes exactly as it does for single frames.
 */
/// @{
std::vector<std::uint8_t>
encodeBatchItems(const std::vector<std::vector<std::uint8_t>> &items);
std::vector<std::vector<std::uint8_t>>
decodeBatchItems(const std::vector<std::uint8_t> &payload,
                 const std::string &peer);
/// @}

/**
 * Field-by-field equality of two responses, ignoring the server-local
 * trace handle (span ids never travel).  This is the wire round-trip
 * and router bit-identity predicate, shared by tests and the smoke
 * client.
 */
bool responsesIdentical(const crs::RetrievalResponse &a,
                        const crs::RetrievalResponse &b);

} // namespace clare::net

#endif // CLARE_NET_WIRE_HH
