#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace clare::net {

namespace {

[[noreturn]] void
throwErrno(const std::string &peer, const std::string &what)
{
    throw IoError(peer, what + ": " + std::strerror(errno));
}

sockaddr_in
loopbackAddr(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

Listener::Listener(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("listener", "socket");
    fd_ = OwnedFd(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("listener", "bind 127.0.0.1:" + std::to_string(port));
    if (::listen(fd, 128) != 0)
        throwErrno("listener", "listen");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        throwErrno("listener", "getsockname");
    port_ = ntohs(bound.sin_port);
    setNonBlocking(fd);
}

OwnedFd
Listener::accept()
{
    int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd < 0)
        return OwnedFd();
    setNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return OwnedFd(fd);
}

ClientStream::ClientStream(std::uint16_t port, std::string peer,
                           int timeoutMillis)
    : peer_(std::move(peer)),
      timeoutMillis_(timeoutMillis)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno(peer_, "socket");
    fd_ = OwnedFd(fd);
    // Connect nonblocking so the deadline applies to the handshake
    // too, then drop back to blocking (all waits go through poll()).
    setNonBlocking(fd);
    sockaddr_in addr = loopbackAddr(port);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS)
        throwErrno(peer_, "connect");
    if (rc != 0) {
        pollfd pfd{fd, POLLOUT, 0};
        int ready = ::poll(&pfd, 1, timeoutMillis_);
        if (ready == 0)
            throw IoError(peer_, "connect timed out after " +
                                     std::to_string(timeoutMillis_) +
                                     "ms");
        if (ready < 0)
            throwErrno(peer_, "poll");
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            errno = err;
            throwErrno(peer_, "connect");
        }
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
ClientStream::sendAll(const std::uint8_t *data, std::size_t size)
{
    if (!fd_.valid())
        throw IoError(peer_, "send on a closed connection");
    std::size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::send(fd_.get(), data + sent, size - sent,
                           MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd_.get(), POLLOUT, 0};
            int ready = ::poll(&pfd, 1, timeoutMillis_);
            if (ready == 0)
                throw IoError(peer_, "send timed out after " +
                                         std::to_string(timeoutMillis_) +
                                         "ms");
            if (ready < 0)
                throwErrno(peer_, "poll");
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        throwErrno(peer_, "send");
    }
}

void
ClientStream::recvExact(std::uint8_t *data, std::size_t size)
{
    if (!fd_.valid())
        throw IoError(peer_, "receive on a closed connection");
    std::size_t got = 0;
    while (got < size) {
        ssize_t n = ::recv(fd_.get(), data + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            throw IoError(peer_, "connection closed mid-frame (" +
                                     std::to_string(got) + " of " +
                                     std::to_string(size) + " bytes)");
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            pollfd pfd{fd_.get(), POLLIN, 0};
            int ready = ::poll(&pfd, 1, timeoutMillis_);
            if (ready == 0)
                throw IoError(peer_, "receive timed out after " +
                                         std::to_string(timeoutMillis_) +
                                         "ms");
            if (ready < 0)
                throwErrno(peer_, "poll");
            continue;
        }
        if (errno == EINTR)
            continue;
        throwErrno(peer_, "recv");
    }
}

void
ClientStream::writeFrame(FrameType type,
                         const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    encodeFrame(type, payload, frame);
    sendAll(frame.data(), frame.size());
}

ReceivedFrame
ClientStream::readFrame()
{
    std::uint8_t headerBytes[kFrameHeaderBytes];
    recvExact(headerBytes, kFrameHeaderBytes);
    FrameHeader header = decodeFrameHeader(headerBytes, peer_);
    ReceivedFrame frame;
    frame.type = header.type;
    frame.payload.resize(header.payloadBytes);
    if (header.payloadBytes > 0)
        recvExact(frame.payload.data(), frame.payload.size());
    verifyFramePayload(header, frame.payload.data(),
                       frame.payload.size(), peer_);
    return frame;
}

} // namespace clare::net
