/**
 * @file
 * The wire goal codec: a retrieval goal as a PIF item stream.
 *
 * The on-disk clause format and the FS2 hardware stream PIF at level 3
 * (one level of in-lining, nested structure behind opaque pointer
 * items), which is lossy by design.  The wire cannot afford lossy — the
 * receiving server must reconstruct the exact goal term — so the wire
 * dialect uses the same item vocabulary and byte encoding
 * (pif::serializeItem) but in-lines complex terms *recursively*,
 * depth-first: a structure or list item is followed immediately by the
 * encodings of its elements, at any depth, and an unterminated list's
 * tail variable follows its elements.  Pointer tags never appear.
 *
 * Variables travel as 1st-QV/Sub-QV slot items, so sharing is
 * preserved exactly; names are not transmitted (retrieval is
 * renaming-invariant).  Atom, float, and functor items carry symbol
 * ids, which are meaningful because client and server open the same
 * persisted store — the symbol table is the shared schema of the
 * protocol, the way the codeword parameters already are for the index.
 *
 * Limits inherited from the PIF tag space: arity/element counts above
 * 31 (the 5-bit arity field) and integers outside the 36-bit in-line
 * range are not encodable and raise a typed Error at the *sender*; the
 * decoder raises CorruptionError on any malformed stream.
 */

#ifndef CLARE_NET_TERM_CODEC_HH
#define CLARE_NET_TERM_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "term/symbol_table.hh"
#include "term/term.hh"

namespace clare::net {

/**
 * Encode @p goal (an atom or structure, as the CRS front door
 * requires) as a recursive PIF item stream.
 *
 * @throws Error on a term the PIF tag space cannot carry (arity > 31,
 *         integer outside the 36-bit in-line range)
 */
std::vector<std::uint8_t> encodeGoal(const term::TermArena &arena,
                                     term::TermRef goal);

/**
 * Decode a recursive PIF item stream back into a goal term in
 * @p arena.  Named variable slots are re-materialized as fresh
 * variables (named through @p symbols so they stay non-anonymous);
 * sharing is preserved.
 *
 * @throws CorruptionError on an invalid tag, a truncated stream, a
 *         pointer tag (illegal on the wire), or trailing bytes
 */
term::TermRef decodeGoal(const std::vector<std::uint8_t> &bytes,
                         term::SymbolTable &symbols,
                         term::TermArena &arena,
                         const std::string &peer);

} // namespace clare::net

#endif // CLARE_NET_TERM_CODEC_HH
