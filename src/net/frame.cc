#include "net/frame.hh"

#include "support/crc32.hh"

namespace clare::net {

namespace {

void
putU32(std::uint32_t v, std::vector<std::uint8_t> &out)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *data)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data[i]) << (8 * i);
    return v;
}

} // namespace

bool
isValidFrameType(std::uint8_t type)
{
    switch (static_cast<FrameType>(type)) {
      case FrameType::Request:
      case FrameType::Response:
      case FrameType::Error:
      case FrameType::Health:
      case FrameType::HealthReply:
      case FrameType::BatchRequest:
      case FrameType::BatchResponse:
        return true;
    }
    return false;
}

void
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload,
            std::vector<std::uint8_t> &out)
{
    out.reserve(out.size() + kFrameHeaderBytes + payload.size());
    std::size_t start = out.size();
    putU32(kFrameMagic, out);
    out.push_back(kProtocolVersion);
    out.push_back(static_cast<std::uint8_t>(type));
    out.push_back(0);
    out.push_back(0);
    putU32(static_cast<std::uint32_t>(payload.size()), out);
    // The CRC chains the header prefix with the payload, so a flipped
    // bit anywhere in the frame fails verification — including a type
    // byte flipped onto another *valid* type, which field validation
    // alone cannot see.
    std::uint32_t prefix = support::crc32(out.data() + start, 12);
    putU32(support::crc32(payload.data(), payload.size(), prefix), out);
    out.insert(out.end(), payload.begin(), payload.end());
}

FrameHeader
decodeFrameHeader(const std::uint8_t *data, const std::string &peer)
{
    if (getU32(data) != kFrameMagic)
        throw CorruptionError(peer, kNoFilePosition, 0,
                              "bad frame magic");
    if (data[4] != kProtocolVersion)
        throw CorruptionError(peer, kNoFilePosition, 4,
                              "unsupported protocol version " +
                                  std::to_string(data[4]));
    if (!isValidFrameType(data[5]))
        throw CorruptionError(peer, kNoFilePosition, 5,
                              "unknown frame type " +
                                  std::to_string(data[5]));
    if (data[6] != 0 || data[7] != 0)
        throw CorruptionError(peer, kNoFilePosition, 6,
                              "nonzero reserved frame-header bytes");
    FrameHeader header;
    header.type = static_cast<FrameType>(data[5]);
    header.payloadBytes = getU32(data + 8);
    header.payloadCrc = getU32(data + 12);
    header.prefixCrc = support::crc32(data, 12);
    if (header.payloadBytes > kMaxFramePayload)
        throw CorruptionError(peer, kNoFilePosition, 8,
                              "frame payload length " +
                                  std::to_string(header.payloadBytes) +
                                  " exceeds the protocol bound");
    return header;
}

void
verifyFramePayload(const FrameHeader &header,
                   const std::uint8_t *payload, std::size_t size,
                   const std::string &peer)
{
    if (support::crc32(payload, size, header.prefixCrc) !=
        header.payloadCrc)
        throw CorruptionError(peer, kNoFilePosition, kFrameHeaderBytes,
                              "frame payload failed its CRC check");
}

} // namespace clare::net
