/**
 * @file
 * Thin POSIX socket wrappers used by the serving tier.
 *
 * Everything here is loopback TCP: the serving tier's unit of
 * deployment is "N backends and a router on one host or a trusted
 * LAN", and the tests run whole clusters on 127.0.0.1 with ephemeral
 * ports so they can run in parallel.
 *
 * Two shapes:
 *
 *   Listener      a bound, listening socket (port 0 picks an ephemeral
 *                 port, readable via port()) whose fd is handed to an
 *                 epoll loop
 *   ClientStream  a blocking connection with poll()-bounded timeouts;
 *                 every transport failure (refused, reset, short read,
 *                 timeout) is a typed IoError naming the peer, and
 *                 every framing/validation failure from the frame
 *                 layer is a CorruptionError — callers never see errno
 *
 * ClientStream::call() is the request/response primitive the router
 * and the smoke client share: write one frame, read one frame.
 */

#ifndef CLARE_NET_SOCKET_HH
#define CLARE_NET_SOCKET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hh"

namespace clare::net {

/** RAII file descriptor; move-only. */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.release()) {}
    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset();

  private:
    int fd_ = -1;
};

/** Mark @p fd nonblocking (used by the epoll loops). */
void setNonBlocking(int fd);

/** A listening loopback TCP socket. */
class Listener
{
  public:
    /**
     * Bind 127.0.0.1:@p port (0 = kernel-assigned ephemeral port) and
     * listen.  @throws IoError when the port cannot be bound.
     */
    explicit Listener(std::uint16_t port);

    /** The bound port (the ephemeral one when constructed with 0). */
    std::uint16_t port() const { return port_; }
    int fd() const { return fd_.get(); }

    /**
     * Accept one pending connection, nonblocking.  Returns an invalid
     * OwnedFd when no connection is pending; the accepted socket is
     * already nonblocking.
     */
    OwnedFd accept();

  private:
    OwnedFd fd_;
    std::uint16_t port_ = 0;
};

/** A decoded frame as delivered to a ClientStream caller. */
struct ReceivedFrame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;
};

/**
 * A blocking loopback TCP connection with bounded waits.  All
 * deadlines are per-operation, in milliseconds.
 */
class ClientStream
{
  public:
    /**
     * Connect to 127.0.0.1:@p port.  @p peer names the connection in
     * errors (e.g. "backend:39441").
     *
     * @throws IoError when the connection cannot be established within
     *         @p timeoutMillis
     */
    ClientStream(std::uint16_t port, std::string peer,
                 int timeoutMillis);

    const std::string &peer() const { return peer_; }
    bool connected() const { return fd_.valid(); }
    void close() { fd_.reset(); }

    /** Send one frame. @throws IoError on a transport failure. */
    void writeFrame(FrameType type,
                    const std::vector<std::uint8_t> &payload);

    /**
     * Receive one frame, verifying header and payload CRC.
     *
     * @throws IoError on EOF, reset, or timeout
     * @throws CorruptionError on a damaged frame
     */
    ReceivedFrame readFrame();

    /** writeFrame() then readFrame(): one request/response exchange. */
    ReceivedFrame
    call(FrameType type, const std::vector<std::uint8_t> &payload)
    {
        writeFrame(type, payload);
        return readFrame();
    }

  private:
    void sendAll(const std::uint8_t *data, std::size_t size);
    void recvExact(std::uint8_t *data, std::size_t size);

    OwnedFd fd_;
    std::string peer_;
    int timeoutMillis_;
};

} // namespace clare::net

#endif // CLARE_NET_SOCKET_HH
