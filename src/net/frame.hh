/**
 * @file
 * The CLARE network frame: the length-framed, CRC-protected envelope
 * every wire message travels in.
 *
 * A frame is a fixed 16-byte header followed by the payload:
 *
 *   offset  size  field
 *        0     4  magic "CLNF" (little-endian 0x464e4c43)
 *        4     1  protocol version (kProtocolVersion)
 *        5     1  frame type (FrameType)
 *        6     2  reserved, must be zero
 *        8     4  payload length in bytes (little-endian)
 *       12     4  CRC-32 of header bytes 0-11 chained with the
 *                  payload (little-endian)
 *
 * The CRC covers the header prefix as well as the payload, so any
 * single flipped bit anywhere in the frame is caught before the
 * payload is trusted: a damaged magic/version/type/reserved byte fails
 * field validation or the chained CRC (a type byte flipped onto
 * another *valid* type is exactly why the prefix is in the CRC), and a
 * damaged length fails the sanity bound or desynchronizes the CRC.  Every validation
 * failure is a typed CorruptionError naming the peer; a short read is a
 * typed IoError.  A receiver that detects either MUST close the
 * connection — framing cannot be resynchronized mid-stream.
 *
 * Payload shapes (see wire.hh for the TLV field codecs):
 *
 *   Request        tagged retrieval request (PIF-encoded goal)
 *   Response       tagged RetrievalResponse + StageBreakdown
 *   Error          error code byte + UTF-8 message
 *   Health         empty probe
 *   HealthReply    JSON document (control plane stays JSON)
 *   BatchRequest   length-prefixed list of Request payloads
 *   BatchResponse  length-prefixed list of Response payloads, in the
 *                  request order of the matching BatchRequest
 */

#ifndef CLARE_NET_FRAME_HH
#define CLARE_NET_FRAME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/errors.hh"

namespace clare::net {

/** "CLNF" as a little-endian 32-bit word. */
constexpr std::uint32_t kFrameMagic = 0x464e4c43u;

/** Protocol version carried by every frame. */
constexpr std::uint8_t kProtocolVersion = 1;

/** Fixed size of the frame header. */
constexpr std::size_t kFrameHeaderBytes = 16;

/**
 * Upper bound on a payload we are willing to buffer.  Large enough for
 * any realistic response (a response is ~8 bytes per candidate), small
 * enough that a corrupted length field cannot make a peer allocate
 * gigabytes.
 */
constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** The frame types of protocol version 1. */
enum class FrameType : std::uint8_t
{
    Request = 1,       ///< tagged retrieval request
    Response = 2,      ///< tagged retrieval response
    Error = 3,         ///< typed failure (code + message)
    Health = 4,        ///< control-plane probe (empty payload)
    HealthReply = 5,   ///< control-plane status (JSON payload)
    BatchRequest = 6,  ///< list of Request payloads (wire.hh)
    BatchResponse = 7, ///< list of Response payloads, request order
};

/** True for a type byte defined by protocol version 1. */
bool isValidFrameType(std::uint8_t type);

/** A decoded frame header, pending payload verification. */
struct FrameHeader
{
    FrameType type = FrameType::Error;
    std::uint32_t payloadBytes = 0;
    std::uint32_t payloadCrc = 0;
    /** CRC-32 of the raw header prefix (bytes 0-11), the chain seed
     *  verifyFramePayload() continues over the payload. */
    std::uint32_t prefixCrc = 0;
};

/** Append the frame enveloping @p payload to @p out. */
void encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload,
                 std::vector<std::uint8_t> &out);

/**
 * Decode and validate a frame header from exactly kFrameHeaderBytes
 * bytes.  @p peer names the connection for error messages.
 *
 * @throws CorruptionError on bad magic, unsupported version, unknown
 *         type, nonzero reserved bytes, or an insane length
 */
FrameHeader decodeFrameHeader(const std::uint8_t *data,
                              const std::string &peer);

/**
 * Verify @p header's CRC against the delivered payload bytes.
 *
 * @throws CorruptionError when the payload fails its checksum
 */
void verifyFramePayload(const FrameHeader &header,
                        const std::uint8_t *payload, std::size_t size,
                        const std::string &peer);

} // namespace clare::net

#endif // CLARE_NET_FRAME_HH
