/**
 * @file
 * ShardCatalog: the predicate → shard → replica-backend map of a
 * data-sharded cluster.
 *
 * PR 7's router sharded *traffic* — every backend loaded the full
 * store and `(hash(pred) + i) mod N` was just a cache-locality policy.
 * With store slices (crs::saveStoreSlice) the placement becomes real:
 * a backend only holds the predicates of its slice, so the router must
 * route from an explicit catalog instead of a hash, and moving a slice
 * between backends must be a catalog edit, not a rehash of the world.
 *
 * The catalog is a JSON document on disk:
 *
 *   {
 *     "clare-catalog": 1,
 *     "shards": 3,
 *     "replicas": [[0, 1], [2, 3], [4, 5]],
 *     "predicates": [
 *       {"functor": 7, "arity": 2, "shard": 0},
 *       ...
 *     ]
 *   }
 *
 * `replicas[s]` lists the backend *indexes* (positions in the
 * router's --backend list, not ports — ports are deployment-local)
 * holding shard s, in preference order.  Every predicate the cluster
 * serves appears exactly once.  Rebalancing a replica is: copy the
 * slice directory to the new backend's store path, edit the shard's
 * replica list, and have the router reload — requests follow the
 * catalog on the next lookup, and no other shard is disturbed.
 *
 * The router serves its loaded catalog (with ports resolved) in its
 * health/admin JSON, so an operator can read the live placement from
 * the same channel that reports backend health.
 */

#ifndef CLARE_NET_CATALOG_HH
#define CLARE_NET_CATALOG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/json.hh"
#include "term/clause.hh"

namespace clare::net {

/** The predicate placement map of a sliced cluster. */
class ShardCatalog
{
  public:
    ShardCatalog() = default;

    /** Shard count (replicas_.size()). */
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(replicas_.size());
    }

    /** Predicates assigned, in functor/arity order. */
    std::size_t predicateCount() const { return assignments_.size(); }

    /**
     * Assign @p pred to @p shard.  Shards are created implicitly up
     * to @p shard; reassignment overwrites.
     */
    void assign(const term::PredicateId &pred, std::uint32_t shard);

    /** Set shard @p shard's replica backend indexes (preference order). */
    void setReplicas(std::uint32_t shard,
                     std::vector<std::uint32_t> backendIndexes);

    /** The shard holding @p pred, or nullopt when unassigned. */
    std::optional<std::uint32_t>
    shardOf(const term::PredicateId &pred) const;

    /**
     * The replica backend indexes serving @p pred, preference order;
     * nullptr when the predicate is not in the catalog.
     */
    const std::vector<std::uint32_t> *
    replicasOf(const term::PredicateId &pred) const;

    /** Per-shard replica lists (index = shard). */
    const std::vector<std::vector<std::uint32_t>> &replicas() const
    {
        return replicas_;
    }

    /** Assignments in iteration order (sorted by predicate id). */
    const std::map<term::PredicateId, std::uint32_t> &assignments() const
    {
        return assignments_;
    }

    /**
     * Structural validation against a deployment of @p backendCount
     * backends: every shard has at least one replica, every replica
     * index is in range, every assignment names an existing shard.
     * @throws Error naming the first violation
     */
    void validate(std::size_t backendCount) const;

    /** @name JSON round-trip (the on-disk and admin-channel form). */
    /// @{
    json::Value toJson() const;
    /** @throws CorruptionError naming @p source on a malformed document */
    static ShardCatalog fromJson(const json::Value &doc,
                                 const std::string &source);
    /// @}

    /** @name Disk round-trip. */
    /// @{
    void save(const std::string &path) const;
    /** @throws IoError / CorruptionError */
    static ShardCatalog load(const std::string &path);
    /// @}

    bool operator==(const ShardCatalog &other) const
    {
        return replicas_ == other.replicas_ &&
            assignments_ == other.assignments_;
    }

  private:
    std::vector<std::vector<std::uint32_t>> replicas_;
    std::map<term::PredicateId, std::uint32_t> assignments_;
};

} // namespace clare::net

#endif // CLARE_NET_CATALOG_HH
