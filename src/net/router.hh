/**
 * @file
 * Router: the predicate-sharded front of a multi-backend cluster.
 *
 * Clients speak the same framed protocol to the router they would
 * speak to a single NetServer — the router is transparent.  For each
 * Request it reads the predicate TLV field (never the PIF goal: the
 * goal bytes stay opaque), picks the predicate's replica set, and
 * relays the request payload *verbatim* to one backend, then relays
 * the response payload verbatim back.  Verbatim relay is what makes
 * the exactness contract compose: the bytes the client decodes are the
 * bytes the backend's serve() produced, so answers and modeled
 * StageBreakdown ticks through the router are bit-identical to a
 * single-process serve() on the same store.
 *
 * Sharding and replication: with a ShardCatalog loaded (catalog.hh)
 * the placement is *data* sharding — each backend holds only its
 * slice of the store (crs::saveStoreSlice) and predicate p's replica
 * set is exactly the catalog's `replicas[shardOf(p)]` list, so
 * per-backend memory scales down with the shard count.  Reloading the
 * catalog (reloadCatalog/setCatalog) re-routes on the next lookup,
 * which is how a slice is rebalanced: copy the slice directory to the
 * new backend, edit the catalog, reload.  Without a catalog the
 * legacy policy applies: replicas (hash(p) + i) mod N over backends
 * that each load the full store — a cache-locality routing policy,
 * not a data partition.
 *
 * Batches: a BatchRequest is scattered by predicate — items are
 * grouped per replica set, each group travels to its shard as one
 * sub-batch (issued concurrently across shards), and the item
 * response payloads are gathered back into the original batch order
 * verbatim.  Backends serve a sub-batch through the same serveBatch()
 * front door a local caller uses, so the per-item responses — modeled
 * queue-wait ticks included — are the ones an unsharded
 * serveBatch() of the same items would produce (see crs/server.hh:
 * with sequential backends the modeled queue is empty and per-item
 * responses are composition-independent, which is what makes the
 * split/merge exact).
 *
 * Failover: a replica attempt fails over to the next replica on a
 * transport fault (IoError), a damaged frame (CorruptionError), or an
 * Error frame of code Overloaded/Unavailable/Internal (BadRequest is
 * the client's fault and is relayed, not retried).  A *degraded*
 * response (backend index corruption downgraded the scan) is held and
 * the next replica is tried for a clean one — the degraded answer is
 * returned only when no replica can do better, so one poisoned store
 * in a 3-replica set is invisible to clients except in the counters.
 * The two hunts are counted separately: router.failovers counts
 * attempts after a *failure*, router.degraded_retries counts attempts
 * after a held degraded reply.  When every replica fails, the client
 * gets Error(Unavailable).
 *
 * Health: replicas that fail are marked down and skipped; a dedicated
 * probe thread (its own connections, never the event loop) brings
 * them back, so a hung backend can stall at most the requests routed
 * to it — unrelated client traffic keeps flowing while a probe waits
 * out its timeout.  Load shedding mirrors NetServer: a connection cap
 * at the door plus a per-connection outbound bound.
 *
 * The router owns its MetricsRegistry (router.* counters: relayed,
 * failovers, degraded_retries, degraded_held, unavailable, shed,
 * probes, batches).  The health/admin channel (Health frame) reports
 * backend health and the loaded catalog in one JSON document.
 */

#ifndef CLARE_NET_ROUTER_HH
#define CLARE_NET_ROUTER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/catalog.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "support/obs.hh"
#include "term/clause.hh"

namespace clare::net {

/** Router knobs. */
struct RouterConfig
{
    /** Listen port; 0 picks an ephemeral port. */
    std::uint16_t port = 0;

    /** Backend NetServer ports, in shard order. */
    std::vector<std::uint16_t> backendPorts;

    /** Replicas tried per predicate (clamped to the backend count).
     *  Only the hash fallback uses this; a catalog carries its own
     *  replica lists. */
    std::uint32_t replication = 2;

    /** Per-call deadline against one backend. */
    int backendTimeoutMillis = 2000;

    /** Health-probe period (dedicated probe thread). */
    int probeIntervalMillis = 500;

    /** Client-side admission bounds (as in NetServerConfig). */
    std::uint32_t maxConnections = 64;
    std::uint32_t maxOutboundBytes = 4u << 20;

    /** Shard catalog to load at construction ("" = hash routing). */
    std::string catalogPath;
};

/** The predicate-sharding relay. */
class Router
{
  public:
    /**
     * Binds immediately; relays nothing until start().
     * @throws IoError when the port cannot be bound
     * @throws Error on an empty backend list, zero replication, or a
     *         catalog that does not fit the backend list
     */
    explicit Router(RouterConfig config);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    std::uint16_t port() const { return listener_.port(); }

    void start();
    void stop();

    /**
     * Replica set of @p pred: the catalog's list when one is loaded
     * (empty when the predicate is not in the catalog — such requests
     * answer Unavailable), the hash policy otherwise.  Exposed for
     * tests.
     */
    std::vector<std::uint32_t>
    replicasOf(const term::PredicateId &pred) const;

    /** Install @p catalog (validated against the backend list). */
    void setCatalog(ShardCatalog catalog);

    /** Reload the catalog from @p path (or the configured path). */
    void reloadCatalog(const std::string &path = "");

    /** The loaded catalog, or nullptr under hash routing. */
    std::shared_ptr<const ShardCatalog> catalog() const;

    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

  private:
    struct Backend
    {
        std::uint16_t port = 0;
        std::string name;
        /** Relay stream: lazy, rebuilt on fault.  Guarded by mutex —
         *  concurrent sub-batches may target the same backend. */
        std::optional<ClientStream> stream;
        std::mutex streamMutex;
        /** Probe stream: touched only by the probe thread. */
        std::optional<ClientStream> probeStream;
        std::atomic<bool> healthy{true};
    };

    struct Connection
    {
        OwnedFd fd;
        std::string peer;
        std::vector<std::uint8_t> inbound;
        std::size_t needed = kFrameHeaderBytes;
        bool readingHeader = true;
        FrameHeader header;
        std::vector<std::uint8_t> outbound;
        std::size_t outboundAt = 0;
    };

    /** What one replica-set relay attempt chain produced. */
    struct GroupOutcome
    {
        enum class Kind { Relayed, BadRequest, Unavailable };
        Kind kind = Kind::Unavailable;
        /** Relayed: per-item response payloads (sub-batch order). */
        std::vector<std::vector<std::uint8_t>> items;
        /** BadRequest: the backend's error payload, relayed verbatim. */
        std::vector<std::uint8_t> errorPayload;
    };

    void run();
    void probeLoop();
    void acceptPending();
    bool readReady(Connection &conn);
    bool writeReady(Connection &conn);
    bool dispatchFrame(Connection &conn,
                       std::vector<std::uint8_t> payload);
    void relayRequest(Connection &conn,
                      const std::vector<std::uint8_t> &payload);
    void relayBatch(Connection &conn,
                    const std::vector<std::uint8_t> &payload);

    /**
     * Relay one sub-batch (or, with a single item, one request) along
     * @p replicas: healthy replicas first, fail over on faults, hold
     * degraded replies while hunting for a clean replica.  Runs on
     * the event loop for single requests and on fan-out threads for
     * concurrent sub-batches (backend streams are mutex-guarded).
     */
    GroupOutcome
    relayToReplicas(const std::vector<std::uint32_t> &replicas,
                    const std::vector<std::vector<std::uint8_t>> &items);

    void probeBackends();
    json::Value healthJson();

    /**
     * One attempt against one backend: send the payload, read one
     * frame.  Throws the typed taxonomy on any failure; marks the
     * backend down on transport/framing faults.
     */
    ReceivedFrame callBackend(Backend &backend, FrameType type,
                              const std::vector<std::uint8_t> &payload);

    void queueFrame(Connection &conn, FrameType type,
                    const std::vector<std::uint8_t> &payload);
    void updateEpoll(Connection &conn);
    void closeConnection(int fd);

    RouterConfig config_;
    Listener listener_;
    OwnedFd epollFd_;
    OwnedFd wakeFd_;
    std::deque<Backend> backends_; ///< deque: Backend is immovable
    std::map<int, Connection> connections_;
    obs::MetricsRegistry metrics_;
    std::thread thread_;
    std::thread probeThread_;
    std::mutex probeMutex_;
    std::condition_variable probeCv_;
    std::atomic<bool> running_{false};

    mutable std::mutex catalogMutex_;
    std::shared_ptr<const ShardCatalog> catalog_;
};

} // namespace clare::net

#endif // CLARE_NET_ROUTER_HH
