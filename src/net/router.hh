/**
 * @file
 * Router: the predicate-sharded front of a multi-backend cluster.
 *
 * Clients speak the same framed protocol to the router they would
 * speak to a single NetServer — the router is transparent.  For each
 * Request it reads the predicate TLV field (never the PIF goal: the
 * goal bytes stay opaque), picks the predicate's replica set, and
 * relays the request payload *verbatim* to one backend, then relays
 * the response payload verbatim back.  Verbatim relay is what makes
 * the exactness contract compose: the bytes the client decodes are the
 * bytes the backend's serve() produced, so answers and modeled
 * StageBreakdown ticks through the router are bit-identical to a
 * single-process serve() on the same store.
 *
 * Sharding and replication: predicate p lives on replicas
 * (hash(p) + i) mod N for i in [0, R).  Every backend loads the full
 * store — sharding is a *routing policy* (cache locality: one
 * predicate's queries always land on the same R backends, so their
 * survivor memos and goal caches stay hot), not a data partition, and
 * it is what keeps per-backend responses bit-identical to
 * single-process retrieval regardless of cluster size.
 *
 * Failover: a replica attempt fails over to the next replica on a
 * transport fault (IoError), a damaged frame (CorruptionError), or an
 * Error frame of code Overloaded/Unavailable/Internal (BadRequest is
 * the client's fault and is relayed, not retried).  A *degraded*
 * response (backend index corruption downgraded the scan) is held and
 * the next replica is tried for a clean one — the degraded answer is
 * returned only when no replica can do better, so one poisoned store
 * in a 3-replica set is invisible to clients except in the counters.
 * When every replica fails, the client gets Error(Unavailable).
 *
 * Health: replicas that fail are marked down and skipped; a periodic
 * Health probe (on the event-loop tick) brings them back.  Load
 * shedding mirrors NetServer: a connection cap at the door plus a
 * per-connection outbound bound.
 *
 * The router owns its MetricsRegistry (router.* counters: relayed,
 * failovers, degraded_held, unavailable, shed, probes).
 */

#ifndef CLARE_NET_ROUTER_HH
#define CLARE_NET_ROUTER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hh"
#include "net/wire.hh"
#include "support/obs.hh"
#include "term/clause.hh"

namespace clare::net {

/** Router knobs. */
struct RouterConfig
{
    /** Listen port; 0 picks an ephemeral port. */
    std::uint16_t port = 0;

    /** Backend NetServer ports, in shard order. */
    std::vector<std::uint16_t> backendPorts;

    /** Replicas tried per predicate (clamped to the backend count). */
    std::uint32_t replication = 2;

    /** Per-call deadline against one backend. */
    int backendTimeoutMillis = 2000;

    /** Event-loop tick driving the health probes. */
    int probeIntervalMillis = 500;

    /** Client-side admission bounds (as in NetServerConfig). */
    std::uint32_t maxConnections = 64;
    std::uint32_t maxOutboundBytes = 4u << 20;
};

/** The predicate-sharding relay. */
class Router
{
  public:
    /**
     * Binds immediately; relays nothing until start().
     * @throws IoError when the port cannot be bound
     * @throws Error on an empty backend list or zero replication
     */
    explicit Router(RouterConfig config);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    std::uint16_t port() const { return listener_.port(); }

    void start();
    void stop();

    /** Replica set of @p pred under this config (exposed for tests). */
    std::vector<std::uint32_t>
    replicasOf(const term::PredicateId &pred) const;

    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

  private:
    struct Backend
    {
        std::uint16_t port = 0;
        std::string name;
        std::optional<ClientStream> stream; ///< lazy, rebuilt on fault
        bool healthy = true;
    };

    struct Connection
    {
        OwnedFd fd;
        std::string peer;
        std::vector<std::uint8_t> inbound;
        std::size_t needed = kFrameHeaderBytes;
        bool readingHeader = true;
        FrameHeader header;
        std::vector<std::uint8_t> outbound;
        std::size_t outboundAt = 0;
    };

    void run();
    void acceptPending();
    bool readReady(Connection &conn);
    bool writeReady(Connection &conn);
    bool dispatchFrame(Connection &conn,
                       std::vector<std::uint8_t> payload);
    void relayRequest(Connection &conn,
                      const std::vector<std::uint8_t> &payload);
    void probeBackends();
    json::Value healthJson();

    /**
     * One attempt against one backend: send the request payload
     * verbatim, read one frame.  Throws the typed taxonomy on any
     * failure; marks the backend down on transport/framing faults.
     */
    ReceivedFrame callBackend(Backend &backend,
                              const std::vector<std::uint8_t> &payload);

    void queueFrame(Connection &conn, FrameType type,
                    const std::vector<std::uint8_t> &payload);
    void updateEpoll(Connection &conn);
    void closeConnection(int fd);

    RouterConfig config_;
    Listener listener_;
    OwnedFd epollFd_;
    OwnedFd wakeFd_;
    std::vector<Backend> backends_;
    std::map<int, Connection> connections_;
    obs::MetricsRegistry metrics_;
    std::thread thread_;
    std::atomic<bool> running_{false};
};

} // namespace clare::net

#endif // CLARE_NET_ROUTER_HH
