/**
 * @file
 * NetClient: the wire-side twin of ClauseRetrievalServer's front door.
 *
 * serve(RetrievalRequest) has the same shape as the local call — that
 * is the point of the API redesign: a caller ports from in-process to
 * networked retrieval by constructing a NetClient where it constructed
 * a ClauseRetrievalServer, and the request/response types do not
 * change.  The response is bit-identical (answers and modeled
 * StageBreakdown ticks) to the local serve() because the server runs
 * the identical single code path and the codec is lossless.
 *
 * Failure surfaces as the typed taxonomy, never a crash:
 *
 *   IoError          transport: refused, reset, timeout, short read
 *   CorruptionError  damaged frame or payload bytes
 *   RemoteError      the peer answered with an Error frame (carries
 *                    the ErrorCode: Overloaded, Unavailable, ...)
 *
 * One NetClient is one connection (plus lazy reconnect after close());
 * it is not thread-safe — give each client thread its own.
 */

#ifndef CLARE_NET_CLIENT_HH
#define CLARE_NET_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crs/api.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "support/json.hh"

namespace clare::net {

/** A blocking wire client speaking the framed protocol. */
class NetClient
{
  public:
    /**
     * @param timeoutMillis per-operation deadline (connect/send/recv)
     *
     * Connects lazily on the first call, and reconnects after a
     * transport failure was surfaced.  The goal's symbol ids travel
     * as-is, so the caller's arena must be built over the same
     * persisted store the server opened — the symbol table is the
     * shared schema of the protocol.
     */
    NetClient(std::uint16_t port, std::string peer,
              int timeoutMillis = 2000);

    const std::string &peer() const { return peer_; }

    /**
     * Retrieve over the wire.  @p request.arena/goal must be set, as
     * for the local front door; TraceOptions do not travel (spans live
     * in the server's tracer).
     *
     * @throws Error (encode), IoError, CorruptionError, RemoteError
     */
    crs::RetrievalResponse serve(const crs::RetrievalRequest &request);

    /**
     * Retrieve a batch over the wire in one BatchRequest frame — the
     * wire-side twin of ClauseRetrievalServer::serveBatch().  The
     * responses come back in batch order; against a sharded router
     * the batch is scattered across the owning shards and the merged
     * responses are bit-identical to a local serveBatch() of the same
     * requests on the unsharded store.
     *
     * @throws Error (encode), IoError, CorruptionError, RemoteError
     *         (a batch is one unit: any item failure fails the call)
     */
    std::vector<crs::RetrievalResponse>
    serveBatch(const std::vector<crs::RetrievalRequest> &batch);

    /** Health probe; returns the peer's JSON status document. */
    json::Value health();

    /** Drop the connection (the next call reconnects). */
    void close() { stream_.reset(); }
    bool connected() const { return stream_.has_value(); }

  private:
    ClientStream &stream();
    ReceivedFrame callGuarded(FrameType type,
                              const std::vector<std::uint8_t> &payload);

    std::uint16_t port_;
    std::string peer_;
    int timeoutMillis_;
    std::uint64_t nextId_ = 1;
    std::optional<ClientStream> stream_;
};

} // namespace clare::net

#endif // CLARE_NET_CLIENT_HH
