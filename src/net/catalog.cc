#include "net/catalog.hh"

#include <fstream>
#include <sstream>

#include "support/errors.hh"

namespace clare::net {

void
ShardCatalog::assign(const term::PredicateId &pred, std::uint32_t shard)
{
    if (shard >= replicas_.size())
        replicas_.resize(shard + 1);
    assignments_[pred] = shard;
}

void
ShardCatalog::setReplicas(std::uint32_t shard,
                          std::vector<std::uint32_t> backendIndexes)
{
    if (shard >= replicas_.size())
        replicas_.resize(shard + 1);
    replicas_[shard] = std::move(backendIndexes);
}

std::optional<std::uint32_t>
ShardCatalog::shardOf(const term::PredicateId &pred) const
{
    auto it = assignments_.find(pred);
    if (it == assignments_.end())
        return std::nullopt;
    return it->second;
}

const std::vector<std::uint32_t> *
ShardCatalog::replicasOf(const term::PredicateId &pred) const
{
    auto it = assignments_.find(pred);
    if (it == assignments_.end())
        return nullptr;
    return &replicas_[it->second];
}

void
ShardCatalog::validate(std::size_t backendCount) const
{
    for (std::size_t shard = 0; shard < replicas_.size(); ++shard) {
        if (replicas_[shard].empty())
            throw Error("catalog shard " + std::to_string(shard) +
                        " has no replicas");
        for (std::uint32_t idx : replicas_[shard])
            if (idx >= backendCount)
                throw Error("catalog shard " + std::to_string(shard) +
                            " names backend " + std::to_string(idx) +
                            " but the deployment has " +
                            std::to_string(backendCount) + " backends");
    }
    for (const auto &[pred, shard] : assignments_)
        if (shard >= replicas_.size())
            throw Error("catalog predicate " +
                        std::to_string(pred.functor) + "/" +
                        std::to_string(pred.arity) + " names shard " +
                        std::to_string(shard) + " of " +
                        std::to_string(replicas_.size()));
}

json::Value
ShardCatalog::toJson() const
{
    json::Value doc = json::Value::object();
    doc.set("clare-catalog", static_cast<std::uint64_t>(1));
    doc.set("shards", static_cast<std::uint64_t>(replicas_.size()));
    json::Value replicaList = json::Value::array();
    for (const std::vector<std::uint32_t> &shard : replicas_) {
        json::Value one = json::Value::array();
        for (std::uint32_t idx : shard)
            one.push(static_cast<std::uint64_t>(idx));
        replicaList.push(std::move(one));
    }
    doc.set("replicas", std::move(replicaList));
    json::Value preds = json::Value::array();
    for (const auto &[pred, shard] : assignments_) {
        json::Value one = json::Value::object();
        one.set("functor", static_cast<std::uint64_t>(pred.functor));
        one.set("arity", static_cast<std::uint64_t>(pred.arity));
        one.set("shard", static_cast<std::uint64_t>(shard));
        preds.push(std::move(one));
    }
    doc.set("predicates", std::move(preds));
    return doc;
}

namespace {

[[noreturn]] void
badCatalog(const std::string &source, const std::string &why)
{
    throw CorruptionError(source, kNoFilePosition, kNoFilePosition,
                          "shard catalog: " + why);
}

std::uint32_t
u32Member(const json::Value &obj, const char *key,
          const std::string &source)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        badCatalog(source,
                   std::string("missing numeric '") + key + "' member");
    double d = v->number();
    if (d < 0 || d > 4294967295.0 ||
        d != static_cast<double>(static_cast<std::uint64_t>(d)))
        badCatalog(source,
                   std::string("member '") + key +
                       "' is not a 32-bit unsigned integer");
    return static_cast<std::uint32_t>(d);
}

} // namespace

ShardCatalog
ShardCatalog::fromJson(const json::Value &doc, const std::string &source)
{
    if (!doc.isObject())
        badCatalog(source, "document is not an object");
    std::uint32_t version = u32Member(doc, "clare-catalog", source);
    if (version != 1)
        badCatalog(source, "unsupported catalog version " +
                               std::to_string(version));
    std::uint32_t shards = u32Member(doc, "shards", source);

    ShardCatalog catalog;
    const json::Value *replicas = doc.find("replicas");
    if (replicas == nullptr || !replicas->isArray())
        badCatalog(source, "missing 'replicas' array");
    if (replicas->size() != shards)
        badCatalog(source, "'replicas' lists " +
                               std::to_string(replicas->size()) +
                               " shards, header says " +
                               std::to_string(shards));
    for (std::size_t shard = 0; shard < replicas->size(); ++shard) {
        const json::Value &one = replicas->at(shard);
        if (!one.isArray())
            badCatalog(source, "shard " + std::to_string(shard) +
                                   " replicas is not an array");
        std::vector<std::uint32_t> indexes;
        indexes.reserve(one.size());
        for (std::size_t i = 0; i < one.size(); ++i) {
            const json::Value &idx = one.at(i);
            if (!idx.isNumber() || idx.number() < 0)
                badCatalog(source,
                           "shard " + std::to_string(shard) +
                               " has a non-numeric replica index");
            indexes.push_back(
                static_cast<std::uint32_t>(idx.number()));
        }
        catalog.setReplicas(static_cast<std::uint32_t>(shard),
                            std::move(indexes));
    }

    const json::Value *preds = doc.find("predicates");
    if (preds == nullptr || !preds->isArray())
        badCatalog(source, "missing 'predicates' array");
    for (std::size_t i = 0; i < preds->size(); ++i) {
        const json::Value &one = preds->at(i);
        if (!one.isObject())
            badCatalog(source, "predicate entry " + std::to_string(i) +
                                   " is not an object");
        term::PredicateId pred{u32Member(one, "functor", source),
                               u32Member(one, "arity", source)};
        std::uint32_t shard = u32Member(one, "shard", source);
        if (shard >= shards)
            badCatalog(source,
                       "predicate " + std::to_string(pred.functor) +
                           "/" + std::to_string(pred.arity) +
                           " names shard " + std::to_string(shard) +
                           " of " + std::to_string(shards));
        if (catalog.shardOf(pred))
            badCatalog(source,
                       "predicate " + std::to_string(pred.functor) +
                           "/" + std::to_string(pred.arity) +
                           " assigned twice");
        catalog.assign(pred, shard);
    }
    // A trailing shard with replicas but no header coverage cannot
    // happen (sizes checked above); an empty catalog (0 shards) is
    // legal and routes nothing.
    return catalog;
}

void
ShardCatalog::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        throw IoError(path, "cannot open for writing");
    out << toJson().dump(2) << '\n';
    if (!out)
        throw IoError(path, "write failed");
}

ShardCatalog
ShardCatalog::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw IoError(path, "cannot open for reading");
    std::ostringstream slurp;
    slurp << in.rdbuf();
    std::string error;
    std::optional<json::Value> doc =
        json::Value::parse(slurp.str(), &error);
    if (!doc)
        badCatalog(path, "not JSON: " + error);
    return fromJson(*doc, path);
}

} // namespace clare::net
