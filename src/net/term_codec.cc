#include "net/term_codec.hh"

#include <map>

#include "pif/pif_item.hh"
#include "pif/type_tags.hh"
#include "support/errors.hh"

namespace clare::net {

using term::TermArena;
using term::TermKind;
using term::TermRef;

namespace {

struct EncodeState
{
    std::map<term::VarId, std::uint32_t> slots;
    std::uint32_t nextSlot = 0;
};

void
encodeTerm(const TermArena &arena, TermRef t, EncodeState &state,
           std::vector<std::uint8_t> &out)
{
    switch (arena.kind(t)) {
      case TermKind::Atom:
        pif::serializeItem(
            pif::PifItem{pif::kAtomPointer, arena.atomSymbol(t), 0}, out);
        return;
      case TermKind::Float:
        pif::serializeItem(
            pif::PifItem{pif::kFloatPointer, arena.floatId(t), 0}, out);
        return;
      case TermKind::Int: {
        std::int64_t v = arena.intValue(t);
        if (!pif::PifItem::integerFits(v))
            throw Error("wire goal integer " + std::to_string(v) +
                        " exceeds the PIF 36-bit in-line range");
        pif::serializeItem(pif::PifItem::makeInteger(v), out);
        return;
      }
      case TermKind::Var: {
        if (arena.isAnonymous(t)) {
            pif::serializeItem(pif::PifItem{pif::kAnonymousVar, 0, 0},
                               out);
            return;
        }
        auto [it, first] =
            state.slots.emplace(arena.varId(t), state.nextSlot);
        if (first)
            ++state.nextSlot;
        pif::Tag tag =
            first ? pif::kFirstQueryVar : pif::kSubQueryVar;
        pif::serializeItem(pif::PifItem{tag, it->second, 0}, out);
        return;
      }
      case TermKind::Struct: {
        std::uint32_t arity = arena.arity(t);
        if (arity > pif::kMaxInlineArity)
            throw Error("wire goal structure arity " +
                        std::to_string(arity) +
                        " exceeds the PIF 5-bit arity field");
        pif::serializeItem(
            pif::PifItem{pif::makeComplexTag(pif::kStructInlineBase,
                                             arity),
                         arena.functor(t), 0},
            out);
        for (std::uint32_t i = 0; i < arity; ++i)
            encodeTerm(arena, arena.arg(t, i), state, out);
        return;
      }
      case TermKind::List: {
        std::uint32_t count = arena.arity(t);
        if (count > pif::kMaxInlineArity)
            throw Error("wire goal list of " + std::to_string(count) +
                        " elements exceeds the PIF 5-bit arity field");
        bool terminated = arena.isTerminatedList(t);
        pif::Tag base = terminated ? pif::kTermListInlineBase
                                   : pif::kUntermListInlineBase;
        pif::serializeItem(
            pif::PifItem{pif::makeComplexTag(base, count), 0, 0}, out);
        for (std::uint32_t i = 0; i < count; ++i)
            encodeTerm(arena, arena.arg(t, i), state, out);
        if (!terminated)
            encodeTerm(arena, arena.listTail(t), state, out);
        return;
      }
    }
    throw Error("wire goal term of unknown kind");
}

struct DecodeState
{
    const std::vector<std::uint8_t> &bytes;
    std::size_t offset = 0;
    const std::string &peer;
    term::SymbolTable &symbols;
    TermArena &arena;
    std::map<std::uint32_t, std::pair<term::VarId, term::SymbolId>> slots;
    term::VarId nextVar = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw CorruptionError(peer, kNoFilePosition, offset,
                              "wire goal: " + why);
    }
};

pif::PifItem
readItem(DecodeState &state)
{
    const std::vector<std::uint8_t> &bytes = state.bytes;
    if (state.offset >= bytes.size())
        state.fail("truncated item stream");
    pif::PifItem item;
    item.tag = bytes[state.offset];
    if (!pif::isValidTag(item.tag))
        state.fail("invalid PIF tag byte " + std::to_string(item.tag));
    std::size_t need = pif::tagHasExtension(item.tag) ? 9 : 5;
    if (bytes.size() - state.offset < need)
        state.fail("item overruns the stream");
    auto u32At = [&bytes](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
        return v;
    };
    item.content = u32At(state.offset + 1);
    if (need == 9)
        item.extension = u32At(state.offset + 5);
    state.offset += need;
    return item;
}

TermRef
decodeTerm(DecodeState &state)
{
    pif::PifItem item = readItem(state);
    switch (pif::tagClass(item.tag)) {
      case pif::TagClass::Atom:
        return state.arena.makeAtom(item.content);
      case pif::TagClass::Float:
        return state.arena.makeFloat(item.content);
      case pif::TagClass::Integer:
        return state.arena.makeInt(item.integerValue());
      case pif::TagClass::AnonymousVar:
        return state.arena.makeVar(state.nextVar++);
      case pif::TagClass::FirstQueryVar: {
        if (state.slots.count(item.content))
            state.fail("variable slot " + std::to_string(item.content) +
                       " introduced twice");
        // The slot's name never travels (retrieval is renaming-
        // invariant); intern a synthetic one so the variable decodes
        // as named, not anonymous — sharing must survive.
        term::SymbolId name = state.symbols.intern(
            "_W" + std::to_string(item.content));
        term::VarId var = state.nextVar++;
        state.slots.emplace(item.content, std::make_pair(var, name));
        return state.arena.makeVar(var, name);
      }
      case pif::TagClass::SubQueryVar: {
        auto it = state.slots.find(item.content);
        if (it == state.slots.end())
            state.fail("subsequent variable slot " +
                       std::to_string(item.content) +
                       " never introduced");
        return state.arena.makeVar(it->second.first, it->second.second);
      }
      case pif::TagClass::FirstDbVar:
      case pif::TagClass::SubDbVar:
        state.fail("database-side variable tag in a query goal");
      case pif::TagClass::StructInline: {
        std::uint32_t arity = pif::tagArity(item.tag);
        if (arity == 0)
            state.fail("in-line structure with zero arity");
        std::vector<TermRef> args;
        args.reserve(arity);
        for (std::uint32_t i = 0; i < arity; ++i)
            args.push_back(decodeTerm(state));
        return state.arena.makeStruct(item.content, args);
      }
      case pif::TagClass::TermListInline:
      case pif::TagClass::UntermListInline: {
        std::uint32_t count = pif::tagArity(item.tag);
        std::vector<TermRef> elems;
        elems.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i)
            elems.push_back(decodeTerm(state));
        if (pif::tagClass(item.tag) == pif::TagClass::TermListInline)
            return state.arena.makeList(elems);
        TermRef tail = decodeTerm(state);
        if (state.arena.kind(tail) != TermKind::Var)
            state.fail("unterminated list tail is not a variable");
        return state.arena.makeList(elems, tail);
      }
      case pif::TagClass::StructPointer:
      case pif::TagClass::TermListPointer:
      case pif::TagClass::UntermListPointer:
        state.fail("pointer tag is illegal in the recursive wire "
                   "dialect");
    }
    state.fail("unhandled PIF tag class");
}

} // namespace

std::vector<std::uint8_t>
encodeGoal(const TermArena &arena, TermRef goal)
{
    TermKind k = arena.kind(goal);
    if (k != TermKind::Atom && k != TermKind::Struct)
        throw Error("wire goal must be an atom or structure");
    std::vector<std::uint8_t> out;
    EncodeState state;
    encodeTerm(arena, goal, state, out);
    return out;
}

term::TermRef
decodeGoal(const std::vector<std::uint8_t> &bytes,
           term::SymbolTable &symbols, term::TermArena &arena,
           const std::string &peer)
{
    DecodeState state{bytes, 0, peer, symbols, arena, {}, 0};
    TermRef goal = decodeTerm(state);
    if (state.offset != bytes.size())
        state.fail("trailing bytes after the goal term");
    TermKind k = arena.kind(goal);
    if (k != TermKind::Atom && k != TermKind::Struct)
        state.fail("goal root is not an atom or structure");
    return goal;
}

} // namespace clare::net
