#include "net/client.hh"

#include "net/term_codec.hh"
#include "support/logging.hh"

namespace clare::net {

NetClient::NetClient(std::uint16_t port, std::string peer,
                     int timeoutMillis)
    : port_(port),
      peer_(std::move(peer)),
      timeoutMillis_(timeoutMillis)
{
}

ClientStream &
NetClient::stream()
{
    if (!stream_)
        stream_.emplace(port_, peer_, timeoutMillis_);
    return *stream_;
}

ReceivedFrame
NetClient::callGuarded(FrameType type,
                       const std::vector<std::uint8_t> &payload)
{
    // A transport or framing failure leaves the stream desynchronized;
    // drop it so the next call starts on a fresh connection.
    try {
        return stream().call(type, payload);
    } catch (const Error &) {
        close();
        throw;
    }
}

crs::RetrievalResponse
NetClient::serve(const crs::RetrievalRequest &request)
{
    clare_assert(request.arena != nullptr,
                 "NetClient::serve needs a goal arena");
    WireRequest wire;
    wire.id = nextId_++;
    const term::TermArena &arena = *request.arena;
    if (arena.kind(request.goal) == term::TermKind::Atom)
        wire.predicate = {arena.atomSymbol(request.goal), 0};
    else
        wire.predicate = {arena.functor(request.goal),
                          arena.arity(request.goal)};
    wire.goalPif = encodeGoal(arena, request.goal);
    wire.mode = request.mode;
    wire.bypassCache = request.bypassCache;

    ReceivedFrame frame =
        callGuarded(FrameType::Request, encodeRequest(wire));
    if (frame.type == FrameType::Error) {
        WireError error = decodeError(frame.payload, peer_);
        throw RemoteError(error.code, error.message);
    }
    if (frame.type != FrameType::Response) {
        close();
        throw CorruptionError(peer_, kNoFilePosition, 0,
                              "unexpected frame type in reply to a "
                              "request");
    }
    WireResponse response = decodeResponse(frame.payload, peer_);
    if (response.id != wire.id) {
        close();
        throw CorruptionError(peer_, kNoFilePosition, 0,
                              "response id does not match the request");
    }
    return std::move(response.response);
}

std::vector<crs::RetrievalResponse>
NetClient::serveBatch(const std::vector<crs::RetrievalRequest> &batch)
{
    std::vector<std::vector<std::uint8_t>> items;
    std::vector<std::uint64_t> ids;
    items.reserve(batch.size());
    ids.reserve(batch.size());
    for (const crs::RetrievalRequest &request : batch) {
        clare_assert(request.arena != nullptr,
                     "NetClient::serveBatch needs a goal arena");
        WireRequest wire;
        wire.id = nextId_++;
        const term::TermArena &arena = *request.arena;
        if (arena.kind(request.goal) == term::TermKind::Atom)
            wire.predicate = {arena.atomSymbol(request.goal), 0};
        else
            wire.predicate = {arena.functor(request.goal),
                              arena.arity(request.goal)};
        wire.goalPif = encodeGoal(arena, request.goal);
        wire.mode = request.mode;
        wire.bypassCache = request.bypassCache;
        ids.push_back(wire.id);
        items.push_back(encodeRequest(wire));
    }

    ReceivedFrame frame = callGuarded(FrameType::BatchRequest,
                                      encodeBatchItems(items));
    if (frame.type == FrameType::Error) {
        WireError error = decodeError(frame.payload, peer_);
        throw RemoteError(error.code, error.message);
    }
    if (frame.type != FrameType::BatchResponse) {
        close();
        throw CorruptionError(peer_, kNoFilePosition, 0,
                              "unexpected frame type in reply to a "
                              "batch request");
    }
    std::vector<std::vector<std::uint8_t>> replies =
        decodeBatchItems(frame.payload, peer_);
    if (replies.size() != batch.size()) {
        close();
        throw CorruptionError(peer_, kNoFilePosition, 0,
                              "batch reply has " +
                                  std::to_string(replies.size()) +
                                  " items, request had " +
                                  std::to_string(batch.size()));
    }
    std::vector<crs::RetrievalResponse> out;
    out.reserve(replies.size());
    for (std::size_t i = 0; i < replies.size(); ++i) {
        WireResponse response = decodeResponse(replies[i], peer_);
        if (response.id != ids[i]) {
            close();
            throw CorruptionError(peer_, kNoFilePosition, 0,
                                  "batch reply item " +
                                      std::to_string(i) +
                                      " does not echo its request id");
        }
        out.push_back(std::move(response.response));
    }
    return out;
}

json::Value
NetClient::health()
{
    ReceivedFrame frame = callGuarded(FrameType::Health, {});
    if (frame.type == FrameType::Error) {
        WireError error = decodeError(frame.payload, peer_);
        throw RemoteError(error.code, error.message);
    }
    if (frame.type != FrameType::HealthReply) {
        close();
        throw CorruptionError(peer_, kNoFilePosition, 0,
                              "unexpected frame type in reply to a "
                              "health probe");
    }
    std::string body(frame.payload.begin(), frame.payload.end());
    std::string error;
    std::optional<json::Value> doc = json::Value::parse(body, &error);
    if (!doc) {
        close();
        throw CorruptionError(peer_, kNoFilePosition, 0,
                              "health reply is not JSON: " + error);
    }
    return std::move(*doc);
}

} // namespace clare::net
