#include "net/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <string_view>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/term_codec.hh"
#include "support/logging.hh"

namespace clare::net {

namespace {

constexpr std::string_view kWireSite = "wire.conn";

term::PredicateId
goalPredicate(const term::TermArena &arena, term::TermRef goal)
{
    if (arena.kind(goal) == term::TermKind::Atom)
        return {arena.atomSymbol(goal), 0};
    return {arena.functor(goal), arena.arity(goal)};
}

} // namespace

NetServer::NetServer(term::SymbolTable &symbols,
                     const crs::PredicateStore &store,
                     crs::ClauseRetrievalServer &server,
                     NetServerConfig config)
    : symbols_(symbols),
      store_(store),
      server_(server),
      config_(config),
      listener_(config.port)
{
    int efd = ::epoll_create1(0);
    if (efd < 0)
        throw IoError("server", "epoll_create1 failed");
    epollFd_ = OwnedFd(efd);
    int wfd = ::eventfd(0, EFD_NONBLOCK);
    if (wfd < 0)
        throw IoError("server", "eventfd failed");
    wakeFd_ = OwnedFd(wfd);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listener_.fd();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, listener_.fd(), &ev);
    ev.data.fd = wakeFd_.get();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, wakeFd_.get(), &ev);
}

NetServer::~NetServer()
{
    stop();
}

void
NetServer::start()
{
    if (running_.exchange(true))
        return;
    thread_ = std::thread([this] { run(); });
}

void
NetServer::stop()
{
    if (running_.exchange(false)) {
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd_.get(), &one, sizeof(one));
    }
    if (thread_.joinable())
        thread_.join();
    connections_.clear();
}

void
NetServer::run()
{
    epoll_event events[64];
    while (running_.load()) {
        int n = ::epoll_wait(epollFd_.get(), events, 64, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_.get()) {
                std::uint64_t drained;
                [[maybe_unused]] ssize_t rd =
                    ::read(wakeFd_.get(), &drained, sizeof(drained));
                continue;
            }
            if (fd == listener_.fd()) {
                acceptPending();
                continue;
            }
            auto it = connections_.find(fd);
            if (it == connections_.end())
                continue;
            bool alive = true;
            if (events[i].events & (EPOLLHUP | EPOLLERR))
                alive = false;
            if (alive && (events[i].events & EPOLLIN))
                alive = readReady(it->second);
            // Re-find: readReady may have closed other fds? It does
            // not, but the map may rehash on accept; it cannot here.
            if (alive && (events[i].events & EPOLLOUT))
                alive = writeReady(it->second);
            if (!alive)
                closeConnection(fd);
        }
    }
}

void
NetServer::acceptPending()
{
    for (;;) {
        OwnedFd fd = listener_.accept();
        if (!fd.valid())
            return;
        if (connections_.size() >= config_.maxConnections) {
            // Shed at the door: one best-effort Error frame, close.
            ++server_.metrics().counter(
                "net.shed", "requests/connections shed by admission "
                            "control");
            std::vector<std::uint8_t> frame;
            encodeFrame(FrameType::Error,
                        encodeError(ErrorCode::Overloaded,
                                    "connection limit reached"),
                        frame);
            [[maybe_unused]] ssize_t n =
                ::send(fd.get(), frame.data(), frame.size(),
                       MSG_NOSIGNAL);
            continue;
        }
        ++server_.metrics().counter("net.accepted",
                                    "connections accepted");
        int raw = fd.get();
        Connection conn;
        conn.peer = "client:" + std::to_string(raw);
        conn.fd = std::move(fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = raw;
        ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, raw, &ev);
        connections_.emplace(raw, std::move(conn));
    }
}

bool
NetServer::readReady(Connection &conn)
{
    for (;;) {
        std::size_t have = conn.inbound.size();
        if (have < conn.needed) {
            std::uint8_t buf[4096];
            std::size_t want =
                std::min(conn.needed - have, sizeof(buf));
            ssize_t n = ::recv(conn.fd.get(), buf, want, 0);
            if (n == 0)
                return false;
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true;
                if (errno == EINTR)
                    continue;
                return false;
            }
            conn.inbound.insert(conn.inbound.end(), buf, buf + n);
            if (conn.inbound.size() < conn.needed)
                continue;
        }
        if (conn.readingHeader) {
            try {
                conn.header =
                    decodeFrameHeader(conn.inbound.data(), conn.peer);
            } catch (const CorruptionError &) {
                ++server_.metrics().counter(
                    "net.bad_frames",
                    "frames failing header/CRC validation");
                return false; // desync: the stream is unrecoverable
            }
            conn.readingHeader = false;
            conn.needed = conn.header.payloadBytes;
            conn.inbound.clear();
            if (conn.needed > 0)
                continue;
        }
        std::vector<std::uint8_t> payload = std::move(conn.inbound);
        conn.inbound = {};
        conn.readingHeader = true;
        conn.needed = kFrameHeaderBytes;
        try {
            verifyFramePayload(conn.header, payload.data(),
                               payload.size(), conn.peer);
        } catch (const CorruptionError &) {
            ++server_.metrics().counter(
                "net.bad_frames",
                "frames failing header/CRC validation");
            return false;
        }
        if (!dispatchFrame(conn, std::move(payload)))
            return false;
        if (conn.closing)
            return true; // keep fd until outbound drains
    }
}

bool
NetServer::dispatchFrame(Connection &conn,
                         std::vector<std::uint8_t> payload)
{
    bool keep = true;
    switch (conn.header.type) {
      case FrameType::Request:
        serveRequest(conn, payload);
        break;
      case FrameType::BatchRequest:
        serveBatchRequest(conn, payload);
        break;
      case FrameType::Health: {
        ++server_.metrics().counter("net.health_probes",
                                    "health probes answered");
        std::string body = healthJson().dump();
        std::vector<std::uint8_t> reply(body.begin(), body.end());
        if (!queueFrame(conn, FrameType::HealthReply, reply))
            keep = false;
        break;
      }
      case FrameType::Response:
      case FrameType::Error:
      case FrameType::HealthReply:
      case FrameType::BatchResponse:
        // Only a server sends these; a client that does is confused.
        ++server_.metrics().counter(
            "net.bad_frames", "frames failing header/CRC validation");
        return false;
    }
    if (!keep)
        return false;
    updateEpoll(conn);
    // A fault cut this connection mid-frame: close as soon as the
    // injected prefix has been flushed (now, if it already was).
    if (conn.closing)
        return conn.outboundAt < conn.outbound.size();
    return true;
}

void
NetServer::serveRequest(Connection &conn,
                        const std::vector<std::uint8_t> &payload)
{
    ++server_.metrics().counter("net.requests", "requests received");

    // Backpressure: a peer that stopped draining responses does not
    // get more of the pipeline's time (or this process's memory).
    if (conn.outbound.size() - conn.outboundAt >
        config_.maxOutboundBytes) {
        ++server_.metrics().counter(
            "net.shed",
            "requests/connections shed by admission control");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Overloaded,
                               "outbound backlog limit reached"));
        return;
    }

    WireRequest request;
    try {
        request = decodeRequest(payload, conn.peer);
    } catch (const CorruptionError &e) {
        // The frame passed its CRC, so this is a sender bug, not wire
        // damage: answer it and keep the (still framed) connection.
        ++server_.metrics().counter("net.bad_requests",
                                    "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest, e.what()));
        return;
    }

    term::TermArena arena;
    crs::RetrievalRequest local;
    try {
        local.goal = decodeGoal(request.goalPif, symbols_, arena,
                                conn.peer);
    } catch (const CorruptionError &e) {
        ++server_.metrics().counter("net.bad_requests",
                                    "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest, e.what()));
        return;
    }
    if (goalPredicate(arena, local.goal) != request.predicate) {
        ++server_.metrics().counter("net.bad_requests",
                                    "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest,
                               "predicate field disagrees with the "
                               "goal"));
        return;
    }
    if (!store_.has(request.predicate)) {
        ++server_.metrics().counter("net.bad_requests",
                                    "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest,
                               "unknown predicate"));
        return;
    }

    local.arena = &arena;
    local.mode = request.mode;
    local.bypassCache = request.bypassCache;
    try {
        crs::RetrievalResponse response = server_.serve(local);
        ++served_;
        ++server_.metrics().counter("net.responses",
                                    "responses served");
        queueFrame(conn, FrameType::Response,
                   encodeResponse(request.id, response));
    } catch (const Error &e) {
        ++server_.metrics().counter("net.serve_errors",
                                    "requests failing in the pipeline");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Internal, e.what()));
    }
}

void
NetServer::serveBatchRequest(Connection &conn,
                             const std::vector<std::uint8_t> &payload)
{
    ++server_.metrics().counter("net.batches",
                                "batch requests received");

    if (conn.outbound.size() - conn.outboundAt >
        config_.maxOutboundBytes) {
        ++server_.metrics().counter(
            "net.shed",
            "requests/connections shed by admission control");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Overloaded,
                               "outbound backlog limit reached"));
        return;
    }

    std::vector<std::vector<std::uint8_t>> items;
    try {
        items = decodeBatchItems(payload, conn.peer);
    } catch (const CorruptionError &e) {
        ++server_.metrics().counter("net.bad_requests",
                                    "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest, e.what()));
        return;
    }

    // Validate every item before serving any: a batch is one unit of
    // work, so one malformed item fails the frame with a typed error
    // instead of a partial answer.  Arenas live in a deque — the
    // requests hold pointers into them.
    std::deque<term::TermArena> arenas;
    std::vector<crs::RetrievalRequest> batch;
    std::vector<std::uint64_t> ids;
    batch.reserve(items.size());
    ids.reserve(items.size());
    for (const std::vector<std::uint8_t> &item : items) {
        WireRequest request;
        crs::RetrievalRequest local;
        term::TermArena &arena = arenas.emplace_back();
        try {
            request = decodeRequest(item, conn.peer);
            local.goal = decodeGoal(request.goalPif, symbols_, arena,
                                    conn.peer);
        } catch (const CorruptionError &e) {
            ++server_.metrics().counter("net.bad_requests",
                                        "requests failing validation");
            queueFrame(conn, FrameType::Error,
                       encodeError(ErrorCode::BadRequest, e.what()));
            return;
        }
        if (goalPredicate(arena, local.goal) != request.predicate) {
            ++server_.metrics().counter("net.bad_requests",
                                        "requests failing validation");
            queueFrame(conn, FrameType::Error,
                       encodeError(ErrorCode::BadRequest,
                                   "predicate field disagrees with "
                                   "the goal"));
            return;
        }
        if (!store_.has(request.predicate)) {
            ++server_.metrics().counter("net.bad_requests",
                                        "requests failing validation");
            queueFrame(conn, FrameType::Error,
                       encodeError(ErrorCode::BadRequest,
                                   "unknown predicate"));
            return;
        }
        local.arena = &arena;
        local.mode = request.mode;
        local.bypassCache = request.bypassCache;
        batch.push_back(local);
        ids.push_back(request.id);
    }

    try {
        std::vector<crs::RetrievalResponse> responses =
            server_.serveBatch(batch);
        std::vector<std::vector<std::uint8_t>> replies;
        replies.reserve(responses.size());
        for (std::size_t i = 0; i < responses.size(); ++i)
            replies.push_back(encodeResponse(ids[i], responses[i]));
        served_ += responses.size();
        ++server_.metrics().counter("net.responses",
                                    "responses served");
        queueFrame(conn, FrameType::BatchResponse,
                   encodeBatchItems(replies));
    } catch (const Error &e) {
        ++server_.metrics().counter("net.serve_errors",
                                    "requests failing in the pipeline");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Internal, e.what()));
    }
}

json::Value
NetServer::healthJson() const
{
    json::Value doc = json::Value::object();
    doc.set("status", "ok");
    doc.set("connections",
            static_cast<std::uint64_t>(connections_.size()));
    doc.set("served", served_);
    doc.set("predicates",
            static_cast<std::uint64_t>(store_.predicates().size()));
    return doc;
}

bool
NetServer::queueFrame(Connection &conn, FrameType type,
                      const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    encodeFrame(type, payload, frame);
    std::uint64_t key = framesSent_++;

    const support::FaultInjector *faults = config_.wireFaults;
    if (faults != nullptr) {
        switch (faults->frameFault(kWireSite, key)) {
          case support::FrameFault::None:
            break;
          case support::FrameFault::Drop:
            ++server_.metrics().counter("net.fault.drop",
                                        "outbound frames dropped");
            return false;
          case support::FrameFault::Truncate: {
            ++server_.metrics().counter("net.fault.truncate",
                                        "outbound frames truncated");
            frame.resize(faults->truncatedFrameBytes(kWireSite, key,
                                                     frame.size()));
            conn.outbound.insert(conn.outbound.end(), frame.begin(),
                                 frame.end());
            conn.closing = true; // cut mid-frame, then hang up
            return true;
          }
          case support::FrameFault::Corrupt:
            ++server_.metrics().counter(
                "net.fault.corrupt", "outbound frames bit-flipped");
            faults->flipBit(kWireSite, key, frame.data(),
                            frame.size());
            break;
          case support::FrameFault::Delay:
            ++server_.metrics().counter("net.fault.delay",
                                        "outbound frames delayed");
            std::this_thread::sleep_for(std::chrono::milliseconds(
                faults->config().frameDelayMillis));
            break;
        }
    }
    conn.outbound.insert(conn.outbound.end(), frame.begin(),
                         frame.end());
    return true;
}

bool
NetServer::writeReady(Connection &conn)
{
    while (conn.outboundAt < conn.outbound.size()) {
        ssize_t n = ::send(conn.fd.get(),
                           conn.outbound.data() + conn.outboundAt,
                           conn.outbound.size() - conn.outboundAt,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outboundAt += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (conn.outboundAt == conn.outbound.size()) {
        conn.outbound.clear();
        conn.outboundAt = 0;
        if (conn.closing)
            return false;
    }
    updateEpoll(conn);
    return true;
}

void
NetServer::updateEpoll(Connection &conn)
{
    // Try to flush inline first; epoll only needs EPOLLOUT for the
    // remainder the kernel would not take.
    if (conn.outboundAt < conn.outbound.size()) {
        ssize_t n = ::send(conn.fd.get(),
                           conn.outbound.data() + conn.outboundAt,
                           conn.outbound.size() - conn.outboundAt,
                           MSG_NOSIGNAL);
        if (n > 0)
            conn.outboundAt += static_cast<std::size_t>(n);
        if (conn.outboundAt == conn.outbound.size()) {
            conn.outbound.clear();
            conn.outboundAt = 0;
        }
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    if (conn.outboundAt < conn.outbound.size())
        ev.events |= EPOLLOUT;
    ev.data.fd = conn.fd.get();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void
NetServer::closeConnection(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    ++server_.metrics().counter("net.closed", "connections closed");
    connections_.erase(it);
}

} // namespace clare::net
