#include "net/router.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace clare::net {

namespace {

/** splitmix64 finalizer (the repo's standard avalanche step). */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
shardHash(const term::PredicateId &pred)
{
    return mix((static_cast<std::uint64_t>(pred.functor) << 32) |
               pred.arity);
}

} // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      listener_(config_.port)
{
    if (config_.backendPorts.empty())
        throw Error("router needs at least one backend");
    if (config_.replication == 0)
        throw Error("router replication must be at least 1");
    if (config_.replication > config_.backendPorts.size())
        config_.replication =
            static_cast<std::uint32_t>(config_.backendPorts.size());

    for (std::uint16_t port : config_.backendPorts) {
        Backend backend;
        backend.port = port;
        backend.name = "backend:" + std::to_string(port);
        backends_.push_back(std::move(backend));
    }

    int efd = ::epoll_create1(0);
    if (efd < 0)
        throw IoError("router", "epoll_create1 failed");
    epollFd_ = OwnedFd(efd);
    int wfd = ::eventfd(0, EFD_NONBLOCK);
    if (wfd < 0)
        throw IoError("router", "eventfd failed");
    wakeFd_ = OwnedFd(wfd);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listener_.fd();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, listener_.fd(), &ev);
    ev.data.fd = wakeFd_.get();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, wakeFd_.get(), &ev);
}

Router::~Router()
{
    stop();
}

void
Router::start()
{
    if (running_.exchange(true))
        return;
    thread_ = std::thread([this] { run(); });
}

void
Router::stop()
{
    if (running_.exchange(false)) {
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd_.get(), &one, sizeof(one));
    }
    if (thread_.joinable())
        thread_.join();
    connections_.clear();
    for (Backend &backend : backends_)
        backend.stream.reset();
}

std::vector<std::uint32_t>
Router::replicasOf(const term::PredicateId &pred) const
{
    std::uint64_t base = shardHash(pred);
    std::size_t n = backends_.size();
    std::vector<std::uint32_t> replicas;
    replicas.reserve(config_.replication);
    for (std::uint32_t i = 0; i < config_.replication; ++i)
        replicas.push_back(
            static_cast<std::uint32_t>((base + i) % n));
    return replicas;
}

void
Router::run()
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point lastProbe = Clock::now();
    epoll_event events[64];
    while (running_.load()) {
        int n = ::epoll_wait(epollFd_.get(), events, 64,
                             config_.probeIntervalMillis);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_.get()) {
                std::uint64_t drained;
                [[maybe_unused]] ssize_t rd =
                    ::read(wakeFd_.get(), &drained, sizeof(drained));
                continue;
            }
            if (fd == listener_.fd()) {
                acceptPending();
                continue;
            }
            auto it = connections_.find(fd);
            if (it == connections_.end())
                continue;
            bool alive = true;
            if (events[i].events & (EPOLLHUP | EPOLLERR))
                alive = false;
            if (alive && (events[i].events & EPOLLIN))
                alive = readReady(it->second);
            if (alive && (events[i].events & EPOLLOUT))
                alive = writeReady(it->second);
            if (!alive)
                closeConnection(fd);
        }
        Clock::time_point now = Clock::now();
        if (now - lastProbe >= std::chrono::milliseconds(
                                   config_.probeIntervalMillis)) {
            lastProbe = now;
            probeBackends();
        }
    }
}

void
Router::acceptPending()
{
    for (;;) {
        OwnedFd fd = listener_.accept();
        if (!fd.valid())
            return;
        if (connections_.size() >= config_.maxConnections) {
            ++metrics_.counter("router.shed",
                               "requests/connections shed");
            std::vector<std::uint8_t> frame;
            encodeFrame(FrameType::Error,
                        encodeError(ErrorCode::Overloaded,
                                    "connection limit reached"),
                        frame);
            [[maybe_unused]] ssize_t n =
                ::send(fd.get(), frame.data(), frame.size(),
                       MSG_NOSIGNAL);
            continue;
        }
        ++metrics_.counter("router.accepted", "connections accepted");
        int raw = fd.get();
        Connection conn;
        conn.peer = "client:" + std::to_string(raw);
        conn.fd = std::move(fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = raw;
        ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, raw, &ev);
        connections_.emplace(raw, std::move(conn));
    }
}

bool
Router::readReady(Connection &conn)
{
    for (;;) {
        std::size_t have = conn.inbound.size();
        if (have < conn.needed) {
            std::uint8_t buf[4096];
            std::size_t want =
                std::min(conn.needed - have, sizeof(buf));
            ssize_t n = ::recv(conn.fd.get(), buf, want, 0);
            if (n == 0)
                return false;
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true;
                if (errno == EINTR)
                    continue;
                return false;
            }
            conn.inbound.insert(conn.inbound.end(), buf, buf + n);
            if (conn.inbound.size() < conn.needed)
                continue;
        }
        if (conn.readingHeader) {
            try {
                conn.header =
                    decodeFrameHeader(conn.inbound.data(), conn.peer);
            } catch (const CorruptionError &) {
                ++metrics_.counter("router.bad_frames",
                                   "client frames failing validation");
                return false;
            }
            conn.readingHeader = false;
            conn.needed = conn.header.payloadBytes;
            conn.inbound.clear();
            if (conn.needed > 0)
                continue;
        }
        std::vector<std::uint8_t> payload = std::move(conn.inbound);
        conn.inbound = {};
        conn.readingHeader = true;
        conn.needed = kFrameHeaderBytes;
        try {
            verifyFramePayload(conn.header, payload.data(),
                               payload.size(), conn.peer);
        } catch (const CorruptionError &) {
            ++metrics_.counter("router.bad_frames",
                               "client frames failing validation");
            return false;
        }
        if (!dispatchFrame(conn, std::move(payload)))
            return false;
    }
}

bool
Router::dispatchFrame(Connection &conn,
                      std::vector<std::uint8_t> payload)
{
    switch (conn.header.type) {
      case FrameType::Request:
        relayRequest(conn, payload);
        break;
      case FrameType::Health: {
        std::string body = healthJson().dump();
        queueFrame(conn, FrameType::HealthReply,
                   std::vector<std::uint8_t>(body.begin(),
                                             body.end()));
        break;
      }
      case FrameType::Response:
      case FrameType::Error:
      case FrameType::HealthReply:
        ++metrics_.counter("router.bad_frames",
                           "client frames failing validation");
        return false;
    }
    updateEpoll(conn);
    return true;
}

ReceivedFrame
Router::callBackend(Backend &backend,
                    const std::vector<std::uint8_t> &payload)
{
    try {
        if (!backend.stream)
            backend.stream.emplace(backend.port, backend.name,
                                   config_.backendTimeoutMillis);
        return backend.stream->call(FrameType::Request, payload);
    } catch (const Error &) {
        // Transport fault or damaged frame: the stream is unusable
        // and the backend suspect until a probe clears it.
        backend.stream.reset();
        backend.healthy = false;
        throw;
    }
}

void
Router::relayRequest(Connection &conn,
                     const std::vector<std::uint8_t> &payload)
{
    ++metrics_.counter("router.requests", "requests received");

    if (conn.outbound.size() - conn.outboundAt >
        config_.maxOutboundBytes) {
        ++metrics_.counter("router.shed",
                           "requests/connections shed");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Overloaded,
                               "outbound backlog limit reached"));
        return;
    }

    WireRequest request;
    try {
        // Only the predicate field matters here; the goal bytes stay
        // opaque and travel to the backend verbatim.
        request = decodeRequest(payload, conn.peer);
    } catch (const CorruptionError &e) {
        ++metrics_.counter("router.bad_requests",
                           "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest, e.what()));
        return;
    }

    std::vector<std::uint32_t> replicas =
        replicasOf(request.predicate);
    // Healthy replicas first; the ones marked down are a last resort
    // (they may have recovered since the probe that marked them).
    std::vector<std::uint32_t> order;
    order.reserve(replicas.size());
    for (std::uint32_t idx : replicas)
        if (backends_[idx].healthy)
            order.push_back(idx);
    for (std::uint32_t idx : replicas)
        if (!backends_[idx].healthy)
            order.push_back(idx);

    std::optional<std::vector<std::uint8_t>> degradedPayload;
    bool first = true;
    for (std::uint32_t idx : order) {
        Backend &backend = backends_[idx];
        if (!first)
            ++metrics_.counter("router.failovers",
                               "replica attempts after a failure");
        first = false;
        ReceivedFrame frame;
        try {
            frame = callBackend(backend, payload);
        } catch (const Error &) {
            continue;
        }
        if (frame.type == FrameType::Error) {
            WireError error;
            try {
                error = decodeError(frame.payload, backend.name);
            } catch (const CorruptionError &) {
                backend.healthy = false;
                continue;
            }
            if (error.code == ErrorCode::BadRequest) {
                // The request itself is at fault; no replica will
                // disagree.  Relay the verdict.
                ++metrics_.counter("router.bad_requests",
                                   "requests failing validation");
                queueFrame(conn, FrameType::Error, frame.payload);
                return;
            }
            continue; // Overloaded/Unavailable/Internal: fail over
        }
        if (frame.type != FrameType::Response) {
            backend.stream.reset();
            backend.healthy = false;
            continue;
        }
        bool degraded = false;
        try {
            WireResponse reply =
                decodeResponse(frame.payload, backend.name);
            degraded = reply.response.degraded;
        } catch (const CorruptionError &) {
            backend.healthy = false;
            continue;
        }
        if (degraded && !degradedPayload) {
            // Hold the degraded answer, hunt for a clean replica.
            ++metrics_.counter(
                "router.degraded_held",
                "degraded replies held pending a clean replica");
            degradedPayload = frame.payload;
            continue;
        }
        if (degraded)
            continue;
        ++metrics_.counter("router.relayed", "responses relayed");
        queueFrame(conn, FrameType::Response, frame.payload);
        return;
    }

    if (degradedPayload) {
        // Every replica is degraded (or down): the degraded answer is
        // still *correct* — host unification scrubbed the candidates —
        // so return it rather than failing the query.
        ++metrics_.counter("router.relayed_degraded",
                           "degraded responses relayed");
        queueFrame(conn, FrameType::Response, *degradedPayload);
        return;
    }
    ++metrics_.counter("router.unavailable",
                       "requests with no replica able to answer");
    queueFrame(conn, FrameType::Error,
               encodeError(ErrorCode::Unavailable,
                           "no replica could answer"));
}

void
Router::probeBackends()
{
    for (Backend &backend : backends_) {
        try {
            if (!backend.stream)
                backend.stream.emplace(backend.port, backend.name,
                                       config_.backendTimeoutMillis);
            ReceivedFrame reply =
                backend.stream->call(FrameType::Health, {});
            bool ok = reply.type == FrameType::HealthReply;
            if (ok && !backend.healthy)
                ++metrics_.counter("router.recovered",
                                   "backends probed back to healthy");
            backend.healthy = ok;
            if (!ok)
                backend.stream.reset();
        } catch (const Error &) {
            backend.stream.reset();
            backend.healthy = false;
        }
        ++metrics_.counter("router.probes", "health probes sent");
    }
    std::uint64_t healthy = 0;
    for (const Backend &backend : backends_)
        healthy += backend.healthy ? 1 : 0;
    metrics_.gauge("router.healthy_backends",
                   "backends currently healthy")
        .set(static_cast<double>(healthy));
}

json::Value
Router::healthJson()
{
    json::Value doc = json::Value::object();
    doc.set("status", "ok");
    doc.set("role", "router");
    doc.set("replication",
            static_cast<std::uint64_t>(config_.replication));
    json::Value list = json::Value::array();
    for (const Backend &backend : backends_) {
        json::Value b = json::Value::object();
        b.set("port", static_cast<std::uint64_t>(backend.port));
        b.set("healthy", backend.healthy);
        list.push(std::move(b));
    }
    doc.set("backends", std::move(list));
    return doc;
}

void
Router::queueFrame(Connection &conn, FrameType type,
                   const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    encodeFrame(type, payload, frame);
    conn.outbound.insert(conn.outbound.end(), frame.begin(),
                         frame.end());
}

bool
Router::writeReady(Connection &conn)
{
    while (conn.outboundAt < conn.outbound.size()) {
        ssize_t n = ::send(conn.fd.get(),
                           conn.outbound.data() + conn.outboundAt,
                           conn.outbound.size() - conn.outboundAt,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outboundAt += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (conn.outboundAt == conn.outbound.size()) {
        conn.outbound.clear();
        conn.outboundAt = 0;
    }
    updateEpoll(conn);
    return true;
}

void
Router::updateEpoll(Connection &conn)
{
    if (conn.outboundAt < conn.outbound.size()) {
        ssize_t n = ::send(conn.fd.get(),
                           conn.outbound.data() + conn.outboundAt,
                           conn.outbound.size() - conn.outboundAt,
                           MSG_NOSIGNAL);
        if (n > 0)
            conn.outboundAt += static_cast<std::size_t>(n);
        if (conn.outboundAt == conn.outbound.size()) {
            conn.outbound.clear();
            conn.outboundAt = 0;
        }
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    if (conn.outboundAt < conn.outbound.size())
        ev.events |= EPOLLOUT;
    ev.data.fd = conn.fd.get();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void
Router::closeConnection(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    ++metrics_.counter("router.closed", "connections closed");
    connections_.erase(it);
}

} // namespace clare::net
