#include "net/router.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace clare::net {

namespace {

/** splitmix64 finalizer (the repo's standard avalanche step). */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
shardHash(const term::PredicateId &pred)
{
    return mix((static_cast<std::uint64_t>(pred.functor) << 32) |
               pred.arity);
}

/**
 * Send a whole frame on a freshly accepted (nonblocking) fd, bounded
 * by @p timeoutMillis.  A bare ::send can take a prefix and leave a
 * torn frame on the wire, which the peer reports as desync instead of
 * the clean typed error the shed path means to deliver; looping (with
 * a short poll on EAGAIN) to completion keeps the frame whole.  The
 * frame is tens of bytes into an empty socket buffer, so the bound is
 * a backstop, not a budget.
 */
void
sendWholeFrame(int fd, const std::vector<std::uint8_t> &frame,
               int timeoutMillis)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMillis);
    std::size_t at = 0;
    while (at < frame.size()) {
        ssize_t n = ::send(fd, frame.data() + at, frame.size() - at,
                           MSG_NOSIGNAL);
        if (n > 0) {
            at += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            Clock::time_point now = Clock::now();
            if (now >= deadline)
                return; // bounded: give up, caller closes the fd
            pollfd p{};
            p.fd = fd;
            p.events = POLLOUT;
            int wait = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count());
            ::poll(&p, 1, wait > 0 ? wait : 1);
            continue;
        }
        return; // hard error: nothing more to salvage
    }
}

} // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      listener_(config_.port)
{
    if (config_.backendPorts.empty())
        throw Error("router needs at least one backend");
    if (config_.replication == 0)
        throw Error("router replication must be at least 1");
    if (config_.replication > config_.backendPorts.size())
        config_.replication =
            static_cast<std::uint32_t>(config_.backendPorts.size());

    for (std::uint16_t port : config_.backendPorts) {
        Backend &backend = backends_.emplace_back();
        backend.port = port;
        backend.name = "backend:" + std::to_string(port);
    }

    if (!config_.catalogPath.empty())
        setCatalog(ShardCatalog::load(config_.catalogPath));

    int efd = ::epoll_create1(0);
    if (efd < 0)
        throw IoError("router", "epoll_create1 failed");
    epollFd_ = OwnedFd(efd);
    int wfd = ::eventfd(0, EFD_NONBLOCK);
    if (wfd < 0)
        throw IoError("router", "eventfd failed");
    wakeFd_ = OwnedFd(wfd);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listener_.fd();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, listener_.fd(), &ev);
    ev.data.fd = wakeFd_.get();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, wakeFd_.get(), &ev);
}

Router::~Router()
{
    stop();
}

void
Router::start()
{
    if (running_.exchange(true))
        return;
    thread_ = std::thread([this] { run(); });
    probeThread_ = std::thread([this] { probeLoop(); });
}

void
Router::stop()
{
    if (running_.exchange(false)) {
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd_.get(), &one, sizeof(one));
        probeCv_.notify_all();
    }
    if (thread_.joinable())
        thread_.join();
    if (probeThread_.joinable())
        probeThread_.join();
    connections_.clear();
    for (Backend &backend : backends_) {
        std::lock_guard<std::mutex> lock(backend.streamMutex);
        backend.stream.reset();
        backend.probeStream.reset();
    }
}

void
Router::setCatalog(ShardCatalog catalog)
{
    catalog.validate(backends_.size());
    auto fresh = std::make_shared<const ShardCatalog>(std::move(catalog));
    std::lock_guard<std::mutex> lock(catalogMutex_);
    catalog_ = std::move(fresh);
}

void
Router::reloadCatalog(const std::string &path)
{
    const std::string &from =
        path.empty() ? config_.catalogPath : path;
    if (from.empty())
        throw Error("router has no catalog path to reload from");
    setCatalog(ShardCatalog::load(from));
    ++metrics_.counter("router.catalog_reloads",
                       "catalog reloads applied");
}

std::shared_ptr<const ShardCatalog>
Router::catalog() const
{
    std::lock_guard<std::mutex> lock(catalogMutex_);
    return catalog_;
}

std::vector<std::uint32_t>
Router::replicasOf(const term::PredicateId &pred) const
{
    std::shared_ptr<const ShardCatalog> cat = catalog();
    if (cat) {
        const std::vector<std::uint32_t> *replicas = cat->replicasOf(pred);
        if (replicas == nullptr)
            return {}; // not in the catalog: no replica can serve it
        return *replicas;
    }
    std::uint64_t base = shardHash(pred);
    std::size_t n = backends_.size();
    std::vector<std::uint32_t> replicas;
    replicas.reserve(config_.replication);
    for (std::uint32_t i = 0; i < config_.replication; ++i)
        replicas.push_back(
            static_cast<std::uint32_t>((base + i) % n));
    return replicas;
}

void
Router::run()
{
    epoll_event events[64];
    while (running_.load()) {
        int n = ::epoll_wait(epollFd_.get(), events, 64, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_.get()) {
                std::uint64_t drained;
                [[maybe_unused]] ssize_t rd =
                    ::read(wakeFd_.get(), &drained, sizeof(drained));
                continue;
            }
            if (fd == listener_.fd()) {
                acceptPending();
                continue;
            }
            auto it = connections_.find(fd);
            if (it == connections_.end())
                continue;
            bool alive = true;
            if (events[i].events & (EPOLLHUP | EPOLLERR))
                alive = false;
            if (alive && (events[i].events & EPOLLIN))
                alive = readReady(it->second);
            if (alive && (events[i].events & EPOLLOUT))
                alive = writeReady(it->second);
            if (!alive)
                closeConnection(fd);
        }
    }
}

void
Router::probeLoop()
{
    // Probes live on this thread, with their own connections: a dead
    // or hung backend makes *this* thread wait out the timeout while
    // the event loop keeps relaying for every healthy backend.
    std::unique_lock<std::mutex> lock(probeMutex_);
    while (running_.load()) {
        probeCv_.wait_for(
            lock,
            std::chrono::milliseconds(config_.probeIntervalMillis),
            [this] { return !running_.load(); });
        if (!running_.load())
            break;
        lock.unlock();
        probeBackends();
        lock.lock();
    }
}

void
Router::acceptPending()
{
    for (;;) {
        OwnedFd fd = listener_.accept();
        if (!fd.valid())
            return;
        if (connections_.size() >= config_.maxConnections) {
            ++metrics_.counter("router.shed",
                               "requests/connections shed");
            std::vector<std::uint8_t> frame;
            encodeFrame(FrameType::Error,
                        encodeError(ErrorCode::Overloaded,
                                    "connection limit reached"),
                        frame);
            sendWholeFrame(fd.get(), frame, 100);
            continue;
        }
        ++metrics_.counter("router.accepted", "connections accepted");
        int raw = fd.get();
        Connection conn;
        conn.peer = "client:" + std::to_string(raw);
        conn.fd = std::move(fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = raw;
        ::epoll_ctl(epollFd_.get(), EPOLL_CTL_ADD, raw, &ev);
        connections_.emplace(raw, std::move(conn));
    }
}

bool
Router::readReady(Connection &conn)
{
    for (;;) {
        std::size_t have = conn.inbound.size();
        if (have < conn.needed) {
            std::uint8_t buf[4096];
            std::size_t want =
                std::min(conn.needed - have, sizeof(buf));
            ssize_t n = ::recv(conn.fd.get(), buf, want, 0);
            if (n == 0)
                return false;
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true;
                if (errno == EINTR)
                    continue;
                return false;
            }
            conn.inbound.insert(conn.inbound.end(), buf, buf + n);
            if (conn.inbound.size() < conn.needed)
                continue;
        }
        if (conn.readingHeader) {
            try {
                conn.header =
                    decodeFrameHeader(conn.inbound.data(), conn.peer);
            } catch (const CorruptionError &) {
                ++metrics_.counter("router.bad_frames",
                                   "client frames failing validation");
                return false;
            }
            conn.readingHeader = false;
            conn.needed = conn.header.payloadBytes;
            conn.inbound.clear();
            if (conn.needed > 0)
                continue;
        }
        std::vector<std::uint8_t> payload = std::move(conn.inbound);
        conn.inbound = {};
        conn.readingHeader = true;
        conn.needed = kFrameHeaderBytes;
        try {
            verifyFramePayload(conn.header, payload.data(),
                               payload.size(), conn.peer);
        } catch (const CorruptionError &) {
            ++metrics_.counter("router.bad_frames",
                               "client frames failing validation");
            return false;
        }
        if (!dispatchFrame(conn, std::move(payload)))
            return false;
    }
}

bool
Router::dispatchFrame(Connection &conn,
                      std::vector<std::uint8_t> payload)
{
    switch (conn.header.type) {
      case FrameType::Request:
        relayRequest(conn, payload);
        break;
      case FrameType::BatchRequest:
        relayBatch(conn, payload);
        break;
      case FrameType::Health: {
        std::string body = healthJson().dump();
        queueFrame(conn, FrameType::HealthReply,
                   std::vector<std::uint8_t>(body.begin(),
                                             body.end()));
        break;
      }
      case FrameType::Response:
      case FrameType::Error:
      case FrameType::HealthReply:
      case FrameType::BatchResponse:
        ++metrics_.counter("router.bad_frames",
                           "client frames failing validation");
        return false;
    }
    updateEpoll(conn);
    return true;
}

ReceivedFrame
Router::callBackend(Backend &backend, FrameType type,
                    const std::vector<std::uint8_t> &payload)
{
    // Concurrent sub-batches of one client batch may target the same
    // backend; the stream is one framed connection, so calls must not
    // interleave.
    std::lock_guard<std::mutex> lock(backend.streamMutex);
    try {
        if (!backend.stream)
            backend.stream.emplace(backend.port, backend.name,
                                   config_.backendTimeoutMillis);
        return backend.stream->call(type, payload);
    } catch (const Error &) {
        // Transport fault or damaged frame: the stream is unusable
        // and the backend suspect until a probe clears it.
        backend.stream.reset();
        backend.healthy.store(false);
        throw;
    }
}

Router::GroupOutcome
Router::relayToReplicas(const std::vector<std::uint32_t> &replicas,
                        const std::vector<std::vector<std::uint8_t>> &items)
{
    // A single item travels as a plain Request so the reply payload
    // is byte-for-byte what a non-batched relay would have carried.
    const bool batch = items.size() != 1;
    const std::vector<std::uint8_t> payload =
        batch ? encodeBatchItems(items) : items[0];
    const FrameType sendType =
        batch ? FrameType::BatchRequest : FrameType::Request;
    const FrameType wantType =
        batch ? FrameType::BatchResponse : FrameType::Response;

    // Healthy replicas first; the ones marked down are a last resort
    // (they may have recovered since the probe that marked them).
    std::vector<std::uint32_t> order;
    order.reserve(replicas.size());
    for (std::uint32_t idx : replicas)
        if (backends_[idx].healthy.load())
            order.push_back(idx);
    for (std::uint32_t idx : replicas)
        if (!backends_[idx].healthy.load())
            order.push_back(idx);

    GroupOutcome outcome;
    std::optional<std::vector<std::vector<std::uint8_t>>> degradedItems;
    // Why the walk moved past the previous replica: a *failure* is a
    // failover, a held degraded reply is a hunt for a clean replica —
    // the counters keep the two apart.
    enum class Advance { First, AfterFailure, AfterDegradedHold };
    Advance advance = Advance::First;
    for (std::uint32_t idx : order) {
        Backend &backend = backends_[idx];
        if (advance == Advance::AfterFailure)
            ++metrics_.counter("router.failovers",
                               "replica attempts after a failure");
        else if (advance == Advance::AfterDegradedHold)
            ++metrics_.counter(
                "router.degraded_retries",
                "replica attempts after a held degraded reply");
        advance = Advance::AfterFailure;
        ReceivedFrame frame;
        try {
            frame = callBackend(backend, sendType, payload);
        } catch (const Error &) {
            continue;
        }
        if (frame.type == FrameType::Error) {
            WireError error;
            try {
                error = decodeError(frame.payload, backend.name);
            } catch (const CorruptionError &) {
                backend.healthy.store(false);
                continue;
            }
            if (error.code == ErrorCode::BadRequest) {
                // The request itself is at fault; no replica will
                // disagree.  Relay the verdict.
                outcome.kind = GroupOutcome::Kind::BadRequest;
                outcome.errorPayload = std::move(frame.payload);
                return outcome;
            }
            continue; // Overloaded/Unavailable/Internal: fail over
        }
        if (frame.type != wantType) {
            std::lock_guard<std::mutex> lock(backend.streamMutex);
            backend.stream.reset();
            backend.healthy.store(false);
            continue;
        }
        std::vector<std::vector<std::uint8_t>> replyItems;
        bool degraded = false;
        try {
            if (batch) {
                replyItems = decodeBatchItems(frame.payload,
                                              backend.name);
                if (replyItems.size() != items.size())
                    throw CorruptionError(
                        backend.name, kNoFilePosition, 0,
                        "sub-batch reply has " +
                            std::to_string(replyItems.size()) +
                            " items, request had " +
                            std::to_string(items.size()));
            } else {
                replyItems.push_back(std::move(frame.payload));
            }
            for (const std::vector<std::uint8_t> &item : replyItems) {
                WireResponse reply = decodeResponse(item, backend.name);
                degraded = degraded || reply.response.degraded;
            }
        } catch (const CorruptionError &) {
            backend.healthy.store(false);
            continue;
        }
        if (degraded) {
            if (!degradedItems) {
                // Hold the degraded answer, hunt for a clean replica.
                ++metrics_.counter(
                    "router.degraded_held",
                    "degraded replies held pending a clean replica");
                degradedItems = std::move(replyItems);
            }
            advance = Advance::AfterDegradedHold;
            continue;
        }
        outcome.kind = GroupOutcome::Kind::Relayed;
        outcome.items = std::move(replyItems);
        return outcome;
    }

    if (degradedItems) {
        // Every replica is degraded (or down): the degraded answer is
        // still *correct* — host unification scrubbed the candidates —
        // so return it rather than failing the query.
        ++metrics_.counter("router.relayed_degraded",
                           "degraded responses relayed");
        outcome.kind = GroupOutcome::Kind::Relayed;
        outcome.items = std::move(*degradedItems);
        return outcome;
    }
    outcome.kind = GroupOutcome::Kind::Unavailable;
    return outcome;
}

void
Router::relayRequest(Connection &conn,
                     const std::vector<std::uint8_t> &payload)
{
    ++metrics_.counter("router.requests", "requests received");

    if (conn.outbound.size() - conn.outboundAt >
        config_.maxOutboundBytes) {
        ++metrics_.counter("router.shed",
                           "requests/connections shed");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Overloaded,
                               "outbound backlog limit reached"));
        return;
    }

    WireRequest request;
    try {
        // Only the predicate field matters here; the goal bytes stay
        // opaque and travel to the backend verbatim.
        request = decodeRequest(payload, conn.peer);
    } catch (const CorruptionError &e) {
        ++metrics_.counter("router.bad_requests",
                           "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest, e.what()));
        return;
    }

    GroupOutcome outcome =
        relayToReplicas(replicasOf(request.predicate), {payload});
    switch (outcome.kind) {
      case GroupOutcome::Kind::BadRequest:
        ++metrics_.counter("router.bad_requests",
                           "requests failing validation");
        queueFrame(conn, FrameType::Error, outcome.errorPayload);
        return;
      case GroupOutcome::Kind::Relayed:
        ++metrics_.counter("router.relayed", "responses relayed");
        queueFrame(conn, FrameType::Response, outcome.items[0]);
        return;
      case GroupOutcome::Kind::Unavailable:
        break;
    }
    ++metrics_.counter("router.unavailable",
                       "requests with no replica able to answer");
    queueFrame(conn, FrameType::Error,
               encodeError(ErrorCode::Unavailable,
                           "no replica could answer"));
}

void
Router::relayBatch(Connection &conn,
                   const std::vector<std::uint8_t> &payload)
{
    ++metrics_.counter("router.batches", "batch requests received");

    if (conn.outbound.size() - conn.outboundAt >
        config_.maxOutboundBytes) {
        ++metrics_.counter("router.shed",
                           "requests/connections shed");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::Overloaded,
                               "outbound backlog limit reached"));
        return;
    }

    std::vector<std::vector<std::uint8_t>> items;
    try {
        items = decodeBatchItems(payload, conn.peer);
    } catch (const CorruptionError &e) {
        ++metrics_.counter("router.bad_requests",
                           "requests failing validation");
        queueFrame(conn, FrameType::Error,
                   encodeError(ErrorCode::BadRequest, e.what()));
        return;
    }
    if (items.empty()) {
        queueFrame(conn, FrameType::BatchResponse,
                   encodeBatchItems({}));
        return;
    }
    metrics_
        .counter("router.batch_items", "batch items received")
        .add(items.size());

    // Scatter: group items by replica set, preserving batch order
    // within each group (the merge rebuilds the original order from
    // the group's index list).
    struct Group
    {
        std::vector<std::uint32_t> replicas;
        std::vector<std::size_t> itemIndex;
    };
    std::map<std::vector<std::uint32_t>, std::size_t> groupOf;
    std::vector<Group> groups;
    for (std::size_t i = 0; i < items.size(); ++i) {
        WireRequest request;
        try {
            request = decodeRequest(items[i], conn.peer);
        } catch (const CorruptionError &e) {
            ++metrics_.counter("router.bad_requests",
                               "requests failing validation");
            queueFrame(conn, FrameType::Error,
                       encodeError(ErrorCode::BadRequest, e.what()));
            return;
        }
        std::vector<std::uint32_t> replicas =
            replicasOf(request.predicate);
        auto [it, fresh] =
            groupOf.try_emplace(replicas, groups.size());
        if (fresh)
            groups.push_back(Group{std::move(replicas), {}});
        groups[it->second].itemIndex.push_back(i);
    }

    // Issue the per-shard sub-batches concurrently; each fan-out task
    // runs the same replica walk a single request does (the backend
    // streams are mutex-guarded, so two shards sharing a backend
    // serialize on its connection instead of interleaving frames).
    metrics_
        .counter("router.subbatches", "per-shard sub-batches issued")
        .add(groups.size());
    std::vector<std::future<GroupOutcome>> futures;
    futures.reserve(groups.size());
    for (const Group &group : groups)
        futures.push_back(std::async(
            std::launch::async, [this, &group, &items] {
                std::vector<std::vector<std::uint8_t>> sub;
                sub.reserve(group.itemIndex.size());
                for (std::size_t i : group.itemIndex)
                    sub.push_back(items[i]);
                return relayToReplicas(group.replicas, sub);
            }));
    std::vector<GroupOutcome> outcomes;
    outcomes.reserve(groups.size());
    for (std::future<GroupOutcome> &f : futures)
        outcomes.push_back(f.get());

    // Gather: any sub-batch verdict of BadRequest or Unavailable
    // fails the whole batch (a batch is one unit of work; partial
    // answers would silently drop items).
    for (const GroupOutcome &outcome : outcomes) {
        if (outcome.kind == GroupOutcome::Kind::BadRequest) {
            ++metrics_.counter("router.bad_requests",
                               "requests failing validation");
            queueFrame(conn, FrameType::Error, outcome.errorPayload);
            return;
        }
    }
    for (const GroupOutcome &outcome : outcomes) {
        if (outcome.kind == GroupOutcome::Kind::Unavailable) {
            ++metrics_.counter(
                "router.unavailable",
                "requests with no replica able to answer");
            queueFrame(conn, FrameType::Error,
                       encodeError(ErrorCode::Unavailable,
                                   "no replica could answer a "
                                   "sub-batch"));
            return;
        }
    }

    // Merge in original batch order: item payloads travel back
    // verbatim, so the client decodes exactly the bytes the owning
    // backend's serveBatch() produced.
    std::vector<std::vector<std::uint8_t>> merged(items.size());
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (std::size_t k = 0; k < groups[g].itemIndex.size(); ++k)
            merged[groups[g].itemIndex[k]] =
                std::move(outcomes[g].items[k]);
    ++metrics_.counter("router.relayed", "responses relayed");
    queueFrame(conn, FrameType::BatchResponse,
               encodeBatchItems(merged));
}

void
Router::probeBackends()
{
    for (Backend &backend : backends_) {
        // The probe stream is this thread's own connection; sharing
        // the relay stream would serialize probes behind live traffic
        // (and vice versa) and reintroduce the stall this thread
        // exists to prevent.
        try {
            if (!backend.probeStream)
                backend.probeStream.emplace(
                    backend.port, backend.name + ":probe",
                    config_.backendTimeoutMillis);
            ReceivedFrame reply =
                backend.probeStream->call(FrameType::Health, {});
            bool ok = reply.type == FrameType::HealthReply;
            if (ok && !backend.healthy.load())
                ++metrics_.counter("router.recovered",
                                   "backends probed back to healthy");
            backend.healthy.store(ok);
            if (!ok)
                backend.probeStream.reset();
        } catch (const Error &) {
            backend.probeStream.reset();
            backend.healthy.store(false);
        }
        ++metrics_.counter("router.probes", "health probes sent");
    }
    std::uint64_t healthy = 0;
    for (const Backend &backend : backends_)
        healthy += backend.healthy.load() ? 1 : 0;
    metrics_.gauge("router.healthy_backends",
                   "backends currently healthy")
        .set(static_cast<double>(healthy));
}

json::Value
Router::healthJson()
{
    json::Value doc = json::Value::object();
    doc.set("status", "ok");
    doc.set("role", "router");
    doc.set("replication",
            static_cast<std::uint64_t>(config_.replication));
    json::Value list = json::Value::array();
    for (const Backend &backend : backends_) {
        json::Value b = json::Value::object();
        b.set("port", static_cast<std::uint64_t>(backend.port));
        b.set("healthy", backend.healthy.load());
        list.push(std::move(b));
    }
    doc.set("backends", std::move(list));
    // The admin channel serves the live placement: with a catalog
    // loaded, operators read predicate → shard → replica assignments
    // from the same document that reports backend health.
    std::shared_ptr<const ShardCatalog> cat = catalog();
    doc.set("routing", cat ? "catalog" : "hash");
    if (cat)
        doc.set("catalog", cat->toJson());
    return doc;
}

void
Router::queueFrame(Connection &conn, FrameType type,
                   const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> frame;
    encodeFrame(type, payload, frame);
    conn.outbound.insert(conn.outbound.end(), frame.begin(),
                         frame.end());
}

bool
Router::writeReady(Connection &conn)
{
    while (conn.outboundAt < conn.outbound.size()) {
        ssize_t n = ::send(conn.fd.get(),
                           conn.outbound.data() + conn.outboundAt,
                           conn.outbound.size() - conn.outboundAt,
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.outboundAt += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (conn.outboundAt == conn.outbound.size()) {
        conn.outbound.clear();
        conn.outboundAt = 0;
    }
    updateEpoll(conn);
    return true;
}

void
Router::updateEpoll(Connection &conn)
{
    if (conn.outboundAt < conn.outbound.size()) {
        ssize_t n = ::send(conn.fd.get(),
                           conn.outbound.data() + conn.outboundAt,
                           conn.outbound.size() - conn.outboundAt,
                           MSG_NOSIGNAL);
        if (n > 0)
            conn.outboundAt += static_cast<std::size_t>(n);
        if (conn.outboundAt == conn.outbound.size()) {
            conn.outbound.clear();
            conn.outboundAt = 0;
        }
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    if (conn.outboundAt < conn.outbound.size())
        ev.events |= EPOLLOUT;
    ev.data.fd = conn.fd.get();
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

void
Router::closeConnection(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    ::epoll_ctl(epollFd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    ++metrics_.counter("router.closed", "connections closed");
    connections_.erase(it);
}

} // namespace clare::net
