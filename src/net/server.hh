/**
 * @file
 * NetServer: the network front door of one Clause Retrieval Server.
 *
 * Wraps a crs::ClauseRetrievalServer behind the framed wire protocol:
 * an epoll event loop (own thread, started by start()) accepts
 * loopback connections, runs a per-connection state machine (read
 * header → read payload → dispatch → queue reply), and serves each
 * decoded Request through the wrapped server's serve() — the same
 * single authoritative code path local callers use, so a response over
 * the wire is bit-identical (answers *and* modeled StageBreakdown
 * ticks) to a local serve() of the same goal.  A BatchRequest goes
 * through serveBatch() the same way: every item is validated first
 * (a batch is one unit — any invalid item fails the frame with a
 * typed BadRequest), then the whole sub-batch runs the local batch
 * front door and the item responses travel back in request order.
 *
 * Admission control:
 *   - at most maxConnections concurrent connections; excess accepts
 *     are answered Error(Overloaded) and closed
 *   - a connection whose outbound buffer exceeds maxOutboundBytes is
 *     shed (Error(Overloaded)) instead of served — a reader that
 *     stops draining cannot pin server memory
 *   - oversized/damaged frames close the connection (framing cannot
 *     resynchronize); the failure is counted, never a crash
 *
 * Wire fault injection: a FaultInjector with frame rates set poisons
 * *outbound* frames, keyed by a server-wide frame sequence number
 * (site "wire.conn") that survives reconnects — keying per connection
 * would replay the identical fault on every retry of a dropped first
 * frame, wedging deterministic clients forever.  A seed still replays
 * the same fault schedule regardless of timing: Drop and Truncate close the connection, Corrupt flips one
 * bit after the CRC was computed (the receiver's CRC check must catch
 * it), Delay stalls delivery.  This is how the tests prove the client
 * and router survive a hostile wire.
 *
 * Everything observable lands in the wrapped server's MetricsRegistry
 * under net.* (accepted, served, shed, bad frames, faults injected by
 * class), next to the crs.* counters the pipeline already keeps.
 */

#ifndef CLARE_NET_SERVER_HH
#define CLARE_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "crs/server.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "support/fault_injector.hh"

namespace clare::net {

/** NetServer knobs. */
struct NetServerConfig
{
    /** Listen port; 0 picks an ephemeral port (read it via port()). */
    std::uint16_t port = 0;

    /** Concurrent-connection admission bound. */
    std::uint32_t maxConnections = 64;

    /**
     * Outbound-buffer bound per connection; requests arriving while
     * the peer is this far behind are shed, not served.
     */
    std::uint32_t maxOutboundBytes = 4u << 20;

    /**
     * Wire fault oracle (not owned; null = ideal wire).  Only the
     * frame* rates apply here — disk rates belong to the CRS config.
     */
    const support::FaultInjector *wireFaults = nullptr;
};

/** The epoll front door wrapping one ClauseRetrievalServer. */
class NetServer
{
  public:
    /**
     * @param symbols the store's symbol table (shared protocol schema;
     *        non-const: decoded goals intern synthetic variable names)
     * @param store   the predicate store @p server serves (validates
     *        requested predicates before dispatch)
     *
     * Binds immediately (so port() is valid before start()) but
     * serves nothing until start().
     *
     * @throws IoError when the port cannot be bound
     */
    NetServer(term::SymbolTable &symbols,
              const crs::PredicateStore &store,
              crs::ClauseRetrievalServer &server,
              NetServerConfig config = {});
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /** The bound port (ephemeral when config.port was 0). */
    std::uint16_t port() const { return listener_.port(); }

    /** Spawn the event-loop thread.  Idempotent. */
    void start();

    /** Stop the loop, join the thread, close every connection. */
    void stop();

  private:
    struct Connection
    {
        OwnedFd fd;
        std::string peer;
        /** Read state: header bytes, then payload bytes. */
        std::vector<std::uint8_t> inbound;
        std::size_t needed = kFrameHeaderBytes;
        bool readingHeader = true;
        FrameHeader header;
        /** Encoded frames not yet accepted by the kernel. */
        std::vector<std::uint8_t> outbound;
        std::size_t outboundAt = 0;
        bool closing = false; ///< close once outbound drains
    };

    void run();
    void acceptPending();
    bool readReady(Connection &conn);   ///< false = close connection
    bool writeReady(Connection &conn);  ///< false = close connection
    bool dispatchFrame(Connection &conn,
                       std::vector<std::uint8_t> payload);
    void serveRequest(Connection &conn,
                      const std::vector<std::uint8_t> &payload);
    void serveBatchRequest(Connection &conn,
                           const std::vector<std::uint8_t> &payload);
    json::Value healthJson() const;

    /**
     * Frame a payload onto the connection's outbound buffer, applying
     * the wire fault oracle.  Returns false when the fault (Drop /
     * Truncate) requires the connection to be closed.
     */
    bool queueFrame(Connection &conn, FrameType type,
                    const std::vector<std::uint8_t> &payload);
    void updateEpoll(Connection &conn);
    void closeConnection(int fd);

    term::SymbolTable &symbols_;
    const crs::PredicateStore &store_;
    crs::ClauseRetrievalServer &server_;
    NetServerConfig config_;
    Listener listener_;
    OwnedFd epollFd_;
    OwnedFd wakeFd_;
    std::map<int, Connection> connections_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::uint64_t served_ = 0;
    /** Server-wide outbound frame sequence number (wire fault key). */
    std::uint64_t framesSent_ = 0;
};

} // namespace clare::net

#endif // CLARE_NET_SERVER_HH
