#include "net/wire.hh"

#include <cstring>

namespace clare::net {

namespace {

// -- Little-endian primitive writers/readers over a byte vector. -----

void
putU8(std::uint8_t v, std::vector<std::uint8_t> &out)
{
    out.push_back(v);
}

void
putU32(std::uint32_t v, std::vector<std::uint8_t> &out)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::uint64_t v, std::vector<std::uint8_t> &out)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Open a TLV field: tag byte plus a length slot patched on close. */
std::size_t
openField(std::uint8_t tag, std::vector<std::uint8_t> &out)
{
    putU8(tag, out);
    std::size_t at = out.size();
    putU32(0, out);
    return at;
}

void
closeField(std::size_t at, std::vector<std::uint8_t> &out)
{
    std::uint32_t len = static_cast<std::uint32_t>(out.size() - at - 4);
    for (int i = 0; i < 4; ++i)
        out[at + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

/** One TLV field's bytes, as handed to a decoder. */
struct Field
{
    std::uint8_t tag = 0;
    const std::uint8_t *data = nullptr;
    std::uint32_t size = 0;
};

/**
 * Cursor over a TLV payload.  Structural damage (a field overrunning
 * the payload) raises CorruptionError; unknown tags are the *caller's*
 * choice to skip, which every decoder here does.
 */
struct FieldReader
{
    const std::vector<std::uint8_t> &payload;
    const std::string &peer;
    const char *what; // "request" | "response" | "error"
    std::size_t offset = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw CorruptionError(peer, kNoFilePosition, offset,
                              std::string("wire ") + what + ": " + why);
    }

    bool
    next(Field &field)
    {
        if (offset == payload.size())
            return false;
        if (payload.size() - offset < 5)
            fail("truncated field header");
        field.tag = payload[offset];
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i)
            len |= static_cast<std::uint32_t>(payload[offset + 1 + i])
                << (8 * i);
        if (payload.size() - offset - 5 < len)
            fail("field of " + std::to_string(len) +
                 " bytes overruns the payload");
        field.data = payload.data() + offset + 5;
        field.size = len;
        offset += 5 + static_cast<std::size_t>(len);
        return true;
    }
};

/** Cursor over one field's bytes; underrun is structural damage. */
struct ByteReader
{
    const Field &field;
    FieldReader &reader;
    std::size_t at = 0;

    std::uint8_t
    u8()
    {
        if (field.size - at < 1)
            reader.fail("field " + std::to_string(field.tag) +
                        " too short");
        return field.data[at++];
    }

    std::uint32_t
    u32()
    {
        if (field.size - at < 4)
            reader.fail("field " + std::to_string(field.tag) +
                        " too short");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(field.data[at + i])
                << (8 * i);
        at += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        std::uint64_t hi = u32();
        return lo | (hi << 32);
    }
};

// Request field tags.
constexpr std::uint8_t kReqId = 1;
constexpr std::uint8_t kReqPredicate = 2;
constexpr std::uint8_t kReqGoal = 3;
constexpr std::uint8_t kReqMode = 4;
constexpr std::uint8_t kReqBypassCache = 5;

// Response field tags.
constexpr std::uint8_t kRspId = 1;
constexpr std::uint8_t kRspMode = 2;
constexpr std::uint8_t kRspCandidates = 3;
constexpr std::uint8_t kRspAnswers = 4;
constexpr std::uint8_t kRspScanStats = 5;
constexpr std::uint8_t kRspFilterOps = 6;
constexpr std::uint8_t kRspBreakdown = 7;
constexpr std::uint8_t kRspElapsed = 8;
constexpr std::uint8_t kRspFlags = 9;
constexpr std::uint8_t kRspCorruptPages = 10;
constexpr std::uint8_t kRspRequeued = 11;

constexpr std::uint8_t kFlagDegraded = 1u << 0;
constexpr std::uint8_t kFlagResultOverflow = 1u << 1;

void
putOrdinals(std::uint8_t tag, const std::vector<std::uint32_t> &ords,
            std::vector<std::uint8_t> &out)
{
    std::size_t at = openField(tag, out);
    putU32(static_cast<std::uint32_t>(ords.size()), out);
    for (std::uint32_t o : ords)
        putU32(o, out);
    closeField(at, out);
}

std::vector<std::uint32_t>
getOrdinals(const Field &field, FieldReader &reader)
{
    ByteReader bytes{field, reader};
    std::uint32_t count = bytes.u32();
    if ((field.size - 4) / 4 < count)
        reader.fail("ordinal array count " + std::to_string(count) +
                    " overruns its field");
    std::vector<std::uint32_t> ords;
    ords.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        ords.push_back(bytes.u32());
    return ords;
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Overloaded: return "overloaded";
      case ErrorCode::Unavailable: return "unavailable";
      case ErrorCode::BadRequest: return "bad-request";
      case ErrorCode::Internal: return "internal";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeRequest(const WireRequest &request)
{
    std::vector<std::uint8_t> out;
    std::size_t at = openField(kReqId, out);
    putU64(request.id, out);
    closeField(at, out);

    at = openField(kReqPredicate, out);
    putU32(request.predicate.functor, out);
    putU32(request.predicate.arity, out);
    closeField(at, out);

    at = openField(kReqGoal, out);
    out.insert(out.end(), request.goalPif.begin(),
               request.goalPif.end());
    closeField(at, out);

    if (request.mode) {
        at = openField(kReqMode, out);
        putU8(static_cast<std::uint8_t>(*request.mode), out);
        closeField(at, out);
    }
    if (request.bypassCache) {
        at = openField(kReqBypassCache, out);
        putU8(1, out);
        closeField(at, out);
    }
    return out;
}

WireRequest
decodeRequest(const std::vector<std::uint8_t> &payload,
              const std::string &peer)
{
    WireRequest request;
    FieldReader reader{payload, peer, "request"};
    bool sawId = false, sawPredicate = false, sawGoal = false;
    Field field;
    while (reader.next(field)) {
        ByteReader bytes{field, reader};
        switch (field.tag) {
          case kReqId:
            request.id = bytes.u64();
            sawId = true;
            break;
          case kReqPredicate:
            request.predicate.functor = bytes.u32();
            request.predicate.arity = bytes.u32();
            sawPredicate = true;
            break;
          case kReqGoal:
            request.goalPif.assign(field.data, field.data + field.size);
            sawGoal = true;
            break;
          case kReqMode: {
            std::uint8_t m = bytes.u8();
            if (m > static_cast<std::uint8_t>(crs::SearchMode::TwoStage))
                reader.fail("search mode byte " + std::to_string(m) +
                            " out of range");
            request.mode = static_cast<crs::SearchMode>(m);
            break;
          }
          case kReqBypassCache:
            request.bypassCache = bytes.u8() != 0;
            break;
          default:
            break; // unknown tag: skip for forward compatibility
        }
    }
    if (!sawId || !sawPredicate || !sawGoal)
        reader.fail("missing a required field (id/predicate/goal)");
    return request;
}

std::vector<std::uint8_t>
encodeResponse(std::uint64_t request_id, const crs::RetrievalResponse &r)
{
    std::vector<std::uint8_t> out;
    std::size_t at = openField(kRspId, out);
    putU64(request_id, out);
    closeField(at, out);

    at = openField(kRspMode, out);
    putU8(static_cast<std::uint8_t>(r.mode), out);
    closeField(at, out);

    putOrdinals(kRspCandidates, r.candidates, out);
    putOrdinals(kRspAnswers, r.answers, out);

    at = openField(kRspScanStats, out);
    putU64(r.indexEntriesScanned, out);
    putU64(r.fs1Hits, out);
    putU64(r.clausesExamined, out);
    closeField(at, out);

    at = openField(kRspFilterOps, out);
    putU32(static_cast<std::uint32_t>(r.filterOps.size()), out);
    for (std::uint64_t c : r.filterOps)
        putU64(c, out);
    closeField(at, out);

    at = openField(kRspBreakdown, out);
    putU64(r.breakdown.queueWait, out);
    putU64(r.breakdown.cacheTime, out);
    putU64(r.breakdown.indexTime, out);
    putU64(r.breakdown.filterTime, out);
    putU64(r.breakdown.hostUnifyTime, out);
    closeField(at, out);

    at = openField(kRspElapsed, out);
    putU64(r.elapsed, out);
    closeField(at, out);

    std::uint8_t flags = 0;
    if (r.degraded)
        flags |= kFlagDegraded;
    if (r.resultOverflow)
        flags |= kFlagResultOverflow;
    at = openField(kRspFlags, out);
    putU8(flags, out);
    closeField(at, out);

    if (r.corruptIndexPages != 0) {
        at = openField(kRspCorruptPages, out);
        putU32(r.corruptIndexPages, out);
        closeField(at, out);
    }
    if (r.satisfiersRequeued != 0) {
        at = openField(kRspRequeued, out);
        putU32(r.satisfiersRequeued, out);
        closeField(at, out);
    }
    return out;
}

WireResponse
decodeResponse(const std::vector<std::uint8_t> &payload,
               const std::string &peer)
{
    WireResponse wire;
    crs::RetrievalResponse &r = wire.response;
    FieldReader reader{payload, peer, "response"};
    bool sawId = false, sawMode = false;
    Field field;
    while (reader.next(field)) {
        ByteReader bytes{field, reader};
        switch (field.tag) {
          case kRspId:
            wire.id = bytes.u64();
            sawId = true;
            break;
          case kRspMode: {
            std::uint8_t m = bytes.u8();
            if (m > static_cast<std::uint8_t>(crs::SearchMode::TwoStage))
                reader.fail("search mode byte " + std::to_string(m) +
                            " out of range");
            r.mode = static_cast<crs::SearchMode>(m);
            sawMode = true;
            break;
          }
          case kRspCandidates:
            r.candidates = getOrdinals(field, reader);
            break;
          case kRspAnswers:
            r.answers = getOrdinals(field, reader);
            break;
          case kRspScanStats:
            r.indexEntriesScanned = bytes.u64();
            r.fs1Hits = bytes.u64();
            r.clausesExamined = bytes.u64();
            break;
          case kRspFilterOps: {
            std::uint32_t count = bytes.u32();
            // More ops than we know is a newer peer: read ours, skip
            // the rest.  Fewer is fine too — missing ops stay zero.
            if ((field.size - 4) / 8 < count)
                reader.fail("filter op count " + std::to_string(count) +
                            " overruns its field");
            for (std::uint32_t i = 0; i < count; ++i) {
                std::uint64_t c = bytes.u64();
                if (i < r.filterOps.size())
                    r.filterOps[i] = c;
            }
            break;
          }
          case kRspBreakdown:
            r.breakdown.queueWait = bytes.u64();
            r.breakdown.cacheTime = bytes.u64();
            r.breakdown.indexTime = bytes.u64();
            r.breakdown.filterTime = bytes.u64();
            r.breakdown.hostUnifyTime = bytes.u64();
            break;
          case kRspElapsed:
            r.elapsed = bytes.u64();
            break;
          case kRspFlags: {
            std::uint8_t flags = bytes.u8();
            r.degraded = (flags & kFlagDegraded) != 0;
            r.resultOverflow = (flags & kFlagResultOverflow) != 0;
            break;
          }
          case kRspCorruptPages:
            r.corruptIndexPages = bytes.u32();
            break;
          case kRspRequeued:
            r.satisfiersRequeued = bytes.u32();
            break;
          default:
            break; // unknown tag: skip for forward compatibility
        }
    }
    if (!sawId || !sawMode)
        reader.fail("missing a required field (id/mode)");
    return wire;
}

std::vector<std::uint8_t>
encodeError(ErrorCode code, const std::string &message)
{
    std::vector<std::uint8_t> out;
    out.reserve(1 + message.size());
    out.push_back(static_cast<std::uint8_t>(code));
    for (char c : message)
        out.push_back(static_cast<std::uint8_t>(c));
    return out;
}

WireError
decodeError(const std::vector<std::uint8_t> &payload,
            const std::string &peer)
{
    if (payload.empty())
        throw CorruptionError(peer, kNoFilePosition, 0,
                              "wire error: empty payload");
    std::uint8_t code = payload[0];
    if (code < static_cast<std::uint8_t>(ErrorCode::Overloaded) ||
        code > static_cast<std::uint8_t>(ErrorCode::Internal))
        throw CorruptionError(peer, kNoFilePosition, 0,
                              "wire error: unknown code " +
                                  std::to_string(code));
    WireError error;
    error.code = static_cast<ErrorCode>(code);
    error.message.assign(payload.begin() + 1, payload.end());
    return error;
}

std::vector<std::uint8_t>
encodeBatchItems(const std::vector<std::vector<std::uint8_t>> &items)
{
    std::size_t total = 4;
    for (const std::vector<std::uint8_t> &item : items)
        total += 4 + item.size();
    std::vector<std::uint8_t> out;
    out.reserve(total);
    putU32(static_cast<std::uint32_t>(items.size()), out);
    for (const std::vector<std::uint8_t> &item : items) {
        putU32(static_cast<std::uint32_t>(item.size()), out);
        out.insert(out.end(), item.begin(), item.end());
    }
    return out;
}

std::vector<std::vector<std::uint8_t>>
decodeBatchItems(const std::vector<std::uint8_t> &payload,
                 const std::string &peer)
{
    auto fail = [&](std::size_t at, const std::string &why)
        -> CorruptionError {
        return CorruptionError(peer, kNoFilePosition, at,
                               "wire batch: " + why);
    };
    auto u32At = [&](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(payload[at + i]) << (8 * i);
        return v;
    };
    if (payload.size() < 4)
        throw fail(0, "truncated item count");
    std::uint32_t count = u32At(0);
    // Each item costs at least its 4-byte length prefix, so a count a
    // corrupted byte inflated past the payload is caught before any
    // allocation is sized by it.
    if (count > (payload.size() - 4) / 4)
        throw fail(0, "item count " + std::to_string(count) +
                          " overruns the payload");
    std::vector<std::vector<std::uint8_t>> items;
    items.reserve(count);
    std::size_t at = 4;
    for (std::uint32_t i = 0; i < count; ++i) {
        if (payload.size() - at < 4)
            throw fail(at, "truncated item length");
        std::uint32_t len = u32At(at);
        at += 4;
        if (payload.size() - at < len)
            throw fail(at, "item of " + std::to_string(len) +
                               " bytes overruns the payload");
        items.emplace_back(payload.begin() +
                               static_cast<std::ptrdiff_t>(at),
                           payload.begin() +
                               static_cast<std::ptrdiff_t>(at + len));
        at += len;
    }
    if (at != payload.size())
        throw fail(at, std::to_string(payload.size() - at) +
                           " trailing bytes after the last item");
    return items;
}

bool
responsesIdentical(const crs::RetrievalResponse &a,
                   const crs::RetrievalResponse &b)
{
    return a.mode == b.mode && a.candidates == b.candidates &&
        a.answers == b.answers &&
        a.indexEntriesScanned == b.indexEntriesScanned &&
        a.fs1Hits == b.fs1Hits &&
        a.clausesExamined == b.clausesExamined &&
        a.filterOps == b.filterOps &&
        a.breakdown.queueWait == b.breakdown.queueWait &&
        a.breakdown.cacheTime == b.breakdown.cacheTime &&
        a.breakdown.indexTime == b.breakdown.indexTime &&
        a.breakdown.filterTime == b.breakdown.filterTime &&
        a.breakdown.hostUnifyTime == b.breakdown.hostUnifyTime &&
        a.elapsed == b.elapsed && a.degraded == b.degraded &&
        a.corruptIndexPages == b.corruptIndexPages &&
        a.resultOverflow == b.resultOverflow &&
        a.satisfiersRequeued == b.satisfiersRequeued;
}

} // namespace clare::net
