#include "pif/pif_item.hh"

#include "support/logging.hh"

namespace clare::pif {

std::int64_t
PifItem::integerValue() const
{
    clare_assert(tagClass(tag) == TagClass::Integer,
                 "integerValue of non-integer item");
    std::uint64_t u = (static_cast<std::uint64_t>(tagIntNibble(tag)) << 32)
        | content;
    // Sign-extend from 36 bits.
    if (u & (std::uint64_t{1} << 35))
        u |= ~((std::uint64_t{1} << 36) - 1);
    return static_cast<std::int64_t>(u);
}

bool
PifItem::integerFits(std::int64_t value)
{
    return value >= -(std::int64_t{1} << 35) &&
           value < (std::int64_t{1} << 35);
}

PifItem
PifItem::makeInteger(std::int64_t value)
{
    clare_assert(integerFits(value),
                 "integer %lld does not fit the 36-bit in-line encoding",
                 static_cast<long long>(value));
    std::uint64_t u = static_cast<std::uint64_t>(value) &
        ((std::uint64_t{1} << 36) - 1);
    PifItem item;
    item.tag = makeIntegerTag(static_cast<std::uint32_t>(u >> 32));
    item.content = static_cast<std::uint32_t>(u & 0xffffffffu);
    return item;
}

std::string
PifItem::toString() const
{
    std::string s = tagClassName(tagClass(tag));
    s += "(";
    if (tagClass(tag) == TagClass::Integer) {
        s += std::to_string(integerValue());
    } else {
        s += std::to_string(content);
        if (isComplexTag(tag)) {
            s += "/";
            s += std::to_string(tagArity(tag));
        }
    }
    if (hasExtension()) {
        s += ",ext=";
        s += std::to_string(extension);
    }
    s += ")";
    return s;
}

bool
isQueryVarItem(const PifItem &item)
{
    TagClass cls = tagClass(item.tag);
    return cls == TagClass::FirstQueryVar || cls == TagClass::SubQueryVar;
}

bool
isDbVarItem(const PifItem &item)
{
    TagClass cls = tagClass(item.tag);
    return cls == TagClass::FirstDbVar || cls == TagClass::SubDbVar;
}

bool
isNamedVarItem(const PifItem &item)
{
    return isQueryVarItem(item) || isDbVarItem(item);
}

bool
isAnonVarItem(const PifItem &item)
{
    return tagClass(item.tag) == TagClass::AnonymousVar;
}

void
serializeItem(const PifItem &item, std::vector<std::uint8_t> &out)
{
    clare_assert(isValidTag(item.tag), "serializing invalid tag 0x%02x",
                 item.tag);
    out.push_back(item.tag);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(item.content >> (8 * i)));
    if (item.hasExtension()) {
        for (int i = 0; i < 4; ++i)
            out.push_back(
                static_cast<std::uint8_t>(item.extension >> (8 * i)));
    }
}

PifItem
deserializeItem(const std::vector<std::uint8_t> &in, std::size_t &offset)
{
    if (offset >= in.size())
        clare_fatal("PIF stream truncated at offset %zu", offset);
    PifItem item;
    item.tag = in[offset];
    if (!isValidTag(item.tag))
        clare_fatal("invalid PIF tag 0x%02x at offset %zu",
                    item.tag, offset);
    if (offset + item.wireBytes() > in.size())
        clare_fatal("PIF item truncated at offset %zu", offset);
    ++offset;
    for (int i = 0; i < 4; ++i)
        item.content |= static_cast<std::uint32_t>(in[offset++]) << (8 * i);
    if (item.hasExtension()) {
        for (int i = 0; i < 4; ++i)
            item.extension |=
                static_cast<std::uint32_t>(in[offset++]) << (8 * i);
    }
    return item;
}

std::size_t
wireSize(const std::vector<PifItem> &items)
{
    std::size_t n = 0;
    for (const auto &item : items)
        n += item.wireBytes();
    return n;
}

} // namespace clare::pif
