/**
 * @file
 * The CLARE Pseudo In-line Format (PIF) type-tag scheme of Appendix
 * Table A1.
 *
 * Every PIF item starts with an 8-bit type tag.  Fixed tags encode the
 * five variable types and the pointer-based simple terms; the integer
 * in-line tag carries the most significant nibble of the value; the
 * complex-term tags carry a 5-bit arity in their low bits:
 *
 *   0010 0000  anonymous variable
 *   0010 0111  first query variable (1st-QV)
 *   0010 0101  subsequent query variable (Sub-QV)
 *   0010 0110  first DB variable (1st-DV)
 *   0010 0100  subsequent DB variable (Sub-DV)
 *   0000 1000  atom pointer (content = symbol table offset)
 *   0000 1001  float pointer (content = symbol table offset)
 *   0001 nnnn  integer in-line (nnnn = ms nibble, content = ls 32 bits)
 *   011a aaaa  structure in-line (content = functor offset)
 *   010a aaaa  structure pointer (content = functor, ext = pointer)
 *   111a aaaa  terminated list in-line
 *   101a aaaa  unterminated list in-line
 *   110a aaaa  terminated list pointer (DB side only)
 *   100a aaaa  unterminated list pointer (DB side only)
 *
 * The paper states 107 data types are supported; Table A1 as printed
 * actually spans a larger valid tag space (see countSupportedTags()),
 * and the paper gives no decomposition of the 107 — we implement the
 * table exactly as printed.
 */

#ifndef CLARE_PIF_TYPE_TAGS_HH
#define CLARE_PIF_TYPE_TAGS_HH

#include <cstdint>
#include <vector>

namespace clare::pif {

/** An 8-bit PIF type tag. */
using Tag = std::uint8_t;

/** @name Fixed tag values (variables and pointer-based simple terms). */
/// @{
constexpr Tag kAnonymousVar = 0x20;
constexpr Tag kFirstQueryVar = 0x27;
constexpr Tag kSubQueryVar = 0x25;
constexpr Tag kFirstDbVar = 0x26;
constexpr Tag kSubDbVar = 0x24;
constexpr Tag kAtomPointer = 0x08;
constexpr Tag kFloatPointer = 0x09;
/// @}

/** @name Tag-family base values (low bits carry a nibble or arity). */
/// @{
constexpr Tag kIntegerInlineBase = 0x10;      // 0001 nnnn
constexpr Tag kStructInlineBase = 0x60;       // 011a aaaa
constexpr Tag kStructPointerBase = 0x40;      // 010a aaaa
constexpr Tag kTermListInlineBase = 0xe0;     // 111a aaaa
constexpr Tag kUntermListInlineBase = 0xa0;   // 101a aaaa
constexpr Tag kTermListPointerBase = 0xc0;    // 110a aaaa
constexpr Tag kUntermListPointerBase = 0x80;  // 100a aaaa
/// @}

/** Maximum arity representable in-line (5-bit arity field). */
constexpr std::uint32_t kMaxInlineArity = 31;

/** The three matching categories of section 3.1. */
enum class TagCategory : std::uint8_t
{
    Simple,     ///< atoms, integers, floats: equality test
    Variable,   ///< skip / store / fetch-then-match
    Complex,    ///< structures and lists: repetitive matching
};

/** Finer-grained classification used by the map ROM and the matcher. */
enum class TagClass : std::uint8_t
{
    AnonymousVar,
    FirstQueryVar,
    SubQueryVar,
    FirstDbVar,
    SubDbVar,
    Atom,
    Float,
    Integer,
    StructInline,
    StructPointer,
    TermListInline,
    UntermListInline,
    TermListPointer,
    UntermListPointer,
};

/** Number of distinct TagClass values. */
constexpr std::size_t kTagClassCount = 14;

/** Classify a tag; invalid tags panic. */
TagClass tagClass(Tag tag);

/** True if the byte is a valid PIF tag. */
bool isValidTag(Tag tag);

/** Category of a (valid) tag. */
TagCategory tagCategory(Tag tag);

/** Human-readable class name (matches Table A1 row labels). */
const char *tagClassName(TagClass cls);

/** True for the five variable tags. */
bool isVariableTag(Tag tag);

/** True for any structure or list tag. */
bool isComplexTag(Tag tag);

/** True for any of the four list tags. */
bool isListTag(Tag tag);

/** True for an in-line (elements-follow) complex tag. */
bool isInlineComplexTag(Tag tag);

/** True for an unterminated (tail-variable) list tag. */
bool isUntermListTag(Tag tag);

/** Arity field of a complex tag (low 5 bits). */
std::uint32_t tagArity(Tag tag);

/** Most significant nibble of an integer in-line tag. */
std::uint32_t tagIntNibble(Tag tag);

/** Compose an integer in-line tag from a value nibble. */
Tag makeIntegerTag(std::uint32_t ms_nibble);

/** Compose a complex tag from a family base and arity (1..31). */
Tag makeComplexTag(Tag base, std::uint32_t arity);

/** True if the tag's item carries a 32-bit extension word. */
bool tagHasExtension(Tag tag);

/** Enumerate every valid tag byte (ascending). */
std::vector<Tag> allValidTags();

/** Count of valid tag bytes (cf. the paper's "107 data types"). */
std::size_t countSupportedTags();

} // namespace clare::pif

#endif // CLARE_PIF_TYPE_TAGS_HH
