#include "pif/type_tags.hh"

#include "support/logging.hh"

namespace clare::pif {

bool
isValidTag(Tag tag)
{
    switch (tag) {
      case kAnonymousVar:
      case kFirstQueryVar:
      case kSubQueryVar:
      case kFirstDbVar:
      case kSubDbVar:
      case kAtomPointer:
      case kFloatPointer:
        return true;
      default:
        break;
    }
    if ((tag & 0xf0) == kIntegerInlineBase)
        return true;
    // Complex families: top 3 bits select the family, low 5 the arity.
    std::uint8_t family = tag & 0xe0;
    std::uint32_t arity = tag & 0x1f;
    switch (family) {
      case kStructInlineBase:
      case kStructPointerBase:
      case kTermListInlineBase:
      case kUntermListInlineBase:
      case kTermListPointerBase:
      case kUntermListPointerBase:
        return arity >= 1 && arity <= kMaxInlineArity;
      default:
        return false;
    }
}

TagClass
tagClass(Tag tag)
{
    switch (tag) {
      case kAnonymousVar: return TagClass::AnonymousVar;
      case kFirstQueryVar: return TagClass::FirstQueryVar;
      case kSubQueryVar: return TagClass::SubQueryVar;
      case kFirstDbVar: return TagClass::FirstDbVar;
      case kSubDbVar: return TagClass::SubDbVar;
      case kAtomPointer: return TagClass::Atom;
      case kFloatPointer: return TagClass::Float;
      default:
        break;
    }
    if ((tag & 0xf0) == kIntegerInlineBase)
        return TagClass::Integer;
    switch (tag & 0xe0) {
      case kStructInlineBase: return TagClass::StructInline;
      case kStructPointerBase: return TagClass::StructPointer;
      case kTermListInlineBase: return TagClass::TermListInline;
      case kUntermListInlineBase: return TagClass::UntermListInline;
      case kTermListPointerBase: return TagClass::TermListPointer;
      case kUntermListPointerBase: return TagClass::UntermListPointer;
      default:
        clare_panic("invalid PIF tag 0x%02x", tag);
    }
}

TagCategory
tagCategory(Tag tag)
{
    switch (tagClass(tag)) {
      case TagClass::AnonymousVar:
      case TagClass::FirstQueryVar:
      case TagClass::SubQueryVar:
      case TagClass::FirstDbVar:
      case TagClass::SubDbVar:
        return TagCategory::Variable;
      case TagClass::Atom:
      case TagClass::Float:
      case TagClass::Integer:
        return TagCategory::Simple;
      default:
        return TagCategory::Complex;
    }
}

const char *
tagClassName(TagClass cls)
{
    switch (cls) {
      case TagClass::AnonymousVar: return "Anonymous Var";
      case TagClass::FirstQueryVar: return "First Query Var";
      case TagClass::SubQueryVar: return "Subsequent Query Var";
      case TagClass::FirstDbVar: return "First DB Var";
      case TagClass::SubDbVar: return "Subsequent DB Var";
      case TagClass::Atom: return "Atom Pointer";
      case TagClass::Float: return "Float Pointer";
      case TagClass::Integer: return "Integer In-line";
      case TagClass::StructInline: return "Structure In-line";
      case TagClass::StructPointer: return "Structure Pointer";
      case TagClass::TermListInline: return "Terminated List In-line";
      case TagClass::UntermListInline: return "Unterminated List In-line";
      case TagClass::TermListPointer: return "Terminated List Pointer";
      case TagClass::UntermListPointer: return "Unterminated List Pointer";
    }
    return "?";
}

bool
isVariableTag(Tag tag)
{
    return tagCategory(tag) == TagCategory::Variable;
}

bool
isComplexTag(Tag tag)
{
    return tagCategory(tag) == TagCategory::Complex;
}

bool
isListTag(Tag tag)
{
    switch (tagClass(tag)) {
      case TagClass::TermListInline:
      case TagClass::UntermListInline:
      case TagClass::TermListPointer:
      case TagClass::UntermListPointer:
        return true;
      default:
        return false;
    }
}

bool
isInlineComplexTag(Tag tag)
{
    switch (tagClass(tag)) {
      case TagClass::StructInline:
      case TagClass::TermListInline:
      case TagClass::UntermListInline:
        return true;
      default:
        return false;
    }
}

bool
isUntermListTag(Tag tag)
{
    TagClass cls = tagClass(tag);
    return cls == TagClass::UntermListInline ||
           cls == TagClass::UntermListPointer;
}

std::uint32_t
tagArity(Tag tag)
{
    clare_assert(isComplexTag(tag), "arity of a non-complex tag 0x%02x",
                 tag);
    return tag & 0x1f;
}

std::uint32_t
tagIntNibble(Tag tag)
{
    clare_assert(tagClass(tag) == TagClass::Integer,
                 "nibble of non-integer tag 0x%02x", tag);
    return tag & 0x0f;
}

Tag
makeIntegerTag(std::uint32_t ms_nibble)
{
    clare_assert(ms_nibble <= 0x0f, "integer nibble %u out of range",
                 ms_nibble);
    return static_cast<Tag>(kIntegerInlineBase | ms_nibble);
}

Tag
makeComplexTag(Tag base, std::uint32_t arity)
{
    clare_assert(arity >= 1 && arity <= kMaxInlineArity,
                 "complex tag arity %u out of range", arity);
    return static_cast<Tag>(base | arity);
}

bool
tagHasExtension(Tag tag)
{
    // Only structure pointers carry a separate extension word; list
    // pointers keep the pointer in the content field (Table A1).
    return tagClass(tag) == TagClass::StructPointer;
}

std::vector<Tag>
allValidTags()
{
    std::vector<Tag> tags;
    for (int t = 0; t < 256; ++t)
        if (isValidTag(static_cast<Tag>(t)))
            tags.push_back(static_cast<Tag>(t));
    return tags;
}

std::size_t
countSupportedTags()
{
    return allValidTags().size();
}

} // namespace clare::pif
