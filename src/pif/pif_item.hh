/**
 * @file
 * A single Pseudo In-line Format item and its wire encoding.
 *
 * An item is an 8-bit type tag, a 32-bit content field, and (for
 * structure pointers) a 32-bit extension.  The wire format is the tag
 * byte followed by the little-endian content word and, when the tag
 * calls for it, the little-endian extension word.
 */

#ifndef CLARE_PIF_PIF_ITEM_HH
#define CLARE_PIF_PIF_ITEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pif/type_tags.hh"

namespace clare::pif {

/** One PIF item as streamed to/compared by the FS2 hardware. */
struct PifItem
{
    Tag tag = 0;
    std::uint32_t content = 0;
    std::uint32_t extension = 0;

    bool hasExtension() const { return tagHasExtension(tag); }

    /** Size in bytes on the wire (5 or 9). */
    std::size_t wireBytes() const { return hasExtension() ? 9 : 5; }

    /** Decode the 36-bit in-line integer value (tag must be Integer). */
    std::int64_t integerValue() const;

    /** Build an in-line integer item; value must fit in 36 bits. */
    static PifItem makeInteger(std::int64_t value);

    /** Range check for the 36-bit in-line integer encoding. */
    static bool integerFits(std::int64_t value);

    bool operator==(const PifItem &) const = default;

    /** Debug rendering: "tag-class(content[,ext])". */
    std::string toString() const;
};

/** True for a First/Subsequent query-variable item. */
bool isQueryVarItem(const PifItem &item);

/** True for a First/Subsequent database-variable item. */
bool isDbVarItem(const PifItem &item);

/** True for any named (non-anonymous) variable item. */
bool isNamedVarItem(const PifItem &item);

/** True for the anonymous-variable item. */
bool isAnonVarItem(const PifItem &item);

/** Append an item's wire encoding to a byte buffer. */
void serializeItem(const PifItem &item, std::vector<std::uint8_t> &out);

/** Decode one item at @p offset, advancing it.  Bad tags are fatal. */
PifItem deserializeItem(const std::vector<std::uint8_t> &in,
                        std::size_t &offset);

/** Total wire size of a run of items. */
std::size_t wireSize(const std::vector<PifItem> &items);

} // namespace clare::pif

#endif // CLARE_PIF_PIF_ITEM_HH
