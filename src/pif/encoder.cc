#include "pif/encoder.hh"

#include <map>

#include "support/logging.hh"

namespace clare::pif {

using term::TermArena;
using term::TermKind;
using term::TermRef;

/** Per-encoding state: variable slot assignment and pointer allocation. */
struct Encoder::VarMap
{
    std::map<term::VarId, std::uint32_t> slots;
    std::uint32_t nextSlot = 0;
    std::uint32_t nextPointer = 1;

    /** Assign (or recall) a slot; sets @p first on first occurrence. */
    std::uint32_t
    slotFor(term::VarId var, bool &first)
    {
        auto it = slots.find(var);
        if (it != slots.end()) {
            first = false;
            return it->second;
        }
        first = true;
        std::uint32_t slot = nextSlot++;
        slots.emplace(var, slot);
        return slot;
    }

    /** Allocate a clause-local pseudo heap pointer. */
    std::uint32_t allocPointer() { return nextPointer++; }
};

std::size_t
itemWidth(const std::vector<PifItem> &items, std::size_t i)
{
    clare_assert(i < items.size(), "item index %zu out of range", i);
    const PifItem &item = items[i];
    if (isInlineComplexTag(item.tag)) {
        std::size_t w = 1 + tagArity(item.tag);
        clare_assert(i + w <= items.size(),
                     "in-line complex item overruns the stream");
        return w;
    }
    return 1;
}

PifItem
Encoder::variableItem(const TermArena &arena, TermRef t, Side side,
                      VarMap &vars) const
{
    if (arena.isAnonymous(t))
        return PifItem{kAnonymousVar, 0, 0};
    bool first = false;
    std::uint32_t slot = vars.slotFor(arena.varId(t), first);
    Tag tag;
    if (side == Side::Query)
        tag = first ? kFirstQueryVar : kSubQueryVar;
    else
        tag = first ? kFirstDbVar : kSubDbVar;
    return PifItem{tag, slot, 0};
}

PifItem
Encoder::pointerItem(const TermArena &arena, TermRef t, VarMap &vars) const
{
    TermKind k = arena.kind(t);
    std::uint32_t arity = arena.arity(t);
    // Arities wider than the 5-bit field saturate at 31; the matcher
    // treats a saturated field as "31 or more" (a documented false-drop
    // source, mirroring the paper's truncation effects).
    std::uint32_t field = arity > kMaxInlineArity ? kMaxInlineArity : arity;
    if (k == TermKind::Struct) {
        PifItem item;
        item.tag = makeComplexTag(kStructPointerBase, field);
        item.content = arena.functor(t);
        item.extension = vars.allocPointer();
        return item;
    }
    clare_assert(k == TermKind::List, "pointer item for non-complex term");
    Tag base = arena.isTerminatedList(t)
        ? kTermListPointerBase : kUntermListPointerBase;
    PifItem item;
    item.tag = makeComplexTag(base, field);
    item.content = vars.allocPointer();
    return item;
}

void
Encoder::encodeOne(const TermArena &arena, TermRef t, Side side,
                   int depth, VarMap &vars,
                   std::vector<PifItem> &out) const
{
    switch (arena.kind(t)) {
      case TermKind::Atom:
        out.push_back(PifItem{kAtomPointer, arena.atomSymbol(t), 0});
        return;
      case TermKind::Float:
        out.push_back(PifItem{kFloatPointer, arena.floatId(t), 0});
        return;
      case TermKind::Int: {
        std::int64_t v = arena.intValue(t);
        if (!PifItem::integerFits(v))
            clare_fatal("integer %lld exceeds the PIF 36-bit in-line "
                        "range", static_cast<long long>(v));
        out.push_back(PifItem::makeInteger(v));
        return;
      }
      case TermKind::Var:
        out.push_back(variableItem(arena, t, side, vars));
        return;
      case TermKind::Struct: {
        std::uint32_t arity = arena.arity(t);
        if (depth > 0 || arity > kMaxInlineArity) {
            out.push_back(pointerItem(arena, t, vars));
            return;
        }
        PifItem head;
        head.tag = makeComplexTag(kStructInlineBase, arity);
        head.content = arena.functor(t);
        out.push_back(head);
        for (std::uint32_t i = 0; i < arity; ++i)
            encodeOne(arena, arena.arg(t, i), side, depth + 1, vars, out);
        return;
      }
      case TermKind::List: {
        std::uint32_t arity = arena.arity(t);
        if (depth > 0 || arity > kMaxInlineArity) {
            out.push_back(pointerItem(arena, t, vars));
            return;
        }
        Tag base = arena.isTerminatedList(t)
            ? kTermListInlineBase : kUntermListInlineBase;
        PifItem head;
        head.tag = makeComplexTag(base, arity);
        head.content = 0;
        out.push_back(head);
        for (std::uint32_t i = 0; i < arity; ++i)
            encodeOne(arena, arena.arg(t, i), side, depth + 1, vars, out);
        // The tail variable of an unterminated list is not emitted as
        // an item: the hardware's element counters carry only the
        // explicit arity, and the tail takes part only in host-side
        // full unification.
        return;
      }
    }
    clare_panic("unreachable term kind");
}

EncodedArgs
Encoder::encodeArgs(const TermArena &arena, TermRef head_or_goal,
                    Side side) const
{
    EncodedArgs result;
    VarMap vars;
    TermKind k = arena.kind(head_or_goal);
    if (k == TermKind::Atom) {
        // Arity-0 predicate: empty argument stream.
        return result;
    }
    if (k != TermKind::Struct)
        clare_fatal("can only encode the arguments of an atom or "
                    "structure, got %s", term::termKindName(k));
    std::uint32_t arity = arena.arity(head_or_goal);
    for (std::uint32_t i = 0; i < arity; ++i) {
        result.argIndex.push_back(result.items.size());
        encodeOne(arena, arena.arg(head_or_goal, i), side, 0, vars,
                  result.items);
    }
    result.varSlots = vars.nextSlot;
    return result;
}

EncodedArgs
Encoder::encodeTerm(const TermArena &arena, TermRef t, Side side) const
{
    EncodedArgs result;
    VarMap vars;
    result.argIndex.push_back(0);
    encodeOne(arena, t, side, 0, vars, result.items);
    result.varSlots = vars.nextSlot;
    return result;
}

} // namespace clare::pif
