/**
 * @file
 * Compiles Prolog terms into Pseudo In-line Format item streams.
 *
 * The encoder implements the level-3 layout the FS2 hardware expects:
 * the arguments of a clause head (or of a query goal) are emitted in
 * order; a complex argument of arity <= 31 is emitted *in-line* (its
 * header item followed by one item per top-level element), and any
 * complex term nested below that first level — or wider than 31 — is
 * emitted as a pointer item.  This single-level in-lining is exactly
 * why the engine performs level-3 (first-level structure) matching:
 * the hardware has one element counter per side, so in-line nesting
 * cannot recurse.
 *
 * Variable items carry the variable's binding-store slot in their
 * content field; the first occurrence within the clause (or query)
 * gets a First tag and later occurrences a Subsequent tag, with query
 * and database sides using their respective tag pairs.  Anonymous
 * variables always encode as the anonymous tag.
 */

#ifndef CLARE_PIF_ENCODER_HH
#define CLARE_PIF_ENCODER_HH

#include <cstdint>
#include <vector>

#include "pif/pif_item.hh"
#include "term/term.hh"

namespace clare::pif {

/** Which side of the match a stream is compiled for. */
enum class Side : std::uint8_t
{
    Db,     ///< disk-resident clause head (DV tags)
    Query,  ///< query goal (QV tags)
};

/** An encoded argument stream plus its navigation index. */
struct EncodedArgs
{
    /** The item stream, arguments in order. */
    std::vector<PifItem> items;

    /** Index into items where each argument starts. */
    std::vector<std::size_t> argIndex;

    /** Number of distinct non-anonymous variable slots used. */
    std::uint32_t varSlots = 0;

    std::size_t argCount() const { return argIndex.size(); }
};

/**
 * Number of items occupied by the argument (or element) whose header
 * item sits at @p i: 1 + arity for an in-line complex item, else 1.
 */
std::size_t itemWidth(const std::vector<PifItem> &items, std::size_t i);

/** Stateless term-to-PIF compiler. */
class Encoder
{
  public:
    /**
     * Encode the arguments of @p head_or_goal, which must be an atom
     * (arity 0 — empty stream) or a structure.
     */
    EncodedArgs encodeArgs(const term::TermArena &arena,
                           term::TermRef head_or_goal, Side side) const;

    /** Encode one standalone term as a single argument. */
    EncodedArgs encodeTerm(const term::TermArena &arena,
                           term::TermRef t, Side side) const;

  private:
    struct VarMap;

    void encodeOne(const term::TermArena &arena, term::TermRef t,
                   Side side, int depth, VarMap &vars,
                   std::vector<PifItem> &out) const;

    PifItem variableItem(const term::TermArena &arena, term::TermRef t,
                         Side side, VarMap &vars) const;
    PifItem pointerItem(const term::TermArena &arena, term::TermRef t,
                        VarMap &vars) const;
};

} // namespace clare::pif

#endif // CLARE_PIF_ENCODER_HH
