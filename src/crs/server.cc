#include "crs/server.hh"

#include <algorithm>
#include <deque>
#include <future>
#include <set>
#include <thread>
#include <utility>

#include "support/logging.hh"
#include "unify/oracle.hh"
#include "unify/pif_matcher.hh"

namespace clare::crs {

using term::TermArena;
using term::TermKind;
using term::TermRef;

ClauseRetrievalServer::ClauseRetrievalServer(term::SymbolTable &symbols,
                                             const PredicateStore &store,
                                             CrsConfig config)
    : symbols_(symbols), store_(store), config_(config),
      fs1_(store.generator(), config.fs1)
{
    // The pool supplies workers-1 threads; the calling thread is the
    // last worker (it participates in sharded scans and runs the
    // pipeline back half), so total concurrency equals `workers`.
    if (config_.workers > 1) {
        pool_ = std::make_unique<support::ThreadPool>(
            config_.workers - 1);
        std::uint32_t cores =
            std::max(1u, std::thread::hardware_concurrency());
        // CPU-bound scans gain nothing from fanning out wider than the
        // hardware; paced (device-wait) scans overlap their waits at
        // any core count, so they shard the full worker width.
        scanShards_ = config_.fs1.paceScale > 0
            ? config_.workers
            : std::min(config_.workers, cores);
        scanAhead_ = scanShards_;
    }
}

term::PredicateId
ClauseRetrievalServer::goalPredicate(const TermArena &q_arena,
                                     TermRef goal) const
{
    if (q_arena.kind(goal) == TermKind::Atom)
        return term::PredicateId{q_arena.atomSymbol(goal), 0};
    if (q_arena.kind(goal) == TermKind::Struct)
        return term::PredicateId{q_arena.functor(goal),
                                 q_arena.arity(goal)};
    clare_fatal("retrieval goal must be an atom or structure");
}

namespace {

void
collectVars(const TermArena &arena, TermRef t,
            std::set<term::VarId> &seen, bool &shared)
{
    switch (arena.kind(t)) {
      case TermKind::Var:
        if (!arena.isAnonymous(t) && !seen.insert(arena.varId(t)).second)
            shared = true;
        return;
      case TermKind::Struct:
      case TermKind::List:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            collectVars(arena, arena.arg(t, i), seen, shared);
        if (arena.kind(t) == TermKind::List &&
            arena.listTail(t) != term::kNoTerm) {
            collectVars(arena, arena.listTail(t), seen, shared);
        }
        return;
      default:
        return;
    }
}

bool
containsVar(const TermArena &arena, TermRef t)
{
    switch (arena.kind(t)) {
      case TermKind::Var:
        return true;
      case TermKind::Struct:
      case TermKind::List:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            if (containsVar(arena, arena.arg(t, i)))
                return true;
        if (arena.kind(t) == TermKind::List &&
            arena.listTail(t) != term::kNoTerm) {
            return containsVar(arena, arena.listTail(t));
        }
        return false;
      default:
        return false;
    }
}

} // namespace

QueryProfile
ClauseRetrievalServer::profileQuery(const TermArena &q_arena, TermRef goal)
{
    QueryProfile profile;
    if (q_arena.kind(goal) != TermKind::Struct)
        return profile;
    profile.arity = q_arena.arity(goal);

    std::set<term::VarId> seen;
    for (std::uint32_t i = 0; i < profile.arity; ++i) {
        TermRef arg = q_arena.arg(goal, i);
        TermKind k = q_arena.kind(arg);
        if (k == TermKind::Var) {
            ++profile.variableArgs;
        } else if (!containsVar(q_arena, arg)) {
            ++profile.groundArgs;
        } else {
            profile.hasVarBearingStructures = true;
        }
        collectVars(q_arena, arg, seen, profile.hasSharedVars);
    }
    return profile;
}

SearchMode
ClauseRetrievalServer::selectMode(const TermArena &q_arena,
                                  TermRef goal) const
{
    QueryProfile p = profileQuery(q_arena, goal);
    term::PredicateId pred = goalPredicate(q_arena, goal);
    double rule_fraction = store_.has(pred)
        ? store_.predicate(pred).ruleFraction : 0.0;

    // Nothing for a filter to discriminate on: every clause of the
    // predicate is a candidate whatever we do.
    if (p.arity == 0 || p.variableArgs == p.arity) {
        if (p.hasSharedVars)
            return SearchMode::Fs2Only;  // e.g. married_couple(S,S)
        return SearchMode::SoftwareOnly;
    }

    // Shared variables and variable-bearing structures are invisible
    // to the codeword index; partial test unification is required to
    // keep the candidate set manageable.
    if (p.hasSharedVars || p.hasVarBearingStructures) {
        return p.groundArgs > 0 ? SearchMode::TwoStage
                                : SearchMode::Fs2Only;
    }

    // Ground query against a rule-intensive predicate: variable head
    // arguments set mask bits, so the index passes most clauses and
    // the second stage pays for itself.
    if (rule_fraction > 0.5)
        return SearchMode::TwoStage;

    return SearchMode::Fs1Only;
}

fs1::Fs1Result
ClauseRetrievalServer::scanIndex(const StoredPredicate &stored,
                                 const TermArena &q_arena,
                                 TermRef goal) const
{
    scw::Signature query_sig = store_.generator().encode(q_arena, goal);
    return fs1_.search(stored.index, query_sig, pool_.get(),
                       scanShards_);
}

void
ClauseRetrievalServer::hostUnify(const StoredPredicate &stored,
                                 const TermArena &q_arena, TermRef goal,
                                 RetrievalResult &result) const
{
    term::TermReader reader(symbols_);
    for (std::uint32_t ordinal : result.candidates) {
        std::string text = stored.clauses.sourceText(ordinal);
        term::Clause clause = reader.parseClause(text);
        if (unify::wouldUnify(q_arena, goal, clause))
            result.answers.push_back(ordinal);
    }
    result.hostUnifyTime = config_.host.perCandidateUnify *
        result.candidates.size();
}

RetrievalResult
ClauseRetrievalServer::retrieveAuto(const TermArena &q_arena,
                                    TermRef goal)
{
    return retrieve(q_arena, goal, selectMode(q_arena, goal));
}

RetrievalResult
ClauseRetrievalServer::retrieve(const TermArena &q_arena, TermRef goal,
                                SearchMode mode)
{
    RetrievalResult result;
    result.mode = mode;

    const StoredPredicate &stored =
        store_.predicate(goalPredicate(q_arena, goal));
    fs1::Fs1Result fs1;
    if (usesFs1(mode))
        fs1 = scanIndex(stored, q_arena, goal);
    finishRetrieval(stored, q_arena, goal, std::move(fs1), result);
    return result;
}

std::vector<RetrievalResult>
ClauseRetrievalServer::retrieveMany(const std::vector<Request> &batch)
{
    const std::size_t n = batch.size();
    std::vector<RetrievalResult> out(n);
    if (n == 0)
        return out;

    // Resolve modes and predicates up front (cheap, read-only) so the
    // pipeline stages below are pure scan/filter work.
    std::vector<SearchMode> modes(n);
    std::vector<const StoredPredicate *> stored(n);
    for (std::size_t i = 0; i < n; ++i) {
        clare_assert(batch[i].arena != nullptr,
                     "retrieveMany request %zu has no arena", i);
        modes[i] = batch[i].mode
            ? *batch[i].mode
            : selectMode(*batch[i].arena, batch[i].goal);
        stored[i] = &store_.predicate(
            goalPredicate(*batch[i].arena, batch[i].goal));
        out[i].mode = modes[i];
    }

    auto scan = [&](std::size_t i) -> fs1::Fs1Result {
        if (!usesFs1(modes[i]))
            return {};
        return scanIndex(*stored[i], *batch[i].arena, batch[i].goal);
    };

    if (!pool_) {
        for (std::size_t i = 0; i < n; ++i)
            finishRetrieval(*stored[i], *batch[i].arena, batch[i].goal,
                            scan(i), out[i]);
        return out;
    }

    // Pipeline: while the calling thread filters and unifies request
    // k, the pool scans the indexes of the next requests (the paper's
    // FS1-ahead-of-FS2 overlap).  Up to `workers` scans are in flight
    // so their device/disk waits overlap each other, not just the
    // back half.  Requests complete in batch order regardless.
    std::deque<std::future<fs1::Fs1Result>> pending;
    std::size_t next = 0;
    auto refill = [&] {
        while (next < n && pending.size() < scanAhead_) {
            std::size_t j = next++;
            pending.push_back(
                pool_->async([&scan, j] { return scan(j); }));
        }
    };
    refill();
    try {
        for (std::size_t i = 0; i < n; ++i) {
            fs1::Fs1Result fs1 = pending.front().get();
            pending.pop_front();
            refill();
            finishRetrieval(*stored[i], *batch[i].arena, batch[i].goal,
                            std::move(fs1), out[i]);
        }
    } catch (...) {
        // In-flight scans reference locals; drain them before the
        // locals go out of scope.
        for (std::future<fs1::Fs1Result> &f : pending)
            if (f.valid())
                f.wait();
        throw;
    }
    return out;
}

void
ClauseRetrievalServer::finishRetrieval(const StoredPredicate &stored,
                                       const TermArena &q_arena,
                                       TermRef goal, fs1::Fs1Result fs1,
                                       RetrievalResult &result)
{
    const storage::ClauseFile &file = stored.clauses;
    const storage::DiskModel &data_disk = store_.dataDisk();
    SearchMode mode = result.mode;

    if (usesFs1(mode)) {
        result.indexEntriesScanned = fs1.entriesScanned;
        result.fs1Hits = fs1.ordinals.size();
        // The index file streams from disk while FS1 scans on the fly.
        const storage::DiskModel &disk = store_.indexDisk();
        Tick transfer = disk.transferTime(fs1.bytesScanned);
        result.indexTime = disk.accessTime() +
            std::max(transfer, fs1.busyTime);
    }

    pif::Encoder encoder;
    pif::EncodedArgs q_args = encoder.encodeArgs(q_arena, goal,
                                                 pif::Side::Query);
    term::PredicateId pred = goalPredicate(q_arena, goal);

    switch (mode) {
      case SearchMode::SoftwareOnly: {
        // The CRS streams the whole clause file and performs partial
        // matching in software before full unification.
        unify::PifMatcher matcher(unify::PifMatchConfig{
            config_.fs2.level, config_.fs2.crossBinding});
        Tick scan_cost = 0;
        for (std::size_t i = 0; i < file.clauseCount(); ++i) {
            unify::PifMatchResult m = matcher.match(file.decodeArgs(i),
                                                    q_args);
            scan_cost += config_.host.perClause +
                config_.host.perOp * m.datapathOps();
            ++result.clausesExamined;
            for (std::size_t o = 0; o < unify::kTueOpCount; ++o)
                result.filterOps[o] += m.opCounts[o];
            if (m.hit)
                result.candidates.push_back(
                    static_cast<std::uint32_t>(i));
        }
        Tick transfer = data_disk.transferTime(file.image().size());
        result.filterTime = data_disk.accessTime() +
            std::max(transfer, scan_cost);
        break;
      }

      case SearchMode::Fs1Only: {
        result.candidates = std::move(fs1.ordinals);
        // Fetch the candidate clauses: one sequential sweep of the
        // spanned region, or a seek per candidate — whichever the
        // disk finishes sooner.
        if (!result.candidates.empty()) {
            const auto &first = file.record(result.candidates.front());
            const auto &last = file.record(result.candidates.back());
            std::uint64_t span = last.offset + last.length - first.offset;
            std::uint64_t selected = 0;
            for (std::uint32_t c : result.candidates)
                selected += file.record(c).length;
            Tick sweep = data_disk.accessTime() +
                data_disk.transferTime(span);
            Tick seeks = data_disk.accessTime() *
                result.candidates.size() +
                data_disk.transferTime(selected);
            result.filterTime = std::min(sweep, seeks);
        }
        break;
      }

      case SearchMode::Fs2Only: {
        fs2::Fs2Engine engine(config_.fs2);
        engine.setQuery(q_args, pred);
        fs2::Fs2SearchResult r = engine.search(file, &data_disk,
                                               stored.clauseFileOffset);
        result.candidates = r.acceptedOrdinals;
        result.clausesExamined = r.clausesExamined;
        result.filterOps = r.ops;
        result.filterTime = r.elapsed;
        break;
      }

      case SearchMode::TwoStage: {
        fs2::Fs2Engine engine(config_.fs2);
        engine.setQuery(q_args, pred);
        fs2::Fs2SearchResult r = engine.searchSelected(
            file, fs1.ordinals, &data_disk, stored.clauseFileOffset);
        result.candidates = r.acceptedOrdinals;
        result.clausesExamined = r.clausesExamined;
        result.filterOps = r.ops;
        result.filterTime = r.elapsed;
        break;
      }
    }

    hostUnify(stored, q_arena, goal, result);
    result.elapsed = result.indexTime + result.filterTime +
        result.hostUnifyTime;
}

} // namespace clare::crs
