#include "crs/server.hh"

#include <algorithm>
#include <deque>
#include <future>
#include <set>
#include <thread>
#include <utility>

#include "support/crc32.hh"
#include "support/logging.hh"
#include "term/canonical.hh"
#include "unify/oracle.hh"
#include "unify/pif_matcher.hh"

namespace clare::crs {

using term::TermArena;
using term::TermKind;
using term::TermRef;

namespace {

/** Bucket bounds shared by the server's latency histograms (us). */
std::vector<double>
latencyBoundsUs()
{
    return obs::Histogram::exponential(1.0, 10.0, 9);
}

constexpr double kTicksPerUs = static_cast<double>(kMicrosecond);

} // namespace

ClauseRetrievalServer::ClauseRetrievalServer(term::SymbolTable &symbols,
                                             const PredicateStore &store,
                                             CrsConfig config)
    : symbols_(symbols), store_(store), config_(config),
      fs1_(store.generator(), config.fs1)
{
    config_.validate();
#ifdef CLARE_FAULT_INJECT
    // Opt-in builds let the environment drive the oracle so any
    // binary (benches, fuzz sweeps) can replay a fault seed without a
    // code change; release builds carry no hook.
    if (config_.faults == nullptr)
        config_.faults = support::envFaultInjector();
#endif
    if (config_.faults != nullptr &&
        !config_.faults->config().anyFaults())
        config_.faults = nullptr;
    // The pool supplies workers-1 threads; the calling thread is the
    // last worker (it participates in sharded scans and runs the
    // pipeline back half), so total concurrency equals `workers`.
    if (config_.workers > 1) {
        pool_ = std::make_unique<support::ThreadPool>(
            config_.workers - 1);
        std::uint32_t cores =
            std::max(1u, std::thread::hardware_concurrency());
        // CPU-bound scans gain nothing from fanning out wider than the
        // hardware; paced (device-wait) scans overlap their waits at
        // any core count, so they shard the full worker width.
        scanShards_ = config_.fs1.paceScale > 0
            ? config_.workers
            : std::min(config_.workers, cores);
        scanAhead_ = scanShards_;
    }
    metrics_.gauge("crs.workers", "configured pipeline width")
        .set(config_.workers);
    // L2/L3 exist only when asked for AND no fault oracle is armed: a
    // response whose bytes were exposed to injected faults (or whose
    // index read might degrade) must never be replayed from cache.
    if (config_.cache.enabled && config_.faults == nullptr) {
        goalCache_ = std::make_unique<GoalCache>(
            config_.cache.goalCapacity);
        signatureCache_ = std::make_unique<scw::SignatureCache>(
            config_.cache.signatureCapacity);
        survivorCache_ = std::make_unique<fs1::SurvivorCache>(
            config_.cache.survivorCapacity);
    }
}

term::PredicateId
ClauseRetrievalServer::goalPredicate(const TermArena &q_arena,
                                     TermRef goal) const
{
    if (q_arena.kind(goal) == TermKind::Atom)
        return term::PredicateId{q_arena.atomSymbol(goal), 0};
    if (q_arena.kind(goal) == TermKind::Struct)
        return term::PredicateId{q_arena.functor(goal),
                                 q_arena.arity(goal)};
    clare_fatal("retrieval goal must be an atom or structure");
}

namespace {

void
collectVars(const TermArena &arena, TermRef t,
            std::set<term::VarId> &seen, bool &shared)
{
    switch (arena.kind(t)) {
      case TermKind::Var:
        if (!arena.isAnonymous(t) && !seen.insert(arena.varId(t)).second)
            shared = true;
        return;
      case TermKind::Struct:
      case TermKind::List:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            collectVars(arena, arena.arg(t, i), seen, shared);
        if (arena.kind(t) == TermKind::List &&
            arena.listTail(t) != term::kNoTerm) {
            collectVars(arena, arena.listTail(t), seen, shared);
        }
        return;
      default:
        return;
    }
}

bool
containsVar(const TermArena &arena, TermRef t)
{
    switch (arena.kind(t)) {
      case TermKind::Var:
        return true;
      case TermKind::Struct:
      case TermKind::List:
        for (std::uint32_t i = 0; i < arena.arity(t); ++i)
            if (containsVar(arena, arena.arg(t, i)))
                return true;
        if (arena.kind(t) == TermKind::List &&
            arena.listTail(t) != term::kNoTerm) {
            return containsVar(arena, arena.listTail(t));
        }
        return false;
      default:
        return false;
    }
}

} // namespace

QueryProfile
ClauseRetrievalServer::profileQuery(const TermArena &q_arena, TermRef goal)
{
    QueryProfile profile;
    if (q_arena.kind(goal) != TermKind::Struct)
        return profile;
    profile.arity = q_arena.arity(goal);

    std::set<term::VarId> seen;
    for (std::uint32_t i = 0; i < profile.arity; ++i) {
        TermRef arg = q_arena.arg(goal, i);
        TermKind k = q_arena.kind(arg);
        if (k == TermKind::Var) {
            ++profile.variableArgs;
        } else if (!containsVar(q_arena, arg)) {
            ++profile.groundArgs;
        } else {
            profile.hasVarBearingStructures = true;
        }
        collectVars(q_arena, arg, seen, profile.hasSharedVars);
    }
    return profile;
}

SearchMode
ClauseRetrievalServer::selectMode(const TermArena &q_arena,
                                  TermRef goal) const
{
    term::PredicateId pred = goalPredicate(q_arena, goal);
    std::shared_ptr<const StoredPredicate> head =
        store_.predicateVersion(pred);
    return selectModeFor(q_arena, goal,
                         head ? head->ruleFraction : 0.0);
}

SearchMode
ClauseRetrievalServer::selectModeFor(const TermArena &q_arena,
                                     TermRef goal,
                                     double rule_fraction)
{
    QueryProfile p = profileQuery(q_arena, goal);

    // Nothing for a filter to discriminate on: every clause of the
    // predicate is a candidate whatever we do.
    if (p.arity == 0 || p.variableArgs == p.arity) {
        if (p.hasSharedVars)
            return SearchMode::Fs2Only;  // e.g. married_couple(S,S)
        return SearchMode::SoftwareOnly;
    }

    // Shared variables and variable-bearing structures are invisible
    // to the codeword index; partial test unification is required to
    // keep the candidate set manageable.
    if (p.hasSharedVars || p.hasVarBearingStructures) {
        return p.groundArgs > 0 ? SearchMode::TwoStage
                                : SearchMode::Fs2Only;
    }

    // Ground query against a rule-intensive predicate: variable head
    // arguments set mask bits, so the index passes most clauses and
    // the second stage pays for itself.
    if (rule_fraction > 0.5)
        return SearchMode::TwoStage;

    return SearchMode::Fs1Only;
}

IndexScan
ClauseRetrievalServer::scanIndex(const StoredPredicate &stored,
                                 const TermArena &q_arena, TermRef goal,
                                 const obs::Observer &obs,
                                 obs::SpanId parent) const
{
    IndexScan scan;
    if (config_.faults != nullptr) {
        const support::FaultInjector &faults = *config_.faults;
        const std::vector<std::uint8_t> &image = stored.index.image();
        const storage::DiskModel &disk = store_.indexDisk();
        const std::uint64_t base = stored.indexFileOffset;

        support::RangeFaults rf = faults.rangeFaults(
            "disk.index", base, image.size(),
            config_.retry.maxAttempts);
        scan.faultTicks = static_cast<Tick>(rf.retries) *
            disk.accessTime() + rf.delayTicks;
        if (rf.permanent) {
            scan.unreadable = true;
            return scan;
        }

        // Verify the delivered copy page by page against the CRCs
        // computed at finalize().  Only faulted pages are actually
        // copied; clean pages are checked in place, so the scan reads
        // the master image exactly when it is provably intact.
        constexpr std::uint32_t page_bytes =
            support::kChecksumPageBytes;
        std::vector<std::uint8_t> scratch;
        for (std::size_t p = 0; p < stored.indexPageCrcs.size(); ++p) {
            std::size_t off = p * static_cast<std::size_t>(page_bytes);
            std::size_t n = std::min<std::size_t>(page_bytes,
                                                  image.size() - off);
            const std::uint8_t *page = image.data() + off;
            std::uint64_t key = faults.chunkKey(base + off);
            if (faults.corruptChunk("disk.index", key)) {
                scratch.assign(page, page + n);
                faults.flipBit("disk.index", key, scratch.data(),
                               scratch.size());
                page = scratch.data();
            }
            if (support::crc32(page, n) != stored.indexPageCrcs[p])
                ++scan.corruptPages;
        }
        if (scan.corruptPages > 0)
            return scan;
    }

    scw::Signature query_sig = store_.generator().encode(q_arena, goal);
    scan.fs1 = fs1_.search(stored.index, stored.sliced.get(),
                           stored.deltaSliced.get(), stored.baseEntries,
                           query_sig, pool_.get(), scanShards_, obs,
                           parent);
    return scan;
}

// ---------------------------------------------------------------------
// Cache plumbing (L2 signature/survivor memos, L3 goal cache).
// ---------------------------------------------------------------------

std::string
ClauseRetrievalServer::goalKey(const TermArena &q_arena, TermRef goal,
                               SearchMode mode,
                               std::uint64_t generation)
{
    // The resolved mode is part of the identity: the same goal served
    // in two modes produces different candidate sets and timings.  So
    // is the MVCC generation of the predicate version that answers it:
    // key and payload derive from the same resolved version, so a
    // commit racing with a fill can never park one generation's
    // answers under another generation's key.
    std::string key = term::canonicalKey(q_arena, goal);
    key.push_back('#');
    key.push_back(static_cast<char>('0' + static_cast<int>(mode)));
    if (generation != 0) {
        key.push_back('@');
        key += std::to_string(generation);
    }
    return key;
}

std::uint64_t
ClauseRetrievalServer::generationOf(const term::PredicateId &pred) const
{
    std::lock_guard<std::mutex> lock(generationMutex_);
    auto it = indexGeneration_.find(pred);
    return it == indexGeneration_.end() ? 0 : it->second;
}

std::string
ClauseRetrievalServer::survivorKey(const term::PredicateId &pred,
                                   const scw::Signature &sig,
                                   std::uint64_t store_generation) const
{
    // Identify the scan, not just the goal: predicate (two predicates
    // can encode identical argument signatures), index generation (a
    // committed write makes every old memo unmatchable), the MVCC
    // generation of the version scanned (key and survivors from the
    // same resolved version — race-free against in-flight commits),
    // and the signature's exact bits.
    std::vector<std::uint8_t> bytes;
    auto put_u64 = [&bytes](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put_u64(static_cast<std::uint64_t>(pred.functor));
    put_u64(pred.arity);
    put_u64(generationOf(pred));
    put_u64(store_generation);
    put_u64(sig.maskBits);
    put_u64(sig.fields.size());
    for (const BitVec &field : sig.fields)
        field.serialize(bytes);
    return std::string(bytes.begin(), bytes.end());
}

scw::Signature
ClauseRetrievalServer::lookupSignature(const std::string &goal_key,
                                       const TermArena &q_arena,
                                       TermRef goal,
                                       const obs::Observer &obs)
{
    if (std::optional<scw::Signature> memo =
            signatureCache_->find(goal_key, obs)) {
        return *memo;
    }
    scw::Signature sig = store_.generator().encode(q_arena, goal);
    signatureCache_->put(goal_key, sig);
    return sig;
}

IndexScan
ClauseRetrievalServer::rawScan(const StoredPredicate &stored,
                               const scw::Signature &sig,
                               const obs::Observer &obs,
                               obs::SpanId parent) const
{
    IndexScan scan;
    scan.fs1 = fs1_.search(stored.index, stored.sliced.get(),
                           stored.deltaSliced.get(), stored.baseEntries,
                           sig, pool_.get(), scanShards_, obs, parent);
    return scan;
}

IndexScan
ClauseRetrievalServer::cachedScan(const StoredPredicate &stored,
                                  const term::PredicateId &pred,
                                  const std::string &goal_key,
                                  const TermArena &q_arena, TermRef goal,
                                  const obs::Observer &obs,
                                  obs::SpanId parent)
{
    scw::Signature sig = lookupSignature(goal_key, q_arena, goal, obs);
    std::string skey = survivorKey(pred, sig, stored.generation);
    if (std::optional<fs1::Fs1Result> memo =
            survivorCache_->find(skey, obs)) {
        IndexScan scan;
        scan.fs1 = std::move(*memo);
        scan.fromCache = true;
        return scan;
    }
    IndexScan scan = rawScan(stored, sig, obs, parent);
    survivorCache_->put(skey, scan.fs1);
    return scan;
}

void
ClauseRetrievalServer::serveGoalHit(const RetrievalResponse &cached,
                                    RetrievalResponse &response)
{
    // Payload verbatim — candidates, answers, and every filter
    // statistic are bit-identical to a recomputation — but the stage
    // breakdown charges only the modeled cache lookup.
    response = cached;
    response.breakdown = StageBreakdown{};
    response.breakdown.cacheTime = config_.cache.goalHitCost;
    response.elapsed = response.breakdown.serviceTime();
    response.traceSpan = 0;
    ++metrics_.counter("crs.cache.hits", "L3 goal-cache hits");
}

void
ClauseRetrievalServer::maybeCacheGoal(const std::string &goal_key,
                                      const term::PredicateId &pred,
                                      const RetrievalResponse &response)
{
    // Degraded responses never exist here (caching requires no fault
    // oracle), but guard anyway; overflowed responses requeued
    // satisfiers through a host path whose cost depends on Result
    // Memory pressure at serve time, so they are not replayed either.
    if (response.degraded || response.resultOverflow)
        return;
    if (goalCache_->put(goal_key, pred, response))
        ++metrics_.counter("crs.cache.evictions",
                           "L3 entries displaced by capacity");
}

void
ClauseRetrievalServer::invalidatePredicate(const term::PredicateId &pred)
{
    if (goalCache_ == nullptr)
        return;
    std::size_t removed = goalCache_->invalidatePredicate(pred);
    {
        // Bump the generation so every survivor memo of this
        // predicate is keyed under a stale generation and can never
        // match again (it ages out of the LRU naturally).
        std::lock_guard<std::mutex> lock(generationMutex_);
        ++indexGeneration_[pred];
    }
    metrics_.counter("crs.cache.invalidations",
                     "L3 entries dropped by committed writes") +=
        removed;
}

void
ClauseRetrievalServer::invalidateCaches()
{
    if (goalCache_ != nullptr) {
        goalCache_->clear();
        signatureCache_->clear();
        survivorCache_->clear();
        std::lock_guard<std::mutex> lock(generationMutex_);
        indexGeneration_.clear();
    }
    // A reload moves file offsets, so resident tracks are garbage.
    store_.dropDiskCaches();
}

std::size_t
ClauseRetrievalServer::goalCacheSize() const
{
    return goalCache_ == nullptr ? 0 : goalCache_->size();
}

void
ClauseRetrievalServer::hostUnify(const StoredPredicate &stored,
                                 const TermArena &q_arena, TermRef goal,
                                 RetrievalResponse &response) const
{
    term::TermReader reader(symbols_);
    for (std::uint32_t ordinal : response.candidates) {
        std::string text = stored.clauses.sourceText(ordinal);
        term::Clause clause = reader.parseClause(text);
        if (unify::wouldUnify(q_arena, goal, clause))
            response.answers.push_back(ordinal);
    }
    response.breakdown.hostUnifyTime = config_.host.perCandidateUnify *
        response.candidates.size();
}

// ---------------------------------------------------------------------
// The unified front door.
// ---------------------------------------------------------------------

RetrievalResponse
ClauseRetrievalServer::serve(const RetrievalRequest &request)
{
    clare_assert(request.arena != nullptr, "retrieval request has no "
                 "arena");
    RetrievalResponse response;

    const term::PredicateId pred =
        goalPredicate(*request.arena, request.goal);
    // Pin the MVCC version first: everything below — mode selection,
    // cache keys, the scan, unification — derives from this one
    // version, so a commit landing mid-request cannot tear the view.
    std::shared_ptr<const StoredPredicate> pinned =
        store_.predicateVersion(pred, request.snapshot);
    if (pinned == nullptr)
        clare_fatal("predicate %s/%u is not stored%s",
                    symbols_.name(pred.functor).c_str(), pred.arity,
                    request.snapshot ? " at the requested snapshot"
                                     : "");
    const StoredPredicate &stored = *pinned;
    response.mode = request.mode
        ? *request.mode
        : selectModeFor(*request.arena, request.goal,
                        stored.ruleFraction);
    obs::Observer ob = observer(request.trace);
    obs::ScopedSpan root(ob.tracer, "crs.retrieve");
    root.attr("mode", std::string(searchModeSlug(response.mode)));

    const bool caching = cachingActive(request);
    std::string goal_key;
    if (caching) {
        goal_key = goalKey(*request.arena, request.goal, response.mode,
                           stored.generation);
        if (std::optional<RetrievalResponse> cached =
                goalCache_->find(goal_key)) {
            serveGoalHit(*cached, response);
            accountQuery(response, root);
            return response;
        }
        ++metrics_.counter("crs.cache.misses", "L3 goal-cache misses");
    }

    IndexScan scan;
    if (usesFs1(response.mode)) {
        scan = caching
            ? cachedScan(stored, pred, goal_key, *request.arena,
                         request.goal, ob, root.id())
            : scanIndex(stored, *request.arena, request.goal, ob,
                        root.id());
    }
    finishRetrieval(stored, request, std::move(scan), ob, root.id(),
                    response);
    if (caching)
        maybeCacheGoal(goal_key, pred, response);
    accountQuery(response, root);
    return response;
}

std::vector<RetrievalResponse>
ClauseRetrievalServer::serveBatch(const std::vector<RetrievalRequest> &
                                      batch)
{
    const std::size_t n = batch.size();
    std::vector<RetrievalResponse> out(n);
    if (n == 0)
        return out;

    ++metrics_.counter("crs.batches", "serveBatch() calls");
    metrics_.gauge("crs.last_batch_size", "requests in the most recent "
                   "batch").set(static_cast<double>(n));

    // Resolve modes and predicates up front (cheap, read-only) so the
    // pipeline stages below are pure scan/filter work.  Each request
    // pins its MVCC predicate version here; the pins keep the versions
    // (and their images) alive for the whole batch, so pool workers
    // scanning ahead never race a concurrent commit.
    std::vector<SearchMode> modes(n);
    std::vector<std::shared_ptr<const StoredPredicate>> pins(n);
    std::vector<const StoredPredicate *> stored(n);
    std::vector<term::PredicateId> preds(n);
    bool any_tracing = false;
    for (std::size_t i = 0; i < n; ++i) {
        clare_assert(batch[i].arena != nullptr,
                     "serveBatch request %zu has no arena", i);
        preds[i] = goalPredicate(*batch[i].arena, batch[i].goal);
        pins[i] = store_.predicateVersion(preds[i], batch[i].snapshot);
        if (pins[i] == nullptr)
            clare_fatal("predicate %s/%u is not stored%s",
                        symbols_.name(preds[i].functor).c_str(),
                        preds[i].arity,
                        batch[i].snapshot
                            ? " at the requested snapshot" : "");
        stored[i] = pins[i].get();
        modes[i] = batch[i].mode
            ? *batch[i].mode
            : selectModeFor(*batch[i].arena, batch[i].goal,
                            stored[i]->ruleFraction);
        out[i].mode = modes[i];
        any_tracing = any_tracing || batch[i].trace.enabled;
    }

    // Cache preprocessing, on the calling thread in batch order so
    // every memo lookup/fill is deterministic at any worker count.
    // For each cacheable request: build its L3 key, predict whether
    // the back half will serve it from cache (already resident, or an
    // earlier request in this batch will fill it), and — for requests
    // that will really scan — resolve the query signature through the
    // L2a memo now, so pool workers never touch a cache.  Predicted
    // hits skip the pool scan entirely; a misprediction (e.g. the
    // filler overflowed and was not admitted) falls back to an inline
    // scan in the back half, so results never depend on the guess.
    std::vector<std::string> goal_keys(n);
    std::vector<std::string> survivor_keys(n);
    std::vector<std::optional<scw::Signature>> sigs(n);
    std::vector<char> caching(n, 0);
    std::vector<char> predicted(n, 0);
    if (goalCache_ != nullptr) {
        std::set<std::string> batch_goal_keys;
        std::set<std::string> batch_survivor_keys;
        for (std::size_t i = 0; i < n; ++i) {
            if (!cachingActive(batch[i]))
                continue;
            caching[i] = 1;
            goal_keys[i] = goalKey(*batch[i].arena, batch[i].goal,
                                   modes[i], stored[i]->generation);
            if (goalCache_->contains(goal_keys[i]) ||
                batch_goal_keys.count(goal_keys[i])) {
                predicted[i] = 1;
            }
            batch_goal_keys.insert(goal_keys[i]);
            if (predicted[i] || !usesFs1(modes[i]))
                continue;
            sigs[i] = lookupSignature(goal_keys[i], *batch[i].arena,
                                      batch[i].goal,
                                      observer(batch[i].trace));
            survivor_keys[i] = survivorKey(preds[i], *sigs[i],
                                           stored[i]->generation);
            if (survivorCache_->contains(survivor_keys[i]) ||
                batch_survivor_keys.count(survivor_keys[i])) {
                predicted[i] = 1;
            }
            batch_survivor_keys.insert(survivor_keys[i]);
        }
    }

    // One batch-level span groups every scan and per-query root so
    // the exported trace stays a single tree even though scans run on
    // pool workers ahead of their query's back half.
    obs::ScopedSpan batch_span(any_tracing ? &tracer_ : nullptr,
                               "crs.batch");
    batch_span.attr("requests", static_cast<std::uint64_t>(n));

    auto scan = [&](std::size_t i) -> IndexScan {
        if (!usesFs1(modes[i]) || predicted[i])
            return {};
        if (caching[i]) {
            // The signature was resolved in the preprocess pass; the
            // scan itself is pure (index, signature) work, safe on a
            // pool worker.  Survivor-memo admission happens on the
            // calling thread, in finish_one.
            return rawScan(*stored[i], *sigs[i],
                           observer(batch[i].trace), batch_span.id());
        }
        return scanIndex(*stored[i], *batch[i].arena, batch[i].goal,
                         observer(batch[i].trace), batch_span.id());
    };

    // Multi-query batch scanning: group FS1-mode goals of the same
    // predicate (up to batchWidth, in batch order) so one pass over
    // the predicate's bit-sliced plane answers the whole group.
    // Predicted cache hits stay ungrouped — they are expected to skip
    // the scan entirely — and fault-armed runs group nothing, since
    // scanIndex() models per-query fault exposure.  Each grouped
    // query's Fs1Result is bit-identical to its own scan, so caching,
    // queue-wait modeling, and responses are unaffected.
    constexpr std::size_t kNoGroup = ~std::size_t{0};
    const bool grouping =
        config_.batchWidth > 1 && config_.faults == nullptr;
    std::vector<std::size_t> group_of(n, kNoGroup);
    std::vector<std::vector<std::size_t>> groups;
    if (grouping) {
        // Keyed by the pinned version, not the predicate id: two
        // requests of one predicate can pin different MVCC versions
        // (snapshot pins, or a commit landing between their resolve
        // steps), and a group must share one index.
        std::map<const StoredPredicate *, std::size_t> open;
        for (std::size_t i = 0; i < n; ++i) {
            if (!usesFs1(modes[i]) || predicted[i])
                continue;
            // A live (base + delta) version routes through the split
            // scan, not the batch plane pass: the base plane alone
            // does not cover the composite file.  (Grouping it would
            // still be bit-identical — searchBatch falls back — but
            // would silently lose the sliced path.)
            if (stored[i]->deltaSliced != nullptr)
                continue;
            auto it = open.find(stored[i]);
            if (it == open.end() ||
                groups[it->second].size() >= config_.batchWidth) {
                groups.emplace_back();
                it = open.insert_or_assign(stored[i],
                                           groups.size() - 1).first;
            }
            group_of[i] = it->second;
            groups[it->second].push_back(i);
        }
    }
    auto scan_group = [&](std::size_t g) -> std::vector<IndexScan> {
        const std::vector<std::size_t> &members = groups[g];
        const StoredPredicate &sp = *stored[members.front()];
        std::vector<scw::Signature> qsigs;
        std::vector<obs::Observer> obss;
        qsigs.reserve(members.size());
        obss.reserve(members.size());
        for (std::size_t m : members) {
            qsigs.push_back(sigs[m]
                            ? *sigs[m]
                            : store_.generator().encode(*batch[m].arena,
                                                        batch[m].goal));
            obss.push_back(observer(batch[m].trace));
        }
        std::vector<fs1::Fs1Result> results = fs1_.searchBatch(
            sp.index, sp.sliced.get(), qsigs, obss, batch_span.id());
        std::vector<IndexScan> scans(members.size());
        for (std::size_t k = 0; k < members.size(); ++k)
            scans[k].fs1 = std::move(results[k]);
        return scans;
    };

    // Modeled pipeline timeline: the FS1 hardware scans the batch
    // serially while the (serial) host back half drains finished
    // scans; a scan that finishes before the back half is free waits
    // in queue.  This is the per-query queueWait — simulated ticks,
    // deterministic, and independent of the host's real thread
    // scheduling.  elapsed stays the query's own service time, so the
    // sequential and pipelined paths agree bit-for-bit on it.
    Tick fs1_free = 0;
    Tick back_free = 0;
    auto finish_one = [&](std::size_t i, IndexScan scanned) {
        obs::ScopedSpan root(batch[i].trace.enabled ? &tracer_ : nullptr,
                             "crs.retrieve", batch_span.id());
        root.attr("mode", std::string(searchModeSlug(modes[i])));
        root.attr("batch_index", static_cast<std::uint64_t>(i));
        RetrievalRequest request = batch[i];
        request.mode = modes[i];
        obs::Observer ob = observer(batch[i].trace);

        bool goal_hit = false;
        if (caching[i]) {
            if (std::optional<RetrievalResponse> cached =
                    goalCache_->find(goal_keys[i])) {
                serveGoalHit(*cached, out[i]);
                goal_hit = true;
            } else {
                ++metrics_.counter("crs.cache.misses",
                                   "L3 goal-cache misses");
                if (usesFs1(modes[i])) {
                    if (!sigs[i]) {
                        // Mispredicted L3 hit: the preprocess pass
                        // skipped signature resolution; do it now.
                        sigs[i] = lookupSignature(goal_keys[i],
                                                  *batch[i].arena,
                                                  batch[i].goal, ob);
                        survivor_keys[i] = survivorKey(
                            preds[i], *sigs[i], stored[i]->generation);
                    }
                    if (std::optional<fs1::Fs1Result> memo =
                            survivorCache_->find(survivor_keys[i],
                                                 ob)) {
                        // Replay the memo even when a (predicted-miss)
                        // pool scan already ran: timing must not
                        // depend on the prediction, only on the cache
                        // state the back half observes in batch order.
                        scanned = IndexScan{};
                        scanned.fs1 = std::move(*memo);
                        scanned.fromCache = true;
                    } else {
                        if (predicted[i]) {
                            // Mispredicted hit: no pool scan ran.
                            scanned = rawScan(*stored[i], *sigs[i], ob,
                                              batch_span.id());
                        }
                        survivorCache_->put(survivor_keys[i],
                                            scanned.fs1);
                    }
                }
            }
        }
        if (!goal_hit) {
            finishRetrieval(*stored[i], request, std::move(scanned),
                            ob, root.id(), out[i]);
            if (caching[i])
                maybeCacheGoal(goal_keys[i], preds[i], out[i]);
        }
        if (pool_) {
            Tick scan_done = fs1_free + out[i].breakdown.indexTime;
            fs1_free = scan_done;
            Tick back_start = std::max(scan_done, back_free);
            out[i].breakdown.queueWait = back_start - scan_done;
            back_free = back_start + out[i].breakdown.cacheTime +
                out[i].breakdown.filterTime +
                out[i].breakdown.hostUnifyTime;
        }
        accountQuery(out[i], root);
    };

    if (!pool_) {
        // Groups are scanned lazily, when their first member is
        // finished, and deliver members in batch order.
        std::vector<std::vector<IndexScan>> group_scans(groups.size());
        std::vector<std::size_t> group_next(groups.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (group_of[i] != kNoGroup) {
                const std::size_t g = group_of[i];
                if (group_scans[g].empty())
                    group_scans[g] = scan_group(g);
                finish_one(i,
                           std::move(group_scans[g][group_next[g]++]));
            } else {
                finish_one(i, scan(i));
            }
        }
        return out;
    }

    // Pipeline: while the calling thread filters and unifies request
    // k, the pool scans the indexes of the next requests (the paper's
    // FS1-ahead-of-FS2 overlap).  Up to `workers` scans are in flight
    // so their device/disk waits overlap each other, not just the
    // back half.  Requests complete in batch order regardless.
    //
    // The units of work are scan groups (a singleton for every
    // ungrouped request, including no-op scans): a unit is queued at
    // its first member's batch position and scatters one IndexScan per
    // member, so grouped members later in the batch find theirs ready.
    struct ScanUnit
    {
        std::size_t first;                 ///< batch index of member 0
        std::size_t group;                 ///< kNoGroup for singletons
    };
    std::vector<ScanUnit> units;
    for (std::size_t i = 0; i < n; ++i) {
        if (group_of[i] == kNoGroup)
            units.push_back({i, kNoGroup});
        else if (groups[group_of[i]].front() == i)
            units.push_back({i, group_of[i]});
    }
    std::vector<std::optional<IndexScan>> ready(n);
    std::deque<std::pair<ScanUnit, std::future<std::vector<IndexScan>>>>
        pending;
    std::size_t next = 0;
    auto refill = [&] {
        while (next < units.size() && pending.size() < scanAhead_) {
            const ScanUnit unit = units[next++];
            pending.emplace_back(
                unit,
                pool_->async([&scan, &scan_group, unit] {
                    if (unit.group == kNoGroup) {
                        std::vector<IndexScan> one;
                        one.push_back(scan(unit.first));
                        return one;
                    }
                    return scan_group(unit.group);
                }));
        }
    };
    refill();
    try {
        for (std::size_t i = 0; i < n; ++i) {
            while (!ready[i]) {
                auto [unit, future] = std::move(pending.front());
                pending.pop_front();
                std::vector<IndexScan> scans = future.get();
                refill();
                if (unit.group == kNoGroup) {
                    ready[unit.first] = std::move(scans.front());
                } else {
                    const std::vector<std::size_t> &members =
                        groups[unit.group];
                    for (std::size_t k = 0; k < members.size(); ++k)
                        ready[members[k]] = std::move(scans[k]);
                }
            }
            finish_one(i, std::move(*ready[i]));
            ready[i].reset();
        }
    } catch (...) {
        // In-flight scans reference locals; drain them before the
        // locals go out of scope.
        for (auto &p : pending)
            if (p.second.valid())
                p.second.wait();
        throw;
    }
    return out;
}

// ---------------------------------------------------------------------
// The single back half / accounting path.
// ---------------------------------------------------------------------

void
ClauseRetrievalServer::finishRetrieval(const StoredPredicate &stored,
                                       const RetrievalRequest &request,
                                       IndexScan scan,
                                       const obs::Observer &obs,
                                       obs::SpanId root,
                                       RetrievalResponse &response)
{
    const TermArena &q_arena = *request.arena;
    TermRef goal = request.goal;
    const storage::ClauseFile &file = stored.clauses;
    const storage::DiskModel &data_disk = store_.dataDisk();
    fs1::Fs1Result &fs1 = scan.fs1;
    StageBreakdown &stages = response.breakdown;

    if (usesFs1(response.mode) && !scan.healthy()) {
        // Graceful degradation: the index cannot be trusted (a page
        // failed its CRC) or read at all, so this query runs as a
        // full FS2 scan of the clause file instead.  Host unification
        // removes the extra candidates, so the answer set is exactly
        // what the healthy index would have produced.  The index read
        // that discovered the damage is still charged.
        response.degraded = true;
        response.corruptIndexPages = scan.corruptPages;
        response.mode = SearchMode::Fs2Only;
        const storage::DiskModel &disk = store_.indexDisk();
        stages.indexTime = disk.accessTime() +
            disk.transferTime(stored.index.image().size()) +
            scan.faultTicks;
        obs::ScopedSpan span(obs.tracer, "disk.index_stream", root);
        span.attr("bytes",
                  static_cast<std::uint64_t>(
                      stored.index.image().size()));
        span.attr("corrupt_pages", static_cast<std::uint64_t>(
                      scan.corruptPages));
        span.attr("unreadable",
                  static_cast<std::uint64_t>(scan.unreadable ? 1 : 0));
        span.setSimTicks(stages.indexTime);
    }
    SearchMode mode = response.mode;

    if (usesFs1(mode) && scan.fromCache) {
        // L2b survivor replay: the memoized Fs1Result carries the
        // scan statistics verbatim, so the payload is bit-identical
        // to a recomputation, but no disk read or FS1 pass happens —
        // the breakdown charges only the modeled memo lookup.
        response.indexEntriesScanned = fs1.entriesScanned;
        response.fs1Hits = fs1.ordinals.size();
        stages.cacheTime += config_.cache.survivorHitCost;
        obs::ScopedSpan span(obs.tracer, "crs.survivor_replay", root);
        span.attr("hits", response.fs1Hits);
        span.setSimTicks(config_.cache.survivorHitCost);
    } else if (usesFs1(mode)) {
        response.indexEntriesScanned = fs1.entriesScanned;
        response.fs1Hits = fs1.ordinals.size();
        // The index file streams from disk while FS1 scans on the
        // fly.  modelRead() consults the L1 track cache when the
        // store has one (a resident index skips the seek and streams
        // at memory speed — FS1's own busy time then dominates); with
        // the cache disabled it is exactly accessTime + transferTime.
        const storage::DiskModel &disk = store_.indexDisk();
        storage::ReadTiming rt = disk.modelRead(
            stored.indexFileOffset, fs1.bytesScanned, obs);
        stages.indexTime = rt.access +
            std::max(rt.transfer, fs1.busyTime) + scan.faultTicks;
        obs::ScopedSpan span(obs.tracer, "disk.index_stream", root);
        span.attr("bytes", fs1.bytesScanned);
        if (rt.cacheHit)
            span.attr("cache_hit", static_cast<std::uint64_t>(1));
        span.setSimTicks(stages.indexTime);
    }

    pif::Encoder encoder;
    pif::EncodedArgs q_args = encoder.encodeArgs(q_arena, goal,
                                                 pif::Side::Query);
    term::PredicateId pred = goalPredicate(q_arena, goal);

    switch (mode) {
      case SearchMode::SoftwareOnly: {
        // The CRS streams the whole clause file and performs partial
        // matching in software before full unification.
        obs::ScopedSpan span(obs.tracer, "crs.software_scan", root);
        unify::PifMatcher matcher(unify::PifMatchConfig{
            config_.fs2.level, config_.fs2.crossBinding});
        Tick scan_cost = 0;
        for (std::size_t i = 0; i < file.clauseCount(); ++i) {
            unify::PifMatchResult m = matcher.match(file.decodeArgs(i),
                                                    q_args);
            scan_cost += config_.host.perClause +
                config_.host.perOp * m.datapathOps();
            ++response.clausesExamined;
            for (std::size_t o = 0; o < unify::kTueOpCount; ++o)
                response.filterOps[o] += m.opCounts[o];
            if (m.hit)
                response.candidates.push_back(
                    static_cast<std::uint32_t>(i));
        }
        Tick transfer = data_disk.transferTime(file.image().size());
        stages.filterTime = data_disk.accessTime() +
            std::max(transfer, scan_cost);
        span.attr("clauses", response.clausesExamined);
        span.setSimTicks(stages.filterTime);
        break;
      }

      case SearchMode::Fs1Only: {
        response.candidates = std::move(fs1.ordinals);
        // Fetch the candidate clauses: one sequential sweep of the
        // spanned region, or a seek per candidate — whichever the
        // disk finishes sooner.
        if (!response.candidates.empty()) {
            const auto &first =
                file.record(response.candidates.front());
            const auto &last = file.record(response.candidates.back());
            std::uint64_t span_bytes =
                last.offset + last.length - first.offset;
            std::uint64_t selected = 0;
            for (std::uint32_t c : response.candidates)
                selected += file.record(c).length;
            // The sweep is cache-aware: the candidate span's tracks
            // may be resident in the L1 track cache (and are admitted
            // on a miss — every candidate byte lives in them).  The
            // seek-per-candidate alternative scatters single-sector
            // reads, which a track buffer does not accelerate.
            storage::ReadTiming rt = data_disk.modelRead(
                stored.clauseFileOffset + first.offset, span_bytes,
                obs);
            Tick sweep = rt.total();
            Tick seeks = data_disk.accessTime() *
                response.candidates.size() +
                data_disk.transferTime(selected);
            stages.filterTime = std::min(sweep, seeks);
            obs::ScopedSpan span(obs.tracer, "disk.candidate_fetch",
                                 root);
            span.attr("candidates",
                      static_cast<std::uint64_t>(
                          response.candidates.size()));
            span.attr("strategy", seeks < sweep
                      ? std::string("seek_per_candidate")
                      : std::string("sweep"));
            span.setSimTicks(stages.filterTime);
        }
        break;
      }

      case SearchMode::Fs2Only: {
        fs2::Fs2Engine engine(config_.fs2);
        engine.setObserver(obs, root, request.trace.maxDetailSpans);
        engine.setQuery(q_args, pred);
        fs2::Fs2SearchResult r = engine.search(file, &data_disk,
                                               stored.clauseFileOffset);
        response.candidates = r.acceptedOrdinals;
        response.clausesExamined = r.clausesExamined;
        response.filterOps = r.ops;
        response.resultOverflow = r.resultOverflow;
        response.satisfiersRequeued = r.satisfiersDropped;
        stages.filterTime = r.elapsed;
        break;
      }

      case SearchMode::TwoStage: {
        fs2::Fs2Engine engine(config_.fs2);
        engine.setObserver(obs, root, request.trace.maxDetailSpans);
        engine.setQuery(q_args, pred);
        fs2::Fs2SearchResult r = engine.searchSelected(
            file, fs1.ordinals, &data_disk, stored.clauseFileOffset);
        response.candidates = r.acceptedOrdinals;
        response.clausesExamined = r.clausesExamined;
        response.filterOps = r.ops;
        response.resultOverflow = r.resultOverflow;
        response.satisfiersRequeued = r.satisfiersDropped;
        stages.filterTime = r.elapsed;
        break;
      }
    }

    // resultOverflow / satisfiersRequeued: satisfiers past the Result
    // Memory's capacity were never captured (the real 6-bit counter
    // would wrap and silently overwrite slot 0); they are requeued
    // through the host's ordinary candidate fetch, which hostUnify()
    // already bills per candidate.  The response fields alone carry
    // the signal — overflow is data-dependent and occurs in fault-free
    // runs, so a new span or counter here would perturb the trace and
    // metrics dumps of clean runs.

    if (config_.faults != nullptr) {
        // Model the fault exposure of this query's data-disk reads.
        // A transient error costs a re-seek per retry; a corrupt page
        // is caught by its checksum and recovered with a re-seek plus
        // a page re-transfer; a permanently unreadable chunk is a
        // typed I/O failure.
        std::uint64_t range_start = 0;
        std::uint64_t range_len = 0;
        if (mode == SearchMode::SoftwareOnly ||
            mode == SearchMode::Fs2Only) {
            range_len = file.image().size();
        } else {
            const std::vector<std::uint32_t> &fetched =
                mode == SearchMode::TwoStage ? fs1.ordinals
                                             : response.candidates;
            if (!fetched.empty()) {
                const auto &first = file.record(fetched.front());
                const auto &last = file.record(fetched.back());
                range_start = first.offset;
                range_len = last.offset + last.length - first.offset;
            }
        }
        if (range_len > 0) {
            support::RangeFaults rf = config_.faults->rangeFaults(
                "disk.data", stored.clauseFileOffset + range_start,
                range_len, config_.retry.maxAttempts);
            if (rf.permanent)
                throw IoError(data_disk.geometry().name,
                              "clause data unreadable after " +
                              std::to_string(
                                  config_.retry.maxAttempts) +
                              " attempts");
            Tick penalty = static_cast<Tick>(rf.retries) *
                data_disk.accessTime() + rf.delayTicks;
            penalty += static_cast<Tick>(rf.corruptChunks) *
                (data_disk.accessTime() +
                 data_disk.transferTime(support::kChecksumPageBytes));
            stages.filterTime += penalty;
            if (obs.metrics != nullptr) {
                if (rf.retries > 0)
                    obs.metrics->counter(
                        "disk.retry.attempts",
                        "chunk re-reads after transient errors") +=
                        rf.retries;
                if (rf.corruptChunks > 0)
                    obs.metrics->counter(
                        "disk.retry.reread_pages",
                        "data pages re-read after checksum "
                        "failures") += rf.corruptChunks;
            }
            if (penalty > 0) {
                obs::ScopedSpan span(obs.tracer, "disk.fault_recovery",
                                     root);
                span.attr("retries", static_cast<std::uint64_t>(
                              rf.retries));
                span.attr("reread_pages", static_cast<std::uint64_t>(
                              rf.corruptChunks));
                span.setSimTicks(penalty);
            }
        }
    }

    // Table 1's operation mix, as cumulative per-op counters.
    if (mode == SearchMode::Fs2Only || mode == SearchMode::TwoStage) {
        for (std::size_t o = 0; o < unify::kTueOpCount; ++o) {
            if (response.filterOps[o] > 0) {
                obs.metrics->counter(
                    std::string("fs2.op.") +
                        unify::tueOpName(
                            static_cast<unify::TueOp>(o)),
                    "TUE datapath operations (Table 1)") +=
                    response.filterOps[o];
            }
        }
    }

    {
        obs::ScopedSpan span(obs.tracer, "crs.host_unify", root);
        hostUnify(stored, q_arena, goal, response);
        span.attr("candidates", static_cast<std::uint64_t>(
                      response.candidates.size()));
        span.attr("answers", static_cast<std::uint64_t>(
                      response.answers.size()));
        span.setSimTicks(stages.hostUnifyTime);
    }
    obs.metrics->counter("crs.host_unify_clauses",
                         "candidates fully unified on the host") +=
        response.candidates.size();

    // The one place total latency is derived from the stages.
    response.elapsed = stages.serviceTime();
}

void
ClauseRetrievalServer::accountQuery(RetrievalResponse &response,
                                    obs::ScopedSpan &root)
{
    ++metrics_.counter("crs.queries", "retrievals served");
    metrics_.counter("crs.candidates",
                     "candidates across all retrievals") +=
        response.candidates.size();
    metrics_.counter("crs.answers", "answers across all retrievals") +=
        response.answers.size();
    metrics_.counter("crs.false_drops",
                     "candidates rejected by full unification") +=
        response.falseDrops();
    ++metrics_.counter(std::string("crs.mode.") +
                       searchModeSlug(response.mode),
                       "retrievals served in this mode");
    // Degradation counters exist only once a query degrades, so a
    // clean run's metrics dump is bit-identical to a fault-free build.
    if (response.degraded) {
        ++metrics_.counter("crs.degraded.queries",
                           "retrievals downgraded to a full scan");
        metrics_.counter("crs.degraded.corrupt_index_pages",
                         "index pages that failed their CRC check") +=
            response.corruptIndexPages;
    }
    metrics_.histogram("crs.elapsed_us", latencyBoundsUs(),
                       "retrieval latency, simulated us")
        .record(static_cast<double>(response.elapsed) / kTicksPerUs);
    if (response.breakdown.queueWait > 0) {
        metrics_.histogram("crs.queue_wait_us", latencyBoundsUs(),
                           "batch pipeline queue wait, simulated us")
            .record(static_cast<double>(response.breakdown.queueWait) /
                    kTicksPerUs);
    }

    if (root.active()) {
        response.traceSpan = root.id();
        root.attr("candidates", static_cast<std::uint64_t>(
                      response.candidates.size()));
        root.attr("answers", static_cast<std::uint64_t>(
                      response.answers.size()));
        root.attr("queue_wait_ticks", response.breakdown.queueWait);
        if (response.degraded)
            root.attr("degraded", static_cast<std::uint64_t>(1));
        root.setSimTicks(response.breakdown.total());
    }
}

} // namespace clare::crs
