#include "crs/store.hh"

#include "support/crc32.hh"
#include "support/logging.hh"

namespace clare::crs {

PredicateStore::PredicateStore(const term::SymbolTable &symbols,
                               scw::CodewordGenerator generator,
                               storage::DiskGeometry geometry)
    : symbols_(symbols), generator_(std::move(generator)),
      writer_(symbols_), dataDisk_(geometry), indexDisk_(geometry),
      mvccMutex_(std::make_unique<std::shared_mutex>())
{
}

void
PredicateStore::addProgram(const term::Program &program)
{
    clare_assert(!finalized_, "store already finalized");
    for (const term::PredicateId &pred : program.predicates()) {
        if (preds_.count(pred))
            clare_fatal("predicate %s/%u stored twice",
                        symbols_.name(pred.functor).c_str(), pred.arity);

        storage::ClauseFileBuilder builder(writer_);
        std::vector<scw::Signature> signatures;
        std::size_t rules = 0;
        const auto &ordinals = program.clausesOf(pred);
        for (std::size_t i : ordinals) {
            const term::Clause &clause = program.clause(i);
            builder.add(clause);
            signatures.push_back(generator_.encode(clause.arena(),
                                                   clause.head()));
            if (!clause.isFact())
                ++rules;
        }

        StoredPredicate stored;
        stored.clauses = builder.finish();
        stored.index = scw::SecondaryFile::build(generator_, signatures,
                                                 stored.clauses);
        stored.ruleFraction = ordinals.empty()
            ? 0.0
            : static_cast<double>(rules) /
              static_cast<double>(ordinals.size());
        preds_.emplace(pred, std::move(stored));
        order_.push_back(pred);
    }
}

void
PredicateStore::addStored(const term::PredicateId &pred,
                          storage::ClauseFile clauses,
                          scw::SecondaryFile index,
                          std::shared_ptr<const scw::BitSlicedIndex>
                              sliced)
{
    clare_assert(!finalized_, "store already finalized");
    if (preds_.count(pred))
        clare_fatal("predicate %s/%u stored twice",
                    symbols_.name(pred.functor).c_str(), pred.arity);
    StoredPredicate stored;
    std::size_t rules = 0;
    for (std::size_t i = 0; i < clauses.clauseCount(); ++i)
        rules += clauses.record(i).isFact() ? 0 : 1;
    stored.ruleFraction = clauses.clauseCount() == 0
        ? 0.0
        : static_cast<double>(rules) /
          static_cast<double>(clauses.clauseCount());
    stored.clauses = std::move(clauses);
    stored.index = std::move(index);
    stored.sliced = std::move(sliced);
    preds_.emplace(pred, std::move(stored));
    order_.push_back(pred);
}

void
PredicateStore::buildSlicedIndexes()
{
    for (auto &kv : preds_) {
        StoredPredicate &stored = kv.second;
        if (stored.sliced != nullptr)
            continue;
        stored.sliced = std::make_shared<scw::BitSlicedIndex>(
            scw::BitSlicedIndex::build(generator_, stored.index));
    }
}

void
PredicateStore::finalize()
{
    clare_assert(!finalized_, "store already finalized");
    std::vector<std::uint8_t> data_image;
    std::vector<std::uint8_t> index_image;
    for (const term::PredicateId &pred : order_) {
        StoredPredicate &stored = preds_.at(pred);
        stored.clauseFileOffset = data_image.size();
        data_image.insert(data_image.end(),
                          stored.clauses.image().begin(),
                          stored.clauses.image().end());
        stored.indexFileOffset = index_image.size();
        index_image.insert(index_image.end(),
                           stored.index.image().begin(),
                           stored.index.image().end());
        stored.indexPageCrcs = support::pageChecksums(
            stored.index.image().data(), stored.index.image().size());
    }
    dataDisk_.load(std::move(data_image));
    indexDisk_.load(std::move(index_image));
    finalized_ = true;
}

bool
PredicateStore::has(const term::PredicateId &pred) const
{
    if (preds_.count(pred) != 0)
        return true;
    std::shared_lock lock(*mvccMutex_);
    return versions_.count(pred) != 0;
}

const StoredPredicate &
PredicateStore::predicate(const term::PredicateId &pred) const
{
    {
        // Version chains only append, so the head version (and the
        // reference) stays alive for the store's lifetime even after
        // newer commits supersede it.
        std::shared_lock lock(*mvccMutex_);
        auto it = versions_.find(pred);
        if (it != versions_.end() && !it->second.empty())
            return *it->second.back().second;
    }
    auto it = preds_.find(pred);
    if (it == preds_.end())
        clare_fatal("predicate %s/%u is not stored",
                    symbols_.name(pred.functor).c_str(), pred.arity);
    return it->second;
}

std::shared_ptr<const StoredPredicate>
PredicateStore::predicateVersion(const term::PredicateId &pred,
                                 std::optional<std::uint64_t> generation)
    const
{
    {
        std::shared_lock lock(*mvccMutex_);
        auto it = versions_.find(pred);
        if (it != versions_.end()) {
            const auto &chain = it->second;
            // Newest version with generation <= the pin, scanning the
            // (short, append-only) chain backward.
            for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit)
                if (!generation || rit->first <= *generation)
                    return rit->second;
            // Every chained version is newer than the pin: fall back
            // to the generation-0 base below, if one exists.
        }
    }
    auto it = preds_.find(pred);
    if (it == preds_.end())
        return nullptr;
    // Generation 0 lives in preds_; alias the node (std::map nodes are
    // address-stable) with an empty control block — the store itself
    // keeps it alive.
    return std::shared_ptr<const StoredPredicate>(
        std::shared_ptr<const void>(), &it->second);
}

std::uint64_t
PredicateStore::headGeneration() const
{
    std::shared_lock lock(*mvccMutex_);
    return headGeneration_;
}

std::uint64_t
PredicateStore::publish(
    std::map<term::PredicateId,
             std::shared_ptr<StoredPredicate>> versions)
{
    std::unique_lock lock(*mvccMutex_);
    std::uint64_t gen = ++headGeneration_;
    for (auto &kv : versions) {
        kv.second->generation = gen;
        auto &chain = versions_[kv.first];
        bool brand_new = chain.empty() && preds_.count(kv.first) == 0;
        chain.emplace_back(gen, std::shared_ptr<const StoredPredicate>(
                                    std::move(kv.second)));
        if (brand_new)
            order_.push_back(kv.first);
    }
    return gen;
}

std::uint64_t
PredicateStore::dataBytes() const
{
    std::uint64_t n = 0;
    for (const auto &kv : preds_)
        n += kv.second.clauses.image().size();
    return n;
}

std::uint64_t
PredicateStore::indexBytes() const
{
    std::uint64_t n = 0;
    for (const auto &kv : preds_)
        n += kv.second.index.image().size();
    return n;
}

} // namespace clare::crs
