#include "crs/goal_cache.hh"

namespace clare::crs {

GoalCache::GoalCache(std::size_t capacity) : cache_(capacity)
{
}

std::optional<RetrievalResponse>
GoalCache::find(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry *entry = cache_.get(key))
        return entry->response;
    return std::nullopt;
}

bool
GoalCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.contains(key);
}

bool
GoalCache::put(const std::string &key, const term::PredicateId &pred,
               const RetrievalResponse &response)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.put(key, Entry{pred, response});
}

std::size_t
GoalCache::invalidatePredicate(const term::PredicateId &pred)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.eraseIf([&](const std::string &, const Entry &entry) {
        return entry.pred == pred;
    });
}

std::size_t
GoalCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

void
GoalCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

} // namespace clare::crs
