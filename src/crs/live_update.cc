#include "crs/live_update.hh"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "crs/store_io.hh"
#include "storage/file_io.hh"
#include "support/crc32.hh"
#include "support/errors.hh"
#include "support/logging.hh"
#include "term/term_reader.hh"
#include "unify/unify.hh"

namespace clare::crs {

namespace fs = std::filesystem;

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    return static_cast<std::uint32_t>(in[at]) |
        static_cast<std::uint32_t>(in[at + 1]) << 8 |
        static_cast<std::uint32_t>(in[at + 2]) << 16 |
        static_cast<std::uint32_t>(in[at + 3]) << 24;
}

storage::Wal::RecordKind
walKind(const LiveOp &op)
{
    return op.kind == LiveOp::Kind::Retract
        ? storage::Wal::RecordKind::Retract
        : storage::Wal::RecordKind::Assert;
}

/** Serialize one op into its WAL payload (see Wal::RecordKind). */
std::vector<std::uint8_t>
encodePayload(const LiveOp &op, const term::SymbolTable &symbols)
{
    std::vector<std::uint8_t> payload;
    if (op.kind == LiveOp::Kind::Retract) {
        const std::string name = symbols.name(op.pred.functor);
        putU32(payload, op.pred.arity);
        putU32(payload, op.ordinal);
        putU32(payload, static_cast<std::uint32_t>(name.size()));
        payload.insert(payload.end(), name.begin(), name.end());
    } else {
        payload.push_back(op.kind == LiveOp::Kind::Asserta ? 1 : 0);
        putU32(payload, static_cast<std::uint32_t>(op.text.size()));
        payload.insert(payload.end(), op.text.begin(), op.text.end());
    }
    return payload;
}

/** Build the right-nested ','/2 conjunction of a clause body. */
term::TermRef
bodyConjunction(term::TermArena &arena, term::SymbolTable &symbols,
                const term::Clause &clause, term::VarId offset)
{
    if (clause.isFact())
        return arena.makeAtom(symbols.intern("true"));
    term::TermRef conj = arena.import(clause.arena(),
                                      clause.body().back(), offset);
    for (std::size_t i = clause.body().size() - 1; i-- > 0;) {
        term::TermRef g = arena.import(clause.arena(),
                                       clause.body()[i], offset);
        term::TermRef args[] = {g, conj};
        conj = arena.makeStruct(symbols.intern(","), args);
    }
    return conj;
}

/** Durably write a small file in one shot (the CURRENT.tmp path). */
void
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw IoError(path, "cannot open for writing");
    if (!content.empty() &&
        std::fwrite(content.data(), 1, content.size(), f) !=
            content.size()) {
        std::fclose(f);
        throw IoError(path, "short write");
    }
    storage::syncFile(f, path);
    std::fclose(f);
}

} // namespace

LiveStore::LiveStore(PredicateStore &store, term::SymbolTable &symbols,
                     const std::string &wal_path,
                     std::uint64_t applied_lsn,
                     const support::FaultInjector *faults)
    : store_(store), symbols_(symbols), writer_(symbols),
      faults_(faults),
      wal_(std::make_unique<storage::Wal>(wal_path, faults)),
      appliedLsn_(applied_lsn)
{
    for (const term::PredicateId &pred : store_.predicates()) {
        auto v = store_.predicateVersion(pred);
        if (v != nullptr && v->sliced != nullptr) {
            storeSliced_ = true;
            break;
        }
    }

    // A crash during checkpoint's reset() can leave a partial WAL
    // header, which recovery rewrites with baseLsn = 0 while the
    // manifest watermark already sits at appliedLsn.  Left alone, the
    // next commits would take LSNs below the watermark and the *next*
    // recovery would skip them as already applied — silent loss of
    // committed data.  Rebase the empty log onto the watermark before
    // accepting writes.  (A log with recovered records never needs
    // this: its tail is exactly the watermark the manifest recorded.)
    if (wal_->recovered().empty() && wal_->baseLsn() < appliedLsn_)
        wal_->reset(appliedLsn_);

    // Recovery replay: every committed record past the checkpoint
    // watermark flows through the exact commit path a live writer
    // uses, one published generation per commit group.  Records below
    // the watermark are already folded into the loaded store.
    std::vector<LiveOp> group;
    for (const storage::Wal::Record &rec : wal_->recovered()) {
        const bool applied = rec.lsn < appliedLsn_;
        switch (rec.kind) {
        case storage::Wal::RecordKind::Assert:
        case storage::Wal::RecordKind::Retract:
            if (!applied)
                group.push_back(decodeOp(rec));
            break;
        case storage::Wal::RecordKind::Commit:
            if (!group.empty()) {
                commitOps(std::move(group), /*log=*/false);
                ++recoveredCommits_;
            }
            group.clear();
            break;
        case storage::Wal::RecordKind::Checkpoint:
            group.clear();
            break;
        }
    }
}

LiveOp
LiveStore::decodeOp(const storage::Wal::Record &rec)
{
    LiveOp op;
    const std::vector<std::uint8_t> &p = rec.payload;
    if (rec.kind == storage::Wal::RecordKind::Retract) {
        if (p.size() < 12)
            throw CorruptionError(wal_->path(), kNoFilePosition,
                                  rec.lsn, "short retract payload");
        op.kind = LiveOp::Kind::Retract;
        op.pred.arity = getU32(p, 0);
        op.ordinal = getU32(p, 4);
        std::uint32_t len = getU32(p, 8);
        if (p.size() != 12 + static_cast<std::size_t>(len))
            throw CorruptionError(wal_->path(), kNoFilePosition,
                                  rec.lsn, "malformed retract payload");
        std::string name(p.begin() + 12, p.end());
        op.pred.functor = symbols_.intern(name);
        return op;
    }
    if (p.size() < 5)
        throw CorruptionError(wal_->path(), kNoFilePosition, rec.lsn,
                              "short assert payload");
    op.kind = p[0] != 0 ? LiveOp::Kind::Asserta : LiveOp::Kind::Assertz;
    std::uint32_t len = getU32(p, 1);
    if (p.size() != 5 + static_cast<std::size_t>(len))
        throw CorruptionError(wal_->path(), kNoFilePosition, rec.lsn,
                              "malformed assert payload");
    op.text.assign(p.begin() + 5, p.end());
    term::TermReader reader(symbols_);
    op.pred = reader.parseClause(op.text).predicate();
    return op;
}

LiveStore::Update
LiveStore::begin()
{
    return Update(*this);
}

std::uint64_t
LiveStore::assertz(const term::Clause &clause)
{
    Update txn = begin();
    txn.assertz(clause);
    return txn.commit();
}

std::uint64_t
LiveStore::asserta(const term::Clause &clause)
{
    Update txn = begin();
    txn.asserta(clause);
    return txn.commit();
}

std::optional<std::uint64_t>
LiveStore::retract(const term::TermArena &arena, term::TermRef pattern)
{
    Update txn = begin();
    if (!txn.retract(arena, pattern)) {
        txn.abort();
        return std::nullopt;
    }
    return txn.commit();
}

std::uint64_t
LiveStore::commitOps(std::vector<LiveOp> ops, bool log)
{
    if (ops.empty())
        return store_.headGeneration();

    if (log) {
        // Write-ahead: the records and the Commit boundary are durable
        // before any in-memory state changes.  A CrashError (or real
        // IoError) here propagates with nothing published — recovery
        // sees either no trace of the transaction or all of it.
        for (const LiveOp &op : ops)
            wal_->append(walKind(op), encodePayload(op, symbols_));
        wal_->commit();
    }

    // Group per predicate, preserving op order within each group.
    std::map<term::PredicateId, std::vector<const LiveOp *>> groups;
    for (const LiveOp &op : ops)
        groups[op.pred].push_back(&op);

    std::map<term::PredicateId, std::shared_ptr<StoredPredicate>>
        versions;
    for (const auto &[pred, group] : groups) {
        std::shared_ptr<const StoredPredicate> prev =
            store_.predicateVersion(pred);
        bool assertz_only = true;
        for (const LiveOp *op : group)
            if (op->kind != LiveOp::Kind::Assertz)
                assertz_only = false;
        // Pure appends ride the composite fast path: base images are
        // shared, only the tail is compiled and transposed.  Anything
        // order-changing (asserta) or removing (retract) triggers a
        // minor compaction of this one predicate.
        if (assertz_only && prev != nullptr)
            versions.emplace(pred, buildComposite(*prev, group));
        else
            versions.emplace(pred, buildCompacted(prev.get(), group));
    }

    std::uint64_t gen = store_.publish(std::move(versions));
    ++commits_;
    // Invalidate after publish: a reader racing the invalidation can
    // at worst re-cache a pre-commit result under the *old*
    // generation's key, which post-commit lookups never consult (the
    // goal/survivor keys embed the pinned version's generation).
    if (sink_ != nullptr)
        for (const auto &[pred, group] : groups)
            sink_->invalidatePredicate(pred);
    return gen;
}

std::shared_ptr<StoredPredicate>
LiveStore::buildComposite(const StoredPredicate &prev,
                          const std::vector<const LiveOp *> &ops)
{
    term::TermReader reader(symbols_);
    const scw::CodewordGenerator &gen = store_.generator();

    // Compile the appended tail exactly as a from-scratch build would
    // compile these clause positions: ordinals continue the base
    // file's, so the concatenated image is byte-identical to a full
    // rebuild (ClauseFile::concat asserts the contract).
    storage::ClauseFileBuilder tail_builder(
        writer_,
        static_cast<std::uint32_t>(prev.clauses.clauseCount()));
    std::vector<scw::Signature> sigs;
    for (const LiveOp *op : ops) {
        term::Clause clause = reader.parseClause(op->text);
        sigs.push_back(gen.encode(clause.arena(), clause.head()));
        tail_builder.add(clause);
    }
    storage::ClauseFile tail = tail_builder.finish();

    auto out = std::make_shared<StoredPredicate>();
    out->clauses = storage::ClauseFile::concat(prev.clauses, tail);

    // Composite secondary file: the base entry image plus the tail
    // entries serialized against the composite clause directory —
    // again byte-identical to SecondaryFile::build over all clauses.
    const std::size_t entry_bytes = gen.signatureBytes() + 8;
    std::vector<std::uint8_t> image = prev.index.image();
    const std::size_t base_count = prev.clauses.clauseCount();
    for (std::size_t k = 0; k < sigs.size(); ++k) {
        gen.serialize(sigs[k], image);
        const storage::ClauseRecord &rec =
            out->clauses.record(base_count + k);
        putU32(image, rec.offset);
        putU32(image, rec.ordinal);
    }
    const std::size_t total = out->clauses.clauseCount();
    out->index = scw::SecondaryFile::fromImage(std::move(image), total,
                                               entry_bytes);

    if (prev.sliced != nullptr) {
        // LSM-flavored maintenance: share the base plane untouched and
        // transpose only [baseEntries, total) into a delta mini-plane.
        // FS1 scans both parts and sums the bytes before the one
        // tick conversion, so the split is tick-identical to scanning
        // one full plane.
        out->sliced = prev.sliced;
        const std::size_t base_entries = prev.baseEntries == 0
            ? prev.index.entryCount()
            : prev.baseEntries;
        out->baseEntries = base_entries;
        std::vector<std::uint8_t> delta_image(
            out->index.image().begin() +
                static_cast<std::ptrdiff_t>(base_entries * entry_bytes),
            out->index.image().end());
        scw::SecondaryFile delta = scw::SecondaryFile::fromImage(
            std::move(delta_image), total - base_entries, entry_bytes);
        out->deltaSliced = std::make_shared<const scw::BitSlicedIndex>(
            scw::BitSlicedIndex::build(gen, delta));
    }
    // A row-major predicate (no base plane) stays row-major: scans of
    // the composite entry image are already identical to a rebuild.

    finishVersion(*out, &prev);
    return out;
}

std::shared_ptr<StoredPredicate>
LiveStore::buildCompacted(const StoredPredicate *prev,
                          const std::vector<const LiveOp *> &ops)
{
    // Replay the ops over the predicate's evolving source-text list
    // (the same sequence Update resolved retract ordinals against),
    // then rebuild the predicate from scratch — a minor compaction.
    std::vector<std::string> texts;
    if (prev != nullptr)
        for (std::size_t i = 0; i < prev->clauses.clauseCount(); ++i)
            texts.push_back(prev->clauses.sourceText(i));
    for (const LiveOp *op : ops) {
        switch (op->kind) {
        case LiveOp::Kind::Assertz:
            texts.push_back(op->text);
            break;
        case LiveOp::Kind::Asserta:
            texts.insert(texts.begin(), op->text);
            break;
        case LiveOp::Kind::Retract:
            clare_assert(op->ordinal < texts.size(),
                         "retract ordinal %u outside %zu clauses",
                         op->ordinal, texts.size());
            texts.erase(texts.begin() + op->ordinal);
            break;
        }
    }

    term::TermReader reader(symbols_);
    const scw::CodewordGenerator &gen = store_.generator();
    storage::ClauseFileBuilder builder(writer_);
    std::vector<scw::Signature> sigs;
    for (const std::string &text : texts) {
        term::Clause clause = reader.parseClause(text);
        sigs.push_back(gen.encode(clause.arena(), clause.head()));
        builder.add(clause);
    }
    auto out = std::make_shared<StoredPredicate>();
    out->clauses = builder.finish();
    out->index = scw::SecondaryFile::build(gen, sigs, out->clauses);
    // Full rebuild, full plane — no delta, base coverage resets.
    const bool want_plane =
        prev != nullptr ? prev->sliced != nullptr : storeSliced_;
    if (want_plane)
        out->sliced = std::make_shared<const scw::BitSlicedIndex>(
            scw::BitSlicedIndex::build(gen, out->index));
    finishVersion(*out, prev);
    return out;
}

void
LiveStore::finishVersion(StoredPredicate &v,
                         const StoredPredicate *prev) const
{
    std::size_t rules = 0;
    for (std::size_t i = 0; i < v.clauses.clauseCount(); ++i)
        rules += v.clauses.record(i).isFact() ? 0 : 1;
    v.ruleFraction = v.clauses.clauseCount() == 0
        ? 0.0
        : static_cast<double>(rules) /
          static_cast<double>(v.clauses.clauseCount());
    v.indexPageCrcs = support::pageChecksums(v.index.image().data(),
                                             v.index.image().size());
    if (prev != nullptr) {
        v.clauseFileOffset = prev->clauseFileOffset;
        v.indexFileOffset = prev->indexFileOffset;
    }
}

void
LiveStore::checkpoint(const std::string &root)
{
    std::lock_guard<std::mutex> lock(writerMutex_);
    const std::uint64_t applied = wal_->tailLsn();
    const std::string name = "ckpt-" + std::to_string(applied);
    const std::string directory = root + "/" + name;

    StoreWalInfo info;
    info.present = true;
    info.appliedLsn = applied;
    saveStore(directory, store_, symbols_, &info);

    // Byte-granular kill realization: saveStore writes its files in a
    // deterministic order, so a crash "at byte N of the checkpoint
    // stream" is the file containing N truncated there and everything
    // after it never written.  The sweep runs post-hoc — equivalent to
    // crashing mid-write because nothing before the CURRENT flip is
    // reachable by a recovering process.
    std::vector<std::string> order;
    order.push_back(directory + "/symbols.tbl");
    for (const term::PredicateId &pred : store_.predicates()) {
        const std::string stem =
            directory + "/" + predicateFileStem(pred);
        order.push_back(stem + ".kbc");
        order.push_back(stem + ".idx");
    }
    order.push_back(directory + "/manifest.txt");
    if (faults_ != nullptr) {
        for (std::size_t i = 0; i < order.size(); ++i) {
            std::error_code ec;
            const std::uint64_t size = fs::file_size(order[i], ec);
            if (ec)
                throw IoError(order[i], "cannot stat checkpoint file: " +
                              ec.message());
            if (auto kill = faults_->killOffset("checkpoint",
                                                ckptCumulative_,
                                                ckptCumulative_ + size)) {
                fs::resize_file(order[i], *kill - ckptCumulative_, ec);
                for (std::size_t j = i + 1; j < order.size(); ++j)
                    fs::remove(order[j], ec);
                throw CrashError("checkpoint", *kill);
            }
            ckptCumulative_ += size;
        }
    }

    // Durability ordering: every checkpoint byte must be on stable
    // storage before CURRENT can name the directory, or a power loss
    // could publish a torn checkpoint.
    for (const std::string &file : order) {
        std::FILE *f = std::fopen(file.c_str(), "rb");
        if (f == nullptr)
            throw IoError(file, "cannot reopen checkpoint file to sync");
        storage::syncFile(f, file);
        std::fclose(f);
    }
    storage::syncDirectory(directory);

    // The commit point: CURRENT.tmp carries the checkpoint name and is
    // renamed over CURRENT atomically.  Before the rename a recovering
    // process sees the old store + the full WAL; after it, the new
    // store + records above the watermark (none yet).  No third state.
    const std::string content = name + "\n";
    const std::string tmp = root + "/CURRENT.tmp";
    if (faults_ != nullptr) {
        if (auto kill = faults_->killOffset(
                "checkpoint", ckptCumulative_,
                ckptCumulative_ + content.size())) {
            writeFile(tmp, content.substr(0, *kill - ckptCumulative_));
            throw CrashError("checkpoint", *kill);
        }
    }
    writeFile(tmp, content);
    ckptCumulative_ += content.size();
    std::error_code ec;
    fs::rename(tmp, root + "/CURRENT", ec);
    if (ec)
        throw IoError(root + "/CURRENT",
                      "cannot publish checkpoint: " + ec.message());
    // The rename is the commit point; fsync the directory so it
    // survives power loss too.
    storage::syncDirectory(root);

    // Applied records are folded into the checkpoint; restart the log
    // (kill site "wal.checkpoint" — a crash here leaves either the
    // old intact log, whose applied records replay is told to skip,
    // or a clean empty one).
    wal_->reset(applied);
    appliedLsn_ = applied;

    // Best-effort: drop superseded checkpoint directories.
    for (const auto &dirent : fs::directory_iterator(root, ec)) {
        const std::string base = dirent.path().filename().string();
        if (base.rfind("ckpt-", 0) == 0 && base != name) {
            std::error_code rm;
            fs::remove_all(dirent.path(), rm);
        }
    }
}

LiveStore::Update::Update(LiveStore &owner)
    : owner_(&owner), lock_(owner.writerMutex_)
{
}

LiveStore::Update::~Update()
{
    if (active_ && lock_.owns_lock())
        abort();
}

void
LiveStore::Update::abort()
{
    clare_assert(active_, "abort of a finished update");
    ops_.clear();
    working_.clear();
    active_ = false;
    if (lock_.owns_lock())
        lock_.unlock();
}

std::uint64_t
LiveStore::Update::commit()
{
    clare_assert(active_, "commit of a finished update");
    active_ = false;
    std::vector<LiveOp> ops = std::move(ops_);
    working_.clear();
    // On CrashError the update is already finished; the lock releases
    // via the unique_lock on unwind, and nothing was published.
    std::uint64_t gen = owner_->commitOps(std::move(ops), /*log=*/true);
    if (lock_.owns_lock())
        lock_.unlock();
    return gen;
}

std::vector<std::string> &
LiveStore::Update::textsOf(const term::PredicateId &pred)
{
    auto it = working_.find(pred);
    if (it != working_.end())
        return it->second;
    std::vector<std::string> texts;
    std::shared_ptr<const StoredPredicate> prev =
        owner_->store_.predicateVersion(pred);
    if (prev != nullptr)
        for (std::size_t i = 0; i < prev->clauses.clauseCount(); ++i)
            texts.push_back(prev->clauses.sourceText(i));
    return working_.emplace(pred, std::move(texts)).first->second;
}

void
LiveStore::Update::assertz(const term::Clause &clause)
{
    clare_assert(active_, "assert on a finished update");
    LiveOp op;
    op.kind = LiveOp::Kind::Assertz;
    op.pred = clause.predicate();
    op.text = owner_->writer_.writeClause(clause);
    textsOf(op.pred).push_back(op.text);
    ops_.push_back(std::move(op));
}

void
LiveStore::Update::asserta(const term::Clause &clause)
{
    clare_assert(active_, "assert on a finished update");
    LiveOp op;
    op.kind = LiveOp::Kind::Asserta;
    op.pred = clause.predicate();
    op.text = owner_->writer_.writeClause(clause);
    std::vector<std::string> &texts = textsOf(op.pred);
    texts.insert(texts.begin(), op.text);
    ops_.push_back(std::move(op));
}

bool
LiveStore::Update::retract(const term::TermArena &arena,
                           term::TermRef pattern)
{
    clare_assert(active_, "retract on a finished update");
    term::SymbolTable &symbols = owner_->symbols_;

    // Split the pattern into head and body-conjunction parts.
    term::TermRef head_pat = pattern;
    term::TermRef body_pat = term::kNoTerm;
    term::SymbolId neck = symbols.intern(":-");
    if (arena.kind(pattern) == term::TermKind::Struct &&
        arena.functor(pattern) == neck && arena.arity(pattern) == 2) {
        head_pat = arena.arg(pattern, 0);
        body_pat = arena.arg(pattern, 1);
    }

    term::PredicateId pred;
    term::TermKind hk = arena.kind(head_pat);
    if (hk == term::TermKind::Atom) {
        pred = term::PredicateId{arena.atomSymbol(head_pat), 0};
    } else if (hk == term::TermKind::Struct) {
        pred = term::PredicateId{arena.functor(head_pat),
                                 arena.arity(head_pat)};
    } else {
        clare_fatal("retract pattern head must be an atom or structure");
    }

    // Resolve against the evolving list: head store state plus this
    // transaction's earlier ops.  The matched *position* goes into the
    // WAL, so replay — which walks the same evolving list — removes
    // the same clause without re-running unification.
    std::vector<std::string> &texts = textsOf(pred);
    term::TermReader reader(symbols);
    for (std::size_t i = 0; i < texts.size(); ++i) {
        term::Clause clause = reader.parseClause(texts[i]);
        // A bare-head pattern matches facts only (retract(H) is
        // retract((H :- true))).
        if (body_pat == term::kNoTerm && !clause.isFact())
            continue;

        term::TermArena scratch;
        term::TermRef goal_head = scratch.import(arena, head_pat, 0);
        term::VarId offset = arena.varCeiling();
        term::TermRef clause_head = scratch.import(clause.arena(),
                                                   clause.head(),
                                                   offset);
        unify::Bindings bindings;
        if (!unify::unifyTerms(scratch, goal_head, clause_head,
                               bindings)) {
            continue;
        }
        if (body_pat != term::kNoTerm) {
            term::TermRef goal_body = scratch.import(arena, body_pat, 0);
            term::TermRef clause_body = bodyConjunction(
                scratch, symbols, clause, offset);
            if (!unify::unifyTerms(scratch, goal_body, clause_body,
                                   bindings)) {
                continue;
            }
        }

        LiveOp op;
        op.kind = LiveOp::Kind::Retract;
        op.pred = pred;
        op.ordinal = static_cast<std::uint32_t>(i);
        texts.erase(texts.begin() + static_cast<std::ptrdiff_t>(i));
        ops_.push_back(std::move(op));
        return true;
    }
    return false;
}

} // namespace clare::crs
