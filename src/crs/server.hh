/**
 * @file
 * The Clause Retrieval Server (CRS): the software module linking CLARE
 * with the PDBM Prolog system (section 2.2).
 *
 * For each retrieval the CRS runs one of the four search modes —
 * software-only, FS1-only, FS2-only, or the two-stage FS1+FS2 filter —
 * and hands the resulting candidate set to host-side full unification.
 * Mode selection follows the paper's criteria: the nature of the query
 * (e.g. whether it contains cross-bound/shared variables or variable-
 * bearing structures that the codeword index cannot see) and of the
 * knowledge base (rule-intensive predicates defeat the index because
 * variable arguments are masked).
 *
 * Host software costs are modeled with a simple per-clause/per-
 * operation cost model representative of the M68020-class host;
 * retrieval *correctness* (which clauses truly unify) is computed with
 * the real unifier so that false-drop accounting is exact.
 *
 * With `CrsConfig::workers > 1` the server runs a parallel pipeline
 * mirroring the paper's FS1/FS2 overlap: the FS1 index scan is sharded
 * across a worker pool, and retrieveMany() overlaps the FS1 scan of
 * query k+1 with the FS2 filtering and host unification of query k.
 * Results are merged in clause/batch order, so candidate and answer
 * sets are bit-identical to the sequential path at any worker count.
 */

#ifndef CLARE_CRS_SERVER_HH
#define CLARE_CRS_SERVER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crs/search_mode.hh"
#include "crs/store.hh"
#include "fs1/fs1_engine.hh"
#include "fs2/fs2_engine.hh"
#include "support/logging.hh"
#include "support/sim_time.hh"
#include "support/thread_pool.hh"
#include "term/term_reader.hh"
#include "unify/tue_op.hh"

namespace clare::crs {

/**
 * Host (M68020-class) software cost model.  A mid-80s workstation
 * Prolog ran on the order of 10-20 KLIPS, i.e. 50-100 us per
 * inference; a software partial-match visit is cheaper than a full
 * resolution step but of the same order.
 */
struct HostCostModel
{
    /** Fixed software cost to visit one clause record. */
    Tick perClause = 40 * kMicrosecond;
    /** Cost per software term-comparison operation. */
    Tick perOp = 5 * kMicrosecond;
    /** Full unification cost per candidate clause. */
    Tick perCandidateUnify = 100 * kMicrosecond;
};

/** CRS configuration. */
struct CrsConfig
{
    HostCostModel host;
    fs1::Fs1Config fs1;
    fs2::Fs2Config fs2;

    /**
     * Total threads the retrieval pipeline may use (including the
     * calling thread).  1 selects the sequential path; N > 1 shards
     * the FS1 index scan N ways and enables the retrieveMany()
     * FS1/FS2 overlap.  Candidate and answer sets are identical at
     * every setting.
     */
    std::uint32_t workers = 1;
};

/** Characteristics of a query goal that drive mode selection. */
struct QueryProfile
{
    std::uint32_t arity = 0;
    std::uint32_t groundArgs = 0;
    std::uint32_t variableArgs = 0;
    bool hasSharedVars = false;          ///< a variable occurs twice
    bool hasVarBearingStructures = false; ///< complex arg containing vars
};

/** Outcome of one retrieval. */
struct RetrievalResult
{
    SearchMode mode = SearchMode::SoftwareOnly;

    /** Ordinals handed to full unification, in clause order. */
    std::vector<std::uint32_t> candidates;
    /** Ordinals that truly unify (the answer set), in clause order. */
    std::vector<std::uint32_t> answers;

    std::uint64_t indexEntriesScanned = 0;
    std::uint64_t fs1Hits = 0;
    std::uint64_t clausesExamined = 0;  ///< by FS2 or software matching
    unify::TueOpCounts filterOps{};

    Tick indexTime = 0;     ///< FS1 stage elapsed
    Tick filterTime = 0;    ///< FS2 / software scan elapsed
    Tick hostUnifyTime = 0; ///< modeled full-unification cost
    Tick elapsed = 0;       ///< total retrieval latency

    /**
     * Candidates that failed full unification.  A correct filter never
     * produces answers outside the candidate set, so the difference is
     * clamped at zero (the unsigned subtraction used to underflow to
     * ~2^64 on a false negative); debug builds assert instead so a
     * filter-correctness regression is loud rather than absurd.
     */
    std::uint64_t
    falseDrops() const
    {
#ifndef NDEBUG
        clare_assert(answers.size() <= candidates.size(),
                     "filter false negative: %zu answers from %zu "
                     "candidates", answers.size(), candidates.size());
#endif
        return candidates.size() > answers.size()
            ? candidates.size() - answers.size()
            : 0;
    }

    /**
     * Answers the filter missed (candidate set not a superset of the
     * answer set).  Always zero for a correct filter; exposed so
     * oracle-style tests can report the violation instead of watching
     * falseDrops() underflow.
     */
    std::uint64_t
    falseNegatives() const
    {
        return answers.size() > candidates.size()
            ? answers.size() - candidates.size()
            : 0;
    }

    double
    falseDropRate() const
    {
        return candidates.empty()
            ? 0.0
            : static_cast<double>(falseDrops()) /
              static_cast<double>(candidates.size());
    }
};

/** The retrieval server. */
class ClauseRetrievalServer
{
  public:
    /** One goal of a retrieveMany() batch. */
    struct Request
    {
        /** Arena holding the goal (not owned; must outlive the call). */
        const term::TermArena *arena = nullptr;
        term::TermRef goal{};
        /** Explicit search mode; empty lets the CRS choose. */
        std::optional<SearchMode> mode;
    };

    /**
     * @param symbols shared symbol table (non-const: candidate clauses
     *        are re-parsed for host-side unification)
     */
    ClauseRetrievalServer(term::SymbolTable &symbols,
                          const PredicateStore &store,
                          CrsConfig config = {});

    /** Retrieve with an explicit mode. */
    RetrievalResult retrieve(const term::TermArena &q_arena,
                             term::TermRef goal, SearchMode mode);

    /** Retrieve with the CRS choosing the mode. */
    RetrievalResult retrieveAuto(const term::TermArena &q_arena,
                                 term::TermRef goal);

    /**
     * Batched front door: retrieve every request, in order.  With
     * workers > 1 the FS1 index scan of request k+1 is pipelined with
     * the FS2 filtering and host unification of request k; results are
     * identical to calling retrieve()/retrieveAuto() in a loop.
     */
    std::vector<RetrievalResult>
    retrieveMany(const std::vector<Request> &batch);

    /** The mode-selection heuristic (exposed for tests/benches). */
    SearchMode selectMode(const term::TermArena &q_arena,
                          term::TermRef goal) const;

    /** Analyze a goal's filter-relevant characteristics. */
    static QueryProfile profileQuery(const term::TermArena &q_arena,
                                     term::TermRef goal);

    const CrsConfig &config() const { return config_; }

    /** Cumulative FS1 statistics across this server's retrievals. */
    StatGroup &fs1Stats() { return fs1_.stats(); }

  private:
    term::SymbolTable &symbols_;
    const PredicateStore &store_;
    CrsConfig config_;
    /** Persistent FS1 engine, shared across retrievals and threads. */
    fs1::Fs1Engine fs1_;
    /** Worker pool; null when workers <= 1 (sequential path). */
    std::unique_ptr<support::ThreadPool> pool_;
    /**
     * FS1 scan fan-out: config workers, clamped to the host's core
     * count for CPU-bound scans (sharding wider than the hardware
     * only adds scheduling overhead) but left at full width for paced
     * device-wait scans.  The shard count never changes results
     * (contiguous shards merge back into sequential order).
     */
    std::uint32_t scanShards_ = 1;
    /**
     * retrieveMany() lookahead: scans in flight at once.  Sized like
     * scanShards_ — full worker width for paced device-wait scans
     * (waits overlap on any core count), clamped to the core count
     * for CPU-bound scans (oversubscription only thrashes).
     */
    std::uint32_t scanAhead_ = 1;

    term::PredicateId goalPredicate(const term::TermArena &q_arena,
                                    term::TermRef goal) const;

    /** Does this mode run the FS1 index scan? */
    static bool usesFs1(SearchMode mode)
    {
        return mode == SearchMode::Fs1Only ||
            mode == SearchMode::TwoStage;
    }

    /**
     * FS1 stage: scan the predicate's index (sharded when a pool is
     * configured).  Thread-safe; touches no per-query state.
     */
    fs1::Fs1Result scanIndex(const StoredPredicate &stored,
                             const term::TermArena &q_arena,
                             term::TermRef goal) const;

    /**
     * Everything after the FS1 stage: FS2 / software filtering, host
     * unification, and timing.  Runs on the calling thread (it parses
     * candidate clauses through the shared symbol table).
     */
    void finishRetrieval(const StoredPredicate &stored,
                         const term::TermArena &q_arena,
                         term::TermRef goal, fs1::Fs1Result fs1,
                         RetrievalResult &result);

    /** Host full unification over candidates; fills answers + time. */
    void hostUnify(const StoredPredicate &stored,
                   const term::TermArena &q_arena, term::TermRef goal,
                   RetrievalResult &result) const;
};

} // namespace clare::crs

#endif // CLARE_CRS_SERVER_HH
