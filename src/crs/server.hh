/**
 * @file
 * The Clause Retrieval Server (CRS): the software module linking CLARE
 * with the PDBM Prolog system (section 2.2).
 *
 * For each retrieval the CRS runs one of the four search modes —
 * software-only, FS1-only, FS2-only, or the two-stage FS1+FS2 filter —
 * and hands the resulting candidate set to host-side full unification.
 * Mode selection follows the paper's criteria: the nature of the query
 * (e.g. whether it contains cross-bound/shared variables or variable-
 * bearing structures that the codeword index cannot see) and of the
 * knowledge base (rule-intensive predicates defeat the index because
 * variable arguments are masked).
 *
 * Host software costs are modeled with a simple per-clause/per-
 * operation cost model representative of the M68020-class host;
 * retrieval *correctness* (which clauses truly unify) is computed with
 * the real unifier so that false-drop accounting is exact.
 *
 * The front door is the unified request/response API (crs/api.hh):
 * serve() retrieves one RetrievalRequest, serveBatch() pipelines a
 * batch, and both share one accounting path that fills the response's
 * StageBreakdown.  The same pair is the *only* entry: networked
 * callers reach it through net::NetServer/NetClient, whose responses
 * are bit-identical to a local call.
 *
 * With `CrsConfig::workers > 1` the server runs a parallel pipeline
 * mirroring the paper's FS1/FS2 overlap: the FS1 index scan is sharded
 * across a worker pool, and serveBatch() overlaps the FS1 scan of
 * query k+1 with the FS2 filtering and host unification of query k.
 * Results are merged in clause/batch order, so candidate and answer
 * sets are bit-identical to the sequential path at any worker count.
 *
 * Every server owns an obs::Tracer (per-request opt-in spans) and an
 * obs::MetricsRegistry (always-on counters/histograms) wired through
 * all pipeline layers; export them with obs::exportJson().
 */

#ifndef CLARE_CRS_SERVER_HH
#define CLARE_CRS_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crs/api.hh"
#include "crs/goal_cache.hh"
#include "crs/search_mode.hh"
#include "crs/store.hh"
#include "crs/transaction.hh"
#include "fs1/fs1_engine.hh"
#include "fs1/survivor_cache.hh"
#include "fs2/fs2_engine.hh"
#include "scw/signature_cache.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/sim_time.hh"
#include "support/thread_pool.hh"
#include "term/term_reader.hh"
#include "unify/tue_op.hh"

namespace clare::crs {

/**
 * Host (M68020-class) software cost model.  A mid-80s workstation
 * Prolog ran on the order of 10-20 KLIPS, i.e. 50-100 us per
 * inference; a software partial-match visit is cheaper than a full
 * resolution step but of the same order.
 */
struct HostCostModel
{
    /** Fixed software cost to visit one clause record. */
    Tick perClause = 40 * kMicrosecond;
    /** Cost per software term-comparison operation. */
    Tick perOp = 5 * kMicrosecond;
    /** Full unification cost per candidate clause. */
    Tick perCandidateUnify = 100 * kMicrosecond;
};

/**
 * Configuration of the server-side cache levels (L2 signature +
 * survivor memos, L3 goal-result cache).  The L1 disk track cache is
 * configured on the PredicateStore, which owns the modeled disks —
 * see PredicateStore::configureDiskCaches().
 *
 * Everything defaults to *disabled*, so a default server is
 * bit-identical to the pre-cache pipeline.  When a fault injector is
 * armed the server never caches regardless of this config: a
 * fault-touched response must not be replayed.
 */
struct CacheConfig
{
    /** Master switch for L2 + L3. */
    bool enabled = false;

    /** L3 goal-result entries. */
    std::uint32_t goalCapacity = 256;
    /** Modeled cost of an L3 hit (hash + lookup + payload copy). */
    Tick goalHitCost = 2 * kMicrosecond;

    /** L2a encoded-signature memo entries. */
    std::uint32_t signatureCapacity = 512;

    /** L2b FS1 survivor-set memo entries. */
    std::uint32_t survivorCapacity = 128;
    /** Modeled cost of replaying a memoized survivor set. */
    Tick survivorHitCost = 10 * kMicrosecond;
};

/** CRS configuration. */
struct CrsConfig
{
    HostCostModel host;
    fs1::Fs1Config fs1;
    fs2::Fs2Config fs2;
    CacheConfig cache;

    /**
     * Total threads the retrieval pipeline may use (including the
     * calling thread).  1 selects the sequential path; N > 1 shards
     * the FS1 index scan N ways and enables the serveBatch()
     * FS1/FS2 overlap.  Candidate and answer sets are identical at
     * every setting.
     */
    std::uint32_t workers = 1;

    /**
     * serveBatch() multi-query batch scanning: up to this many
     * FS1-mode goals of one predicate are answered by a single pass
     * over the predicate's bit-sliced plane.  1 (default) scans per
     * query.  Widths > 1 require fs1.sliced (grouping without the
     * sliced kernel would just serialize the scans) and compose with
     * workers and the caches; results stay bit-identical because each
     * grouped query is accounted exactly like its own full-file scan.
     */
    std::uint32_t batchWidth = 1;

    /**
     * Bound on modeled re-reads of a chunk after transient disk
     * errors.  Each retry re-positions the head, so it costs a full
     * access time that shows honestly in the stage breakdown.
     */
    storage::RetryPolicy retry{};

    /**
     * Optional deterministic fault oracle (not owned; null = ideal
     * disks).  When set, every index read is verified against the
     * store's page checksums — corruption degrades the query to a
     * full scan — and data reads model bounded retries and page
     * re-reads.  In -DCLARE_FAULT_INJECT builds a null pointer falls
     * back to support::envFaultInjector().
     */
    const support::FaultInjector *faults = nullptr;

    /**
     * Check the host, FS1, FS2, and pipeline settings as one unit,
     * throwing ConfigError naming the offending field on the first
     * incoherent value (e.g. workers == 0, a non-positive FS1 scan
     * rate under paced replay).  The server constructor calls this;
     * call it directly to vet a config before building stores.
     */
    void validate() const;
};

/**
 * Outcome of the FS1 stage, including the modeled fault effects of
 * the index read.  A scan that is not healthy() carries no FS1 result
 * — the server degrades the query to a full FS2 scan instead of
 * matching garbage codewords.
 */
struct IndexScan
{
    fs1::Fs1Result fs1;
    /** Re-seek and delay ticks injected faults added to the read. */
    Tick faultTicks = 0;
    /** Index pages whose delivered copy failed its CRC check. */
    std::uint32_t corruptPages = 0;
    /** A chunk failed every bounded read attempt. */
    bool unreadable = false;
    /**
     * The survivor set was replayed from the L2 memo: fs1 is a stored
     * Fs1Result, so timing charges the memo replay cost instead of the
     * modeled disk read + scan.
     */
    bool fromCache = false;

    bool healthy() const { return corruptPages == 0 && !unreadable; }
};

/** Characteristics of a query goal that drive mode selection. */
struct QueryProfile
{
    std::uint32_t arity = 0;
    std::uint32_t groundArgs = 0;
    std::uint32_t variableArgs = 0;
    bool hasSharedVars = false;          ///< a variable occurs twice
    bool hasVarBearingStructures = false; ///< complex arg containing vars
};

/**
 * The retrieval server.
 *
 * Implements CacheInvalidationSink so a crs::Transaction constructed
 * with the server as its sink flushes cached results for every
 * predicate it wrote, while its exclusive locks are still held.
 */
class ClauseRetrievalServer : public CacheInvalidationSink
{
  public:
    /**
     * @param symbols shared symbol table (non-const: candidate clauses
     *        are re-parsed for host-side unification)
     * @throws ConfigError when @p config is incoherent
     */
    ClauseRetrievalServer(term::SymbolTable &symbols,
                          const PredicateStore &store,
                          CrsConfig config = {});

    /**
     * The unified front door: retrieve one request.  The response's
     * breakdown satisfies breakdown.serviceTime() == elapsed and
     * breakdown.queueWait == 0 (queueing only exists in a batch).
     */
    RetrievalResponse serve(const RetrievalRequest &request);

    /**
     * Batched front door: retrieve every request, in order.  With
     * workers > 1 the FS1 index scan of request k+1 is pipelined with
     * the FS2 filtering and host unification of request k; candidates,
     * answers, and elapsed are identical to calling serve() in a loop,
     * and each response's breakdown.queueWait reports the simulated
     * time its finished FS1 scan waited for the serial back half.
     *
     * Batch split contract (what the sharded scatter/gather relies
     * on): all retrieval state — caches, MVCC version pins, batch
     * cache prediction — is keyed per predicate, so any partition of
     * a batch into sub-batches that preserves the relative order of
     * same-predicate requests yields per-item responses identical to
     * serving the whole batch, provided the pipeline is sequential
     * (workers == 1, the serving default, where the modeled queue is
     * empty and queueWait == 0 for every item).  With workers > 1 the
     * modeled FS1/back-half queue couples items *across* predicates,
     * so a sharded deployment that must stay bit-identical to a local
     * serveBatch() pins sequential backends.
     */
    std::vector<RetrievalResponse>
    serveBatch(const std::vector<RetrievalRequest> &batch);

    /**
     * The mode-selection heuristic (exposed for tests/benches),
     * evaluated against the head predicate version.
     */
    SearchMode selectMode(const term::TermArena &q_arena,
                          term::TermRef goal) const;

    /** Analyze a goal's filter-relevant characteristics. */
    static QueryProfile profileQuery(const term::TermArena &q_arena,
                                     term::TermRef goal);

    const CrsConfig &config() const { return config_; }

    /** Cumulative FS1 statistics across this server's retrievals. */
    StatGroup &fs1Stats() { return fs1_.stats(); }

    /** Spans recorded for requests with TraceOptions::enabled. */
    obs::Tracer &tracer() { return tracer_; }
    const obs::Tracer &tracer() const { return tracer_; }

    /** Always-on pipeline metrics (counters, histograms). */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Drop every cached result derived from @p pred: the L3 goal
     * cache entries for the predicate and, by bumping the predicate's
     * index generation, every L2 survivor memo keyed under the old
     * generation.  Called by Transaction::commit() while the writer's
     * exclusive lock is still held.  Safe under concurrent serves.
     */
    void invalidatePredicate(const term::PredicateId &pred) override;

    /**
     * Wholesale invalidation: clear all three server-side cache levels
     * and the store's disk track caches.  Call after a store reload —
     * clause ordinals and file offsets may all have changed.
     */
    void invalidateCaches();

    /** Entries currently resident in the L3 goal cache (tests). */
    std::size_t goalCacheSize() const;

  private:
    term::SymbolTable &symbols_;
    const PredicateStore &store_;
    CrsConfig config_;
    /** Persistent FS1 engine, shared across retrievals and threads. */
    fs1::Fs1Engine fs1_;
    /** Worker pool; null when workers <= 1 (sequential path). */
    std::unique_ptr<support::ThreadPool> pool_;
    /**
     * FS1 scan fan-out: config workers, clamped to the host's core
     * count for CPU-bound scans (sharding wider than the hardware
     * only adds scheduling overhead) but left at full width for paced
     * device-wait scans.  The shard count never changes results
     * (contiguous shards merge back into sequential order).
     */
    std::uint32_t scanShards_ = 1;
    /**
     * serveBatch() lookahead: scans in flight at once.  Sized like
     * scanShards_ — full worker width for paced device-wait scans
     * (waits overlap on any core count), clamped to the core count
     * for CPU-bound scans (oversubscription only thrashes).
     */
    std::uint32_t scanAhead_ = 1;

    obs::Tracer tracer_;
    obs::MetricsRegistry metrics_;

    // ----- Cache hierarchy (all null when cache.enabled is false, or
    // when a fault oracle is armed — fault-touched results must never
    // be replayed).  Each level is internally mutex-guarded; the
    // server adds no locking of its own around lookups.
    /** L3: canonical goal + mode → full response payload. */
    std::unique_ptr<GoalCache> goalCache_;
    /** L2a: canonical goal → encoded query signature. */
    std::unique_ptr<scw::SignatureCache> signatureCache_;
    /** L2b: predicate + signature + generation → FS1 survivor set. */
    std::unique_ptr<fs1::SurvivorCache> survivorCache_;
    /**
     * Per-predicate index generation, bumped by invalidatePredicate();
     * part of every L2b key, so survivor memos of an updated predicate
     * can never match again (they age out of the LRU).
     */
    mutable std::mutex generationMutex_;
    std::map<term::PredicateId, std::uint64_t> indexGeneration_;

    /** The per-request observer: tracer only when the request asks. */
    obs::Observer observer(const TraceOptions &trace)
    {
        return obs::Observer{trace.enabled ? &tracer_ : nullptr,
                             &metrics_};
    }

    term::PredicateId goalPredicate(const term::TermArena &q_arena,
                                    term::TermRef goal) const;

    /**
     * Mode selection against an already-resolved predicate version's
     * rule fraction — serve()/serveBatch() pin the MVCC version first
     * and select against that same version, never the (possibly
     * newer) head.
     */
    static SearchMode selectModeFor(const term::TermArena &q_arena,
                                    term::TermRef goal,
                                    double rule_fraction);

    /** Does this mode run the FS1 index scan? */
    static bool usesFs1(SearchMode mode)
    {
        return mode == SearchMode::Fs1Only ||
            mode == SearchMode::TwoStage;
    }

    /**
     * FS1 stage: verify the delivered index pages against the store's
     * checksums (when a fault oracle is configured), then scan the
     * predicate's index (sharded when a pool is configured).
     * Thread-safe; touches no per-query state.
     */
    IndexScan scanIndex(const StoredPredicate &stored,
                        const term::TermArena &q_arena,
                        term::TermRef goal,
                        const obs::Observer &obs,
                        obs::SpanId parent) const;

    // ----- Cache plumbing.  Every cache consult and fill below runs
    // on the calling thread, in request (or batch) order, so hit/miss
    // counters and LRU state are deterministic at any worker count.

    /**
     * Do L2/L3 participate in this request?  Snapshot-pinned requests
     * never cache: their answers belong to one historical generation.
     */
    bool cachingActive(const RetrievalRequest &request) const
    {
        return goalCache_ != nullptr && !request.bypassCache &&
            !request.snapshot;
    }

    /** L3 key: canonical goal key + mode + MVCC generation. */
    static std::string goalKey(const term::TermArena &q_arena,
                               term::TermRef goal, SearchMode mode,
                               std::uint64_t generation);

    /** Current index generation of a predicate (0 until written). */
    std::uint64_t generationOf(const term::PredicateId &pred) const;

    /** L2b key: predicate + generations + signature bytes. */
    std::string survivorKey(const term::PredicateId &pred,
                            const scw::Signature &sig,
                            std::uint64_t store_generation) const;

    /** Encode the goal's signature through the L2a memo. */
    scw::Signature lookupSignature(const std::string &goal_key,
                                   const term::TermArena &q_arena,
                                   term::TermRef goal,
                                   const obs::Observer &obs);

    /**
     * FS1 scan with a precomputed signature and no fault modeling
     * (caching and fault injection are mutually exclusive).
     */
    IndexScan rawScan(const StoredPredicate &stored,
                      const scw::Signature &sig,
                      const obs::Observer &obs, obs::SpanId parent) const;

    /**
     * Resolve the FS1 stage of a cacheable request: L2a signature
     * memo, L2b survivor memo, raw scan + fill on a miss.  Calling
     * thread only.
     */
    IndexScan cachedScan(const StoredPredicate &stored,
                         const term::PredicateId &pred,
                         const std::string &goal_key,
                         const term::TermArena &q_arena,
                         term::TermRef goal, const obs::Observer &obs,
                         obs::SpanId parent);

    /**
     * Build a response from an L3 hit: payload verbatim, breakdown
     * replaced by the modeled goal-hit cost.
     */
    void serveGoalHit(const RetrievalResponse &cached,
                      RetrievalResponse &response);

    /** Admit an eligible (clean, non-overflowed) response into L3. */
    void maybeCacheGoal(const std::string &goal_key,
                        const term::PredicateId &pred,
                        const RetrievalResponse &response);

    /**
     * Everything after the FS1 stage: degradation of unhealthy index
     * scans, FS2 / software filtering, fault-recovery accounting,
     * host unification, and the single authoritative stage
     * accounting.  Runs on the calling thread (it parses candidate
     * clauses through the shared symbol table).
     */
    void finishRetrieval(const StoredPredicate &stored,
                         const RetrievalRequest &request,
                         IndexScan scan, const obs::Observer &obs,
                         obs::SpanId root, RetrievalResponse &response);

    /** Host full unification over candidates; fills answers + time. */
    void hostUnify(const StoredPredicate &stored,
                   const term::TermArena &q_arena, term::TermRef goal,
                   RetrievalResponse &response) const;

    /** Per-query metrics + root-span finalization (both paths). */
    void accountQuery(RetrievalResponse &response, obs::ScopedSpan &root);
};

} // namespace clare::crs

#endif // CLARE_CRS_SERVER_HH
