/**
 * @file
 * The Clause Retrieval Server (CRS): the software module linking CLARE
 * with the PDBM Prolog system (section 2.2).
 *
 * For each retrieval the CRS runs one of the four search modes —
 * software-only, FS1-only, FS2-only, or the two-stage FS1+FS2 filter —
 * and hands the resulting candidate set to host-side full unification.
 * Mode selection follows the paper's criteria: the nature of the query
 * (e.g. whether it contains cross-bound/shared variables or variable-
 * bearing structures that the codeword index cannot see) and of the
 * knowledge base (rule-intensive predicates defeat the index because
 * variable arguments are masked).
 *
 * Host software costs are modeled with a simple per-clause/per-
 * operation cost model representative of the M68020-class host;
 * retrieval *correctness* (which clauses truly unify) is computed with
 * the real unifier so that false-drop accounting is exact.
 */

#ifndef CLARE_CRS_SERVER_HH
#define CLARE_CRS_SERVER_HH

#include <cstdint>
#include <vector>

#include "crs/search_mode.hh"
#include "crs/store.hh"
#include "fs1/fs1_engine.hh"
#include "fs2/fs2_engine.hh"
#include "support/sim_time.hh"
#include "term/term_reader.hh"
#include "unify/tue_op.hh"

namespace clare::crs {

/**
 * Host (M68020-class) software cost model.  A mid-80s workstation
 * Prolog ran on the order of 10-20 KLIPS, i.e. 50-100 us per
 * inference; a software partial-match visit is cheaper than a full
 * resolution step but of the same order.
 */
struct HostCostModel
{
    /** Fixed software cost to visit one clause record. */
    Tick perClause = 40 * kMicrosecond;
    /** Cost per software term-comparison operation. */
    Tick perOp = 5 * kMicrosecond;
    /** Full unification cost per candidate clause. */
    Tick perCandidateUnify = 100 * kMicrosecond;
};

/** CRS configuration. */
struct CrsConfig
{
    HostCostModel host;
    fs1::Fs1Config fs1;
    fs2::Fs2Config fs2;
};

/** Characteristics of a query goal that drive mode selection. */
struct QueryProfile
{
    std::uint32_t arity = 0;
    std::uint32_t groundArgs = 0;
    std::uint32_t variableArgs = 0;
    bool hasSharedVars = false;          ///< a variable occurs twice
    bool hasVarBearingStructures = false; ///< complex arg containing vars
};

/** Outcome of one retrieval. */
struct RetrievalResult
{
    SearchMode mode = SearchMode::SoftwareOnly;

    /** Ordinals handed to full unification, in clause order. */
    std::vector<std::uint32_t> candidates;
    /** Ordinals that truly unify (the answer set), in clause order. */
    std::vector<std::uint32_t> answers;

    std::uint64_t indexEntriesScanned = 0;
    std::uint64_t fs1Hits = 0;
    std::uint64_t clausesExamined = 0;  ///< by FS2 or software matching
    unify::TueOpCounts filterOps{};

    Tick indexTime = 0;     ///< FS1 stage elapsed
    Tick filterTime = 0;    ///< FS2 / software scan elapsed
    Tick hostUnifyTime = 0; ///< modeled full-unification cost
    Tick elapsed = 0;       ///< total retrieval latency

    std::uint64_t
    falseDrops() const
    {
        return candidates.size() - answers.size();
    }

    double
    falseDropRate() const
    {
        return candidates.empty()
            ? 0.0
            : static_cast<double>(falseDrops()) /
              static_cast<double>(candidates.size());
    }
};

/** The retrieval server. */
class ClauseRetrievalServer
{
  public:
    /**
     * @param symbols shared symbol table (non-const: candidate clauses
     *        are re-parsed for host-side unification)
     */
    ClauseRetrievalServer(term::SymbolTable &symbols,
                          const PredicateStore &store,
                          CrsConfig config = {});

    /** Retrieve with an explicit mode. */
    RetrievalResult retrieve(const term::TermArena &q_arena,
                             term::TermRef goal, SearchMode mode);

    /** Retrieve with the CRS choosing the mode. */
    RetrievalResult retrieveAuto(const term::TermArena &q_arena,
                                 term::TermRef goal);

    /** The mode-selection heuristic (exposed for tests/benches). */
    SearchMode selectMode(const term::TermArena &q_arena,
                          term::TermRef goal) const;

    /** Analyze a goal's filter-relevant characteristics. */
    static QueryProfile profileQuery(const term::TermArena &q_arena,
                                     term::TermRef goal);

    const CrsConfig &config() const { return config_; }

  private:
    term::SymbolTable &symbols_;
    const PredicateStore &store_;
    CrsConfig config_;

    term::PredicateId goalPredicate(const term::TermArena &q_arena,
                                    term::TermRef goal) const;

    /** FS1 stage: scan the index, return candidate ordinals. */
    std::vector<std::uint32_t> runFs1(const StoredPredicate &stored,
                                      const term::TermArena &q_arena,
                                      term::TermRef goal,
                                      RetrievalResult &result) const;

    /** Host full unification over candidates; fills answers + time. */
    void hostUnify(const StoredPredicate &stored,
                   const term::TermArena &q_arena, term::TermRef goal,
                   RetrievalResult &result) const;
};

} // namespace clare::crs

#endif // CLARE_CRS_SERVER_HH
