/**
 * @file
 * Disk-resident predicate storage managed by the CRS: per predicate, a
 * compiled clause file plus its secondary (codeword) file, laid out on
 * a modeled disk.
 */

#ifndef CLARE_CRS_STORE_HH
#define CLARE_CRS_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "scw/bit_sliced_index.hh"
#include "scw/codeword.hh"
#include "scw/index_file.hh"
#include "storage/clause_file.hh"
#include "storage/disk_model.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"
#include "term/term_writer.hh"

namespace clare::crs {

/** One predicate's on-disk artifacts. */
struct StoredPredicate
{
    storage::ClauseFile clauses;
    scw::SecondaryFile index;
    std::uint64_t clauseFileOffset = 0; ///< placement on the data disk
    std::uint64_t indexFileOffset = 0;  ///< placement on the index disk

    /** Fraction of clauses that are rules (body-carrying). */
    double ruleFraction = 0.0;

    /**
     * CRC-32 of each 4 KB page of the secondary file image, computed
     * at finalize().  The CRS verifies delivered index pages against
     * these so a corrupted index degrades the query to a full scan
     * instead of matching garbage codewords.
     */
    std::vector<std::uint32_t> indexPageCrcs;

    /**
     * Transposed (bit-sliced) plane of the secondary file, for the
     * word-parallel FS1 host kernel.  Null when planes were neither
     * loaded from a v3 store nor built with buildSlicedIndexes();
     * the engine then scans row-major.  Shared so cached IndexScans
     * and concurrent workers can hold it without copying.
     */
    std::shared_ptr<const scw::BitSlicedIndex> sliced;
};

/**
 * The predicate store: builds clause and secondary files from parsed
 * programs and lays them out on a pair of modeled disks (data and
 * index regions of one spindle in the real system; two images here
 * for clarity of accounting).
 */
class PredicateStore
{
  public:
    PredicateStore(const term::SymbolTable &symbols,
                   scw::CodewordGenerator generator,
                   storage::DiskGeometry geometry =
                       storage::DiskGeometry::fujitsuM2351A());

    /** Compile and store every predicate of a program. */
    void addProgram(const term::Program &program);

    /**
     * Insert an already-compiled predicate (the store-loading path);
     * the rule fraction is re-derived from the record flags.
     * @param sliced pre-built bit-sliced plane (e.g. deserialized from
     *        a v3 store), or null to leave the predicate row-major
     */
    void addStored(const term::PredicateId &pred,
                   storage::ClauseFile clauses,
                   scw::SecondaryFile index,
                   std::shared_ptr<const scw::BitSlicedIndex> sliced =
                       nullptr);

    /**
     * Build the transposed plane for every predicate that lacks one
     * (addProgram leaves them unbuilt; v2 stores load without them).
     * Idempotent; callable before or after finalize() — the plane is
     * host-side metadata and does not change the on-disk images.
     */
    void buildSlicedIndexes();

    /** Finish layout: load the concatenated images onto the disks. */
    void finalize();

    bool has(const term::PredicateId &pred) const;
    const StoredPredicate &predicate(const term::PredicateId &pred) const;
    const std::vector<term::PredicateId> &predicates() const
    {
        return order_;
    }

    const storage::DiskModel &dataDisk() const { return dataDisk_; }
    const storage::DiskModel &indexDisk() const { return indexDisk_; }
    const scw::CodewordGenerator &generator() const { return generator_; }

    /**
     * Configure the L1 track caches of both modeled disks (the store
     * owns the disks; the server only holds a const reference).  The
     * default-constructed config disables them, which is the seed
     * behaviour.
     */
    void configureDiskCaches(const storage::DiskCacheConfig &config)
    {
        dataDisk_.configureCache(config);
        indexDisk_.configureCache(config);
    }

    /** Drop all resident tracks, e.g. after reloading the images. */
    void dropDiskCaches() const
    {
        dataDisk_.dropCache();
        indexDisk_.dropCache();
    }

    /** Total bytes of clause data stored. */
    std::uint64_t dataBytes() const;
    /** Total bytes of index data stored. */
    std::uint64_t indexBytes() const;

  private:
    const term::SymbolTable &symbols_;
    scw::CodewordGenerator generator_;
    term::TermWriter writer_;
    storage::DiskModel dataDisk_;
    storage::DiskModel indexDisk_;
    std::map<term::PredicateId, StoredPredicate> preds_;
    std::vector<term::PredicateId> order_;
    bool finalized_ = false;
};

} // namespace clare::crs

#endif // CLARE_CRS_STORE_HH
