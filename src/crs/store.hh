/**
 * @file
 * Disk-resident predicate storage managed by the CRS: per predicate, a
 * compiled clause file plus its secondary (codeword) file, laid out on
 * a modeled disk.
 */

#ifndef CLARE_CRS_STORE_HH
#define CLARE_CRS_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "scw/bit_sliced_index.hh"
#include "scw/codeword.hh"
#include "scw/index_file.hh"
#include "storage/clause_file.hh"
#include "storage/disk_model.hh"
#include "term/clause.hh"
#include "term/symbol_table.hh"
#include "term/term_writer.hh"

namespace clare::crs {

/** One predicate's on-disk artifacts. */
struct StoredPredicate
{
    storage::ClauseFile clauses;
    scw::SecondaryFile index;
    std::uint64_t clauseFileOffset = 0; ///< placement on the data disk
    std::uint64_t indexFileOffset = 0;  ///< placement on the index disk

    /** Fraction of clauses that are rules (body-carrying). */
    double ruleFraction = 0.0;

    /**
     * CRC-32 of each 4 KB page of the secondary file image, computed
     * at finalize().  The CRS verifies delivered index pages against
     * these so a corrupted index degrades the query to a full scan
     * instead of matching garbage codewords.
     */
    std::vector<std::uint32_t> indexPageCrcs;

    /**
     * Transposed (bit-sliced) plane of the secondary file, for the
     * word-parallel FS1 host kernel.  Null when planes were neither
     * loaded from a v3 store nor built with buildSlicedIndexes();
     * the engine then scans row-major.  Shared so cached IndexScans
     * and concurrent workers can hold it without copying.
     */
    std::shared_ptr<const scw::BitSlicedIndex> sliced;

    /**
     * MVCC generation this version was published at.  0 = the
     * immutable load-time base; live commits publish versions stamped
     * with monotonically increasing generations.
     */
    std::uint64_t generation = 0;

    /**
     * Entries of `index` covered by the base `sliced` plane.  A live
     * assertz commit concatenates new clauses onto the base images
     * without rebuilding the (large) base plane; the tail
     * [baseEntries, entryCount) is covered by `deltaSliced` instead.
     * 0 means `sliced`, when present, covers the whole index.
     */
    std::size_t baseEntries = 0;

    /**
     * LSM-flavored delta mini-plane over the index tail appended since
     * the base plane was built.  Rebuilt O(delta) at each commit;
     * folded into a fresh full plane at checkpoint.  Null when the
     * version carries no un-sliced tail.
     */
    std::shared_ptr<const scw::BitSlicedIndex> deltaSliced;
};

/**
 * The predicate store: builds clause and secondary files from parsed
 * programs and lays them out on a pair of modeled disks (data and
 * index regions of one spindle in the real system; two images here
 * for clarity of accounting).
 */
class PredicateStore
{
  public:
    PredicateStore(const term::SymbolTable &symbols,
                   scw::CodewordGenerator generator,
                   storage::DiskGeometry geometry =
                       storage::DiskGeometry::fujitsuM2351A());

    /** Compile and store every predicate of a program. */
    void addProgram(const term::Program &program);

    /**
     * Insert an already-compiled predicate (the store-loading path);
     * the rule fraction is re-derived from the record flags.
     * @param sliced pre-built bit-sliced plane (e.g. deserialized from
     *        a v3 store), or null to leave the predicate row-major
     */
    void addStored(const term::PredicateId &pred,
                   storage::ClauseFile clauses,
                   scw::SecondaryFile index,
                   std::shared_ptr<const scw::BitSlicedIndex> sliced =
                       nullptr);

    /**
     * Build the transposed plane for every predicate that lacks one
     * (addProgram leaves them unbuilt; v2 stores load without them).
     * Idempotent; callable before or after finalize() — the plane is
     * host-side metadata and does not change the on-disk images.
     */
    void buildSlicedIndexes();

    /** Finish layout: load the concatenated images onto the disks. */
    void finalize();

    bool has(const term::PredicateId &pred) const;

    /**
     * The head (newest) version of @p pred.  The reference stays valid
     * for the store's lifetime only for generation-0 predicates; under
     * live updates prefer predicateVersion(), which pins the version
     * with shared ownership.
     */
    const StoredPredicate &predicate(const term::PredicateId &pred) const;

    /**
     * Pin one MVCC version of @p pred: the newest version whose
     * generation is <= @p generation (or the head when omitted).
     * Returns null when the predicate does not exist, or existed only
     * after the requested generation.  The returned pointer keeps the
     * version (and its images) alive regardless of later commits, so
     * readers never block on or observe an in-flight writer.
     */
    std::shared_ptr<const StoredPredicate>
    predicateVersion(const term::PredicateId &pred,
                     std::optional<std::uint64_t> generation = {}) const;

    /** Generation of the newest published commit (0 = load-time). */
    std::uint64_t headGeneration() const;

    /**
     * Publish new versions of the given predicates as one atomic
     * commit.  Stamps every version with the new generation, appends
     * it to the version chains, and registers predicates not seen
     * before.  Readers pinned to older generations are unaffected.
     * @return the generation the versions were published at
     */
    std::uint64_t publish(
        std::map<term::PredicateId,
                 std::shared_ptr<StoredPredicate>> versions);

    const std::vector<term::PredicateId> &predicates() const
    {
        return order_;
    }

    const storage::DiskModel &dataDisk() const { return dataDisk_; }
    const storage::DiskModel &indexDisk() const { return indexDisk_; }
    const scw::CodewordGenerator &generator() const { return generator_; }

    /**
     * Configure the L1 track caches of both modeled disks (the store
     * owns the disks; the server only holds a const reference).  The
     * default-constructed config disables them, which is the seed
     * behaviour.
     */
    void configureDiskCaches(const storage::DiskCacheConfig &config)
    {
        dataDisk_.configureCache(config);
        indexDisk_.configureCache(config);
    }

    /** Drop all resident tracks, e.g. after reloading the images. */
    void dropDiskCaches() const
    {
        dataDisk_.dropCache();
        indexDisk_.dropCache();
    }

    /** Total bytes of clause data stored. */
    std::uint64_t dataBytes() const;
    /** Total bytes of index data stored. */
    std::uint64_t indexBytes() const;

  private:
    const term::SymbolTable &symbols_;
    scw::CodewordGenerator generator_;
    term::TermWriter writer_;
    storage::DiskModel dataDisk_;
    storage::DiskModel indexDisk_;
    std::map<term::PredicateId, StoredPredicate> preds_;

    /**
     * Predicate enumeration order.  Only publish() of a *new*
     * predicate appends here (under mvccMutex_); concurrent readers
     * iterating predicates() while a writer introduces a brand-new
     * predicate is the one enumeration hazard — the serving tier
     * resolves predicates by id, never by enumeration, on the hot
     * path.
     */
    std::vector<term::PredicateId> order_;
    bool finalized_ = false;

    /**
     * MVCC version chains, newest last, each entry (generation,
     * version).  Generation-0 versions live in preds_ (keeping every
     * pre-existing accessor valid); chains only exist for predicates
     * touched by a live commit.  Guarded by mvccMutex_ (unique_ptr so
     * the store stays movable before serving starts).
     */
    std::unique_ptr<std::shared_mutex> mvccMutex_;
    std::uint64_t headGeneration_ = 0;
    std::map<term::PredicateId,
             std::vector<std::pair<std::uint64_t,
                                   std::shared_ptr<const StoredPredicate>>>>
        versions_;
};

} // namespace clare::crs

#endif // CLARE_CRS_STORE_HH
