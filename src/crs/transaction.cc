#include "crs/transaction.hh"

#include <algorithm>

#include "support/logging.hh"

namespace clare::crs {

bool
LockManager::acquire(ClientId client, const term::PredicateId &pred,
                     LockKind kind)
{
    Entry &entry = locks_[pred];
    if (kind == LockKind::Shared) {
        if (entry.exclusive && entry.exclusiveOwner != client)
            return false;
        if (entry.exclusive)
            return true;    // owner already has exclusive access
        entry.sharers.insert(client);
        return true;
    }
    // Exclusive.
    if (entry.exclusive)
        return entry.exclusiveOwner == client;
    if (!entry.sharers.empty() &&
        !(entry.sharers.size() == 1 && entry.sharers.count(client))) {
        return false;
    }
    entry.sharers.clear();
    entry.exclusive = true;
    entry.exclusiveOwner = client;
    return true;
}

bool
LockManager::upgrade(ClientId client, const term::PredicateId &pred)
{
    auto it = locks_.find(pred);
    if (it == locks_.end() || !it->second.sharers.count(client))
        return false;
    return acquire(client, pred, LockKind::Exclusive);
}

void
LockManager::release(ClientId client, const term::PredicateId &pred)
{
    auto it = locks_.find(pred);
    clare_assert(it != locks_.end(), "releasing an unheld lock");
    Entry &entry = it->second;
    if (entry.exclusive) {
        clare_assert(entry.exclusiveOwner == client,
                     "client %u releasing client %u's exclusive lock",
                     client, entry.exclusiveOwner);
        entry.exclusive = false;
        entry.exclusiveOwner = 0;
    } else {
        clare_assert(entry.sharers.erase(client) == 1,
                     "client %u releasing an unheld shared lock",
                     client);
    }
    if (!entry.exclusive && entry.sharers.empty())
        locks_.erase(it);
}

void
LockManager::releaseAll(ClientId client)
{
    std::vector<term::PredicateId> to_release;
    for (const auto &kv : locks_) {
        if ((kv.second.exclusive && kv.second.exclusiveOwner == client) ||
            kv.second.sharers.count(client)) {
            to_release.push_back(kv.first);
        }
    }
    for (const auto &pred : to_release)
        release(client, pred);
}

bool
LockManager::holds(ClientId client, const term::PredicateId &pred) const
{
    auto it = locks_.find(pred);
    if (it == locks_.end())
        return false;
    return (it->second.exclusive &&
            it->second.exclusiveOwner == client) ||
        it->second.sharers.count(client) != 0;
}

std::size_t
LockManager::holders(const term::PredicateId &pred) const
{
    auto it = locks_.find(pred);
    if (it == locks_.end())
        return 0;
    return it->second.exclusive ? 1 : it->second.sharers.size();
}

Transaction::~Transaction()
{
    if (active_)
        abort();
}

bool
Transaction::acquire(const term::PredicateId &pred, LockKind kind)
{
    clare_assert(active_, "operation on a finished transaction");
    if (!manager_.acquire(client_, pred, kind))
        return false;
    held_.emplace_back(pred, kind);
    return true;
}

bool
Transaction::acquireAll(std::vector<term::PredicateId> preds,
                        LockKind kind)
{
    clare_assert(active_, "operation on a finished transaction");
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    std::vector<term::PredicateId> got;
    for (const auto &pred : preds) {
        if (!manager_.acquire(client_, pred, kind)) {
            for (const auto &p : got)
                manager_.release(client_, p);
            return false;
        }
        got.push_back(pred);
    }
    for (const auto &pred : got)
        held_.emplace_back(pred, kind);
    return true;
}

void
Transaction::releaseHeld()
{
    for (const auto &[pred, kind] : held_)
        manager_.release(client_, pred);
    held_.clear();
}

void
Transaction::commit()
{
    clare_assert(active_, "commit of a finished transaction");
    // Invalidate before releasing: the exclusive locks are still held,
    // so no concurrent reader can re-cache a result derived from the
    // pre-commit state in between.  Deduplicate (a predicate can be
    // acquired shared then again exclusive).
    if (sink_ != nullptr) {
        std::vector<term::PredicateId> written;
        for (const auto &[pred, kind] : held_)
            if (kind == LockKind::Exclusive)
                written.push_back(pred);
        std::sort(written.begin(), written.end());
        written.erase(std::unique(written.begin(), written.end()),
                      written.end());
        for (const auto &pred : written)
            sink_->invalidatePredicate(pred);
    }
    releaseHeld();
    active_ = false;
}

void
Transaction::abort()
{
    clare_assert(active_, "abort of a finished transaction");
    releaseHeld();
    active_ = false;
}

} // namespace clare::crs
