#include "crs/transaction.hh"

#include <algorithm>

#include "support/logging.hh"

namespace clare::crs {

bool
LockManager::acquire(ClientId client, const term::PredicateId &pred,
                     LockKind kind)
{
    Entry &entry = locks_[pred];
    if (kind == LockKind::Shared) {
        if (entry.exclusive && entry.exclusiveOwner != client)
            return false;
        if (entry.exclusive)
            return true;    // owner already has exclusive access
        entry.sharers.insert(client);
        return true;
    }
    // Exclusive.
    if (entry.exclusive)
        return entry.exclusiveOwner == client;
    if (!entry.sharers.empty() &&
        !(entry.sharers.size() == 1 && entry.sharers.count(client))) {
        return false;
    }
    entry.sharers.clear();
    entry.exclusive = true;
    entry.exclusiveOwner = client;
    return true;
}

bool
LockManager::upgrade(ClientId client, const term::PredicateId &pred)
{
    auto it = locks_.find(pred);
    if (it == locks_.end())
        return false;
    // Already exclusive: upgrading one's own lock is a no-op success;
    // someone else's is a conflict.
    if (it->second.exclusive)
        return it->second.exclusiveOwner == client;
    if (!it->second.sharers.count(client))
        return false;
    // A sole sharer upgrades in place; any co-sharer is a conflict
    // (acquire() handles both cases).
    return acquire(client, pred, LockKind::Exclusive);
}

void
LockManager::downgrade(ClientId client, const term::PredicateId &pred)
{
    auto it = locks_.find(pred);
    clare_assert(it != locks_.end() && it->second.exclusive &&
                     it->second.exclusiveOwner == client,
                 "client %u downgrading an unheld exclusive lock",
                 client);
    it->second.exclusive = false;
    it->second.exclusiveOwner = 0;
    it->second.sharers.insert(client);
}

void
LockManager::release(ClientId client, const term::PredicateId &pred)
{
    auto it = locks_.find(pred);
    clare_assert(it != locks_.end(), "releasing an unheld lock");
    Entry &entry = it->second;
    if (entry.exclusive) {
        clare_assert(entry.exclusiveOwner == client,
                     "client %u releasing client %u's exclusive lock",
                     client, entry.exclusiveOwner);
        entry.exclusive = false;
        entry.exclusiveOwner = 0;
    } else {
        clare_assert(entry.sharers.erase(client) == 1,
                     "client %u releasing an unheld shared lock",
                     client);
    }
    if (!entry.exclusive && entry.sharers.empty())
        locks_.erase(it);
}

void
LockManager::releaseAll(ClientId client)
{
    std::vector<term::PredicateId> to_release;
    for (const auto &kv : locks_) {
        if ((kv.second.exclusive && kv.second.exclusiveOwner == client) ||
            kv.second.sharers.count(client)) {
            to_release.push_back(kv.first);
        }
    }
    for (const auto &pred : to_release)
        release(client, pred);
}

bool
LockManager::holds(ClientId client, const term::PredicateId &pred) const
{
    return heldKind(client, pred).has_value();
}

std::optional<LockKind>
LockManager::heldKind(ClientId client,
                      const term::PredicateId &pred) const
{
    auto it = locks_.find(pred);
    if (it == locks_.end())
        return std::nullopt;
    if (it->second.exclusive && it->second.exclusiveOwner == client)
        return LockKind::Exclusive;
    if (it->second.sharers.count(client) != 0)
        return LockKind::Shared;
    return std::nullopt;
}

std::size_t
LockManager::holders(const term::PredicateId &pred) const
{
    auto it = locks_.find(pred);
    if (it == locks_.end())
        return 0;
    return it->second.exclusive ? 1 : it->second.sharers.size();
}

Transaction::~Transaction()
{
    if (active_)
        abort();
}

void
Transaction::recordHeld(const term::PredicateId &pred, LockKind kind)
{
    // The manager's acquire is idempotent for a lock the client
    // already holds, so held_ must deduplicate: a second entry for
    // the same predicate would double-release on commit/abort and
    // trip the manager's unheld-lock assert.  Re-acquiring at a
    // stronger kind records the strength in place (the manager
    // granted exclusive; commit must invalidate).
    for (auto &held : held_) {
        if (held.first == pred) {
            if (kind == LockKind::Exclusive)
                held.second = LockKind::Exclusive;
            return;
        }
    }
    held_.emplace_back(pred, kind);
}

bool
Transaction::acquire(const term::PredicateId &pred, LockKind kind)
{
    clare_assert(active_, "operation on a finished transaction");
    if (!manager_.acquire(client_, pred, kind))
        return false;
    recordHeld(pred, kind);
    return true;
}

bool
Transaction::acquireAll(std::vector<term::PredicateId> preds,
                        LockKind kind)
{
    clare_assert(active_, "operation on a finished transaction");
    std::sort(preds.begin(), preds.end());
    preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
    std::vector<term::PredicateId> got;
    std::vector<term::PredicateId> upgraded;
    for (const auto &pred : preds) {
        std::optional<LockKind> prior = manager_.heldKind(client_, pred);
        if (!manager_.acquire(client_, pred, kind)) {
            // Roll back only what this call changed: release the locks
            // it newly created and downgrade the ones it strengthened
            // in place — a lock the transaction already held stays
            // held *at its prior strength* on failure.
            for (const auto &p : got)
                manager_.release(client_, p);
            for (const auto &p : upgraded)
                manager_.downgrade(client_, p);
            return false;
        }
        if (!prior)
            got.push_back(pred);
        else if (*prior == LockKind::Shared &&
                 kind == LockKind::Exclusive)
            upgraded.push_back(pred);
    }
    for (const auto &pred : preds)
        recordHeld(pred, kind);
    return true;
}

bool
Transaction::upgrade(const term::PredicateId &pred)
{
    clare_assert(active_, "operation on a finished transaction");
    if (!manager_.upgrade(client_, pred))
        return false;
    recordHeld(pred, LockKind::Exclusive);
    return true;
}

void
Transaction::releaseHeld()
{
    for (const auto &[pred, kind] : held_)
        manager_.release(client_, pred);
    held_.clear();
}

void
Transaction::commit()
{
    clare_assert(active_, "commit of a finished transaction");
    // Invalidate before releasing: the exclusive locks are still held,
    // so no concurrent reader can re-cache a result derived from the
    // pre-commit state in between.  Deduplicate (a predicate can be
    // acquired shared then again exclusive).
    if (sink_ != nullptr) {
        std::vector<term::PredicateId> written;
        for (const auto &[pred, kind] : held_)
            if (kind == LockKind::Exclusive)
                written.push_back(pred);
        std::sort(written.begin(), written.end());
        written.erase(std::unique(written.begin(), written.end()),
                      written.end());
        for (const auto &pred : written)
            sink_->invalidatePredicate(pred);
    }
    releaseHeld();
    active_ = false;
}

void
Transaction::abort()
{
    clare_assert(active_, "abort of a finished transaction");
    releaseHeld();
    active_ = false;
}

} // namespace clare::crs
