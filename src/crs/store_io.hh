/**
 * @file
 * Whole-store persistence: save a compiled PredicateStore — symbol
 * table, SCW configuration, and every predicate's clause and
 * secondary files — into a directory, and load it back in a fresh
 * process.  This is the "build the knowledge base once, open it per
 * session" usage the PDBM's disk-resident modules imply.
 *
 * Layout of a store directory:
 *
 *   symbols.tbl          interned atom names and float constants
 *   manifest.txt         SCW parameters + one line per predicate
 *   <functor>_<arity>.kbc    clause file (storage::saveClauseFile)
 *   <functor>_<arity>.idx    secondary file image
 *
 * Manifest v3 additionally records the index format and the byte size
 * of every predicate file, carries a manifest-crc line protecting
 * every byte below it (a flipped SCW parameter would otherwise build
 * an index that silently matches nothing), and the .idx images are
 * wrapped in the checksummed page frame (storage::writeFramedBytes).
 * loadStore()
 * cross-checks the manifest against the directory listing and reports
 * *every* missing, extra, or size-mismatched file in one
 * CorruptionError, so a damaged store is diagnosed in a single pass
 * rather than one failure per rerun.  v2 stores (raw .idx, no sizes)
 * still load.
 */

#ifndef CLARE_CRS_STORE_IO_HH
#define CLARE_CRS_STORE_IO_HH

#include <string>

#include "crs/store.hh"

namespace clare::crs {

/** Current manifest version (v3 = manifest crc, framed idx, sizes). */
constexpr int kStoreManifestVersion = 3;
/** Oldest manifest version still readable. */
constexpr int kStoreManifestVersionCompat = 2;

/** Persist a finalized store (and its symbol table) to a directory. */
void saveStore(const std::string &directory, const PredicateStore &store,
               const term::SymbolTable &symbols);

/**
 * Load a persisted store.
 *
 * @param symbols a *fresh* symbol table to repopulate (ids must come
 *        out dense and identical to the saved ones; loading into a
 *        table that already interned other names is rejected)
 * @return a finalized PredicateStore backed by the loaded images
 */
PredicateStore loadStore(const std::string &directory,
                         term::SymbolTable &symbols);

} // namespace clare::crs

#endif // CLARE_CRS_STORE_IO_HH
