/**
 * @file
 * Whole-store persistence: save a compiled PredicateStore — symbol
 * table, SCW configuration, and every predicate's clause and
 * secondary files — into a directory, and load it back in a fresh
 * process.  This is the "build the knowledge base once, open it per
 * session" usage the PDBM's disk-resident modules imply.
 *
 * Layout of a store directory:
 *
 *   symbols.tbl          interned atom names and float constants
 *   manifest.txt         SCW parameters + one line per predicate
 *   <functor>_<arity>.kbc    clause file (storage::saveClauseFile)
 *   <functor>_<arity>.idx    secondary file image
 *
 * Manifest v3 additionally records the index format and the byte size
 * of every predicate file, carries a manifest-crc line protecting
 * every byte below it (a flipped SCW parameter would otherwise build
 * an index that silently matches nothing), and the .idx images are
 * wrapped in the checksummed page frame (storage::writeFramedBytes).
 * loadStore()
 * cross-checks the manifest against the directory listing and reports
 * *every* missing, extra, or size-mismatched file in one
 * CorruptionError, so a damaged store is diagnosed in a single pass
 * rather than one failure per rerun.  v2 stores (raw .idx, no sizes)
 * still load.
 *
 * Manifest v4 (the live-update format) adds one optional line,
 *
 *   wal <appliedLsn>
 *
 * recording the write-ahead-log watermark the store was checkpointed
 * at: WAL records with LSN below it are already folded into the
 * predicate files and must be skipped on replay.  v2 and v3 stores
 * (no wal line; watermark 0) still load unchanged.
 *
 * Checkpointing introduces the CURRENT indirection at the *root*
 * directory (see crs::LiveStore::checkpoint): each checkpoint writes a
 * complete store into `<root>/ckpt-<lsn>/` and then atomically renames
 * CURRENT.tmp over `<root>/CURRENT`, whose single line names the live
 * subdirectory.  openStore() follows CURRENT when present and falls
 * back to treating the root itself as a (flat, pre-checkpoint) store
 * directory, so every v2/v3 layout keeps loading.
 */

#ifndef CLARE_CRS_STORE_IO_HH
#define CLARE_CRS_STORE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crs/store.hh"

namespace clare::crs {

/** Current manifest version (v4 = optional wal watermark line). */
constexpr int kStoreManifestVersion = 4;
/** Oldest manifest version still readable. */
constexpr int kStoreManifestVersionCompat = 2;

/** The WAL watermark of a manifest (absent below v4). */
struct StoreWalInfo
{
    bool present = false;        ///< manifest carried a wal line
    std::uint64_t appliedLsn = 0; ///< records below this are applied
};

/** File stem a predicate's .kbc/.idx pair is stored under. */
std::string predicateFileStem(const term::PredicateId &pred);

/**
 * Persist a finalized store (and its symbol table) to a directory.
 * @param wal optional watermark to record as the manifest's wal line
 */
void saveStore(const std::string &directory, const PredicateStore &store,
               const term::SymbolTable &symbols,
               const StoreWalInfo *wal = nullptr);

/**
 * Persist a *slice* of a finalized store: only the predicates in
 * @p predicateSet, but the **full** symbol table.  A slice directory
 * is a complete, self-contained v4 store (same manifest + CRC
 * framing; loadStore/openStore read it unchanged) whose manifest just
 * lists fewer predicates — which is what makes per-backend memory
 * scale down with the shard count while symbol ids round-trip exactly
 * as they do for the whole store: every slice shares the schema the
 * unsharded store would have persisted, so a goal encoded against any
 * slice's table carries the same ids the full store's table would
 * assign, and responses stay bit-identical across the split.
 *
 * @param predicateSet the predicates to include; each must exist in
 *        @p store
 * @throws Error when a requested predicate is not in the store
 */
void saveStoreSlice(const std::string &directory,
                    const PredicateStore &store,
                    const term::SymbolTable &symbols,
                    const std::vector<term::PredicateId> &predicateSet,
                    const StoreWalInfo *wal = nullptr);

/**
 * Load a persisted store.
 *
 * @param symbols a *fresh* symbol table to repopulate (ids must come
 *        out dense and identical to the saved ones; loading into a
 *        table that already interned other names is rejected)
 * @param wal when non-null, receives the manifest's WAL watermark
 * @return a finalized PredicateStore backed by the loaded images
 */
PredicateStore loadStore(const std::string &directory,
                         term::SymbolTable &symbols,
                         StoreWalInfo *wal = nullptr);

/**
 * CURRENT-aware store opening: when `<root>/CURRENT` exists its single
 * line names the checkpoint subdirectory to load; otherwise @p root
 * itself is loaded as a flat store directory.  This is the one entry
 * point a recovering process needs — paired with replaying the WAL
 * from the returned watermark, it reconstructs exactly the last
 * committed state no matter where a crash interrupted a checkpoint.
 */
PredicateStore openStore(const std::string &root,
                         term::SymbolTable &symbols,
                         StoreWalInfo *wal = nullptr);

} // namespace clare::crs

#endif // CLARE_CRS_STORE_IO_HH
