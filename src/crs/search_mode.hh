/**
 * @file
 * The four clause-retrieval search modes of section 2.2:
 *
 *   (a) software only — the CRS performs the search itself,
 *   (b) FS1 only — the superimposed-codeword hardware,
 *   (c) FS2 only — the partial test unification hardware,
 *   (d) FS1 + FS2 — the two-stage hardware filter.
 */

#ifndef CLARE_CRS_SEARCH_MODE_HH
#define CLARE_CRS_SEARCH_MODE_HH

#include <cstdint>

namespace clare::crs {

/** The retrieval configurations the CRS can choose between. */
enum class SearchMode : std::uint8_t
{
    SoftwareOnly,
    Fs1Only,
    Fs2Only,
    TwoStage,
};

/** Human-readable mode name (paper lettering included). */
constexpr const char *
searchModeName(SearchMode mode)
{
    switch (mode) {
      case SearchMode::SoftwareOnly: return "(a) software";
      case SearchMode::Fs1Only: return "(b) FS1 only";
      case SearchMode::Fs2Only: return "(c) FS2 only";
      case SearchMode::TwoStage: return "(d) FS1+FS2";
    }
    return "?";
}

/** Identifier-safe mode name (metric keys, JSON fields). */
constexpr const char *
searchModeSlug(SearchMode mode)
{
    switch (mode) {
      case SearchMode::SoftwareOnly: return "software";
      case SearchMode::Fs1Only: return "fs1";
      case SearchMode::Fs2Only: return "fs2";
      case SearchMode::TwoStage: return "two_stage";
    }
    return "unknown";
}

/** Number of modes (for sweeps). */
constexpr std::size_t kSearchModeCount = 4;

} // namespace clare::crs

#endif // CLARE_CRS_SEARCH_MODE_HH
