#include "crs/store_io.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scw/codeword.hh"
#include "storage/file_io.hh"
#include "support/logging.hh"

namespace clare::crs {

namespace fs = std::filesystem;

namespace {

std::string
predicateStem(const term::PredicateId &pred)
{
    // Functor names can contain anything; file stems use the id.
    return "pred_" + std::to_string(pred.functor) + "_" +
        std::to_string(pred.arity);
}

} // namespace

void
saveStore(const std::string &directory, const PredicateStore &store,
          const term::SymbolTable &symbols)
{
    std::error_code ec;
    fs::create_directories(directory, ec);
    if (ec)
        clare_fatal("cannot create store directory '%s': %s",
                    directory.c_str(), ec.message().c_str());

    storage::saveSymbolTable(directory + "/symbols.tbl", symbols);

    const scw::ScwConfig &config = store.generator().config();
    std::ostringstream manifest;
    manifest << "clare-store " << scw::kIndexFormatVersion << '\n';
    manifest << "scw " << config.fieldBits << ' ' << config.bitsPerTerm
             << ' ' << config.encodedArgs << ' ' << config.seed << '\n';
    for (const term::PredicateId &pred : store.predicates()) {
        const StoredPredicate &stored = store.predicate(pred);
        std::string stem = predicateStem(pred);
        manifest << "pred " << pred.functor << ' ' << pred.arity << ' '
                 << stem << '\n';
        storage::saveClauseFile(directory + "/" + stem + ".kbc",
                                stored.clauses);
        storage::writeBytes(directory + "/" + stem + ".idx",
                            stored.index.image());
    }
    std::ofstream out(directory + "/manifest.txt");
    if (!out)
        clare_fatal("cannot write '%s/manifest.txt'", directory.c_str());
    out << manifest.str();
}

PredicateStore
loadStore(const std::string &directory, term::SymbolTable &symbols)
{
    storage::loadSymbolTable(directory + "/symbols.tbl", symbols);

    std::ifstream in(directory + "/manifest.txt");
    if (!in)
        clare_fatal("cannot read '%s/manifest.txt'", directory.c_str());

    std::string word;
    int version = 0;
    if (!(in >> word >> version) || word != "clare-store") {
        clare_fatal("'%s/manifest.txt' has an unsupported header",
                    directory.c_str());
    }
    if (version != scw::kIndexFormatVersion) {
        // The signature encoding changed; old images would be decoded
        // against the new token hashing and match garbage.
        clare_fatal("'%s' uses index format %d but this build writes "
                    "format %d; rebuild the store to regenerate its "
                    "signatures", directory.c_str(), version,
                    scw::kIndexFormatVersion);
    }

    scw::ScwConfig config;
    if (!(in >> word >> config.fieldBits >> config.bitsPerTerm >>
          config.encodedArgs >> config.seed) ||
        word != "scw") {
        clare_fatal("'%s/manifest.txt' is missing the scw line",
                    directory.c_str());
    }

    PredicateStore store(symbols, scw::CodewordGenerator(config));
    std::uint32_t functor = 0;
    std::uint32_t arity = 0;
    std::string stem;
    while (in >> word >> functor >> arity >> stem) {
        if (word != "pred")
            clare_fatal("'%s/manifest.txt': unexpected entry '%s'",
                        directory.c_str(), word.c_str());
        storage::ClauseFile clauses = storage::loadClauseFile(
            directory + "/" + stem + ".kbc");
        term::PredicateId pred{functor, arity};
        if (!(clauses.predicate() == pred))
            clare_fatal("'%s': %s.kbc does not hold %u/%u",
                        directory.c_str(), stem.c_str(), functor, arity);

        // Rebuild the secondary file from the persisted raw image by
        // re-deriving entries against the clause directory (the image
        // is position-independent, so a size check suffices).
        std::vector<std::uint8_t> index_image = storage::readBytes(
            directory + "/" + stem + ".idx");
        scw::CodewordGenerator generator(config);
        std::size_t entry_bytes = generator.signatureBytes() + 8;
        if (index_image.size() != entry_bytes * clauses.clauseCount())
            clare_fatal("'%s': %s.idx has %zu bytes, expected %zu",
                        directory.c_str(), stem.c_str(),
                        index_image.size(),
                        entry_bytes * clauses.clauseCount());
        scw::SecondaryFile index = scw::SecondaryFile::fromImage(
            std::move(index_image), clauses.clauseCount(), entry_bytes);

        store.addStored(pred, std::move(clauses), std::move(index));
    }
    store.finalize();
    return store;
}

} // namespace clare::crs
