#include "crs/store_io.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "scw/bit_sliced_index.hh"
#include "scw/codeword.hh"
#include "storage/file_io.hh"
#include "support/crc32.hh"
#include "support/errors.hh"
#include "support/logging.hh"

namespace clare::crs {

namespace fs = std::filesystem;

std::string
predicateFileStem(const term::PredicateId &pred)
{
    // Functor names can contain anything; file stems use the id.
    return "pred_" + std::to_string(pred.functor) + "_" +
        std::to_string(pred.arity);
}

namespace {

/** One pred line of the manifest (sizes are -1 in v2 manifests). */
struct ManifestEntry
{
    std::uint32_t functor = 0;
    std::uint32_t arity = 0;
    std::string stem;
    long long kbcBytes = -1;
    long long idxBytes = -1;
};

long long
sizeOnDisk(const fs::path &path)
{
    std::error_code ec;
    auto size = fs::file_size(path, ec);
    return ec ? -1 : static_cast<long long>(size);
}

/**
 * Cross-check the manifest's pred entries against the store
 * directory.  Returns the full list of discrepancies — missing files,
 * size mismatches, stray pred_* files the manifest does not claim —
 * so one load attempt diagnoses the whole store.
 */
std::vector<std::string>
auditStoreDirectory(const std::string &directory,
                    const std::vector<ManifestEntry> &entries)
{
    std::vector<std::string> problems;
    std::map<std::string, long long> expected; // file name -> size
    for (const ManifestEntry &e : entries) {
        if (!expected.emplace(e.stem + ".kbc", e.kbcBytes).second)
            problems.push_back("duplicate manifest entry for '" +
                               e.stem + "'");
        expected.emplace(e.stem + ".idx", e.idxBytes);
    }

    std::map<std::string, long long> present;
    std::error_code ec;
    for (const auto &dirent : fs::directory_iterator(directory, ec)) {
        std::string name = dirent.path().filename().string();
        std::string ext = dirent.path().extension().string();
        if (name.rfind("pred_", 0) == 0 &&
            (ext == ".kbc" || ext == ".idx"))
            present[name] = sizeOnDisk(dirent.path());
    }
    if (ec) {
        problems.push_back("cannot list directory: " + ec.message());
        return problems;
    }

    for (const auto &[name, size] : expected) {
        auto it = present.find(name);
        if (it == present.end()) {
            problems.push_back("missing file '" + name + "'");
        } else if (size >= 0 && it->second != size) {
            problems.push_back("'" + name + "' is " +
                               std::to_string(it->second) +
                               " bytes, manifest says " +
                               std::to_string(size));
        }
    }
    for (const auto &[name, size] : present) {
        (void)size;
        if (expected.find(name) == expected.end())
            problems.push_back("extra file '" + name +
                               "' not in manifest");
    }
    return problems;
}

} // namespace

namespace {

/**
 * Shared body of saveStore/saveStoreSlice: persist @p preds (every
 * store predicate, or a slice's subset) plus the full symbol table.
 */
void
saveStoreImpl(const std::string &directory, const PredicateStore &store,
              const term::SymbolTable &symbols,
              const std::vector<term::PredicateId> &preds,
              const StoreWalInfo *wal)
{
    std::error_code ec;
    fs::create_directories(directory, ec);
    if (ec)
        throw IoError(directory,
                      "cannot create store directory: " + ec.message());

    storage::saveSymbolTable(directory + "/symbols.tbl", symbols);

    // Everything below the version header goes through one CRC: the
    // scw line parameterizes the codeword hashing, so an unnoticed
    // flip there would rebuild a generator whose query signatures
    // match nothing — silently empty FS1 results, not an error.
    const scw::ScwConfig &config = store.generator().config();
    std::ostringstream manifest;
    manifest << "index-format " << scw::kIndexFormatVersion << '\n';
    manifest << "scw " << config.fieldBits << ' ' << config.bitsPerTerm
             << ' ' << config.encodedArgs << ' ' << config.seed << '\n';
    if (wal != nullptr && wal->present)
        manifest << "wal " << wal->appliedLsn << '\n';
    for (const term::PredicateId &pred : preds) {
        const StoredPredicate &stored = store.predicate(pred);
        std::string stem = predicateFileStem(pred);
        std::string kbc = directory + "/" + stem + ".kbc";
        std::string idx = directory + "/" + stem + ".idx";
        storage::saveClauseFile(kbc, stored.clauses);
        // The framed .idx payload is the raw entry image followed by
        // the bit-sliced plane section (index format v3).  Reuse the
        // store's plane only when it covers the whole index — a live
        // composite head's base plane stops at baseEntries, and
        // persisting it would frame a plane that disagrees with the
        // entry image; such heads get a fresh full transpose (this is
        // where checkpointing folds the delta mini-plane away).
        std::vector<std::uint8_t> idx_payload = stored.index.image();
        if (stored.sliced != nullptr &&
            stored.sliced->entryCount() == stored.index.entryCount()) {
            stored.sliced->serialize(idx_payload);
        } else {
            scw::BitSlicedIndex::build(store.generator(), stored.index)
                .serialize(idx_payload);
        }
        storage::writeFramedBytes(idx, idx_payload);
        manifest << "pred " << pred.functor << ' ' << pred.arity << ' '
                 << stem << ' ' << sizeOnDisk(kbc) << ' '
                 << sizeOnDisk(idx) << '\n';
    }
    std::ofstream out(directory + "/manifest.txt");
    if (!out)
        throw IoError(directory + "/manifest.txt",
                      "cannot open for writing");
    const std::string body = manifest.str();
    out << "clare-store " << kStoreManifestVersion << '\n'
        << "manifest-crc "
        << support::crc32(
               reinterpret_cast<const std::uint8_t *>(body.data()),
               body.size())
        << '\n'
        << body;
}

} // namespace

void
saveStore(const std::string &directory, const PredicateStore &store,
          const term::SymbolTable &symbols, const StoreWalInfo *wal)
{
    saveStoreImpl(directory, store, symbols, store.predicates(), wal);
}

void
saveStoreSlice(const std::string &directory, const PredicateStore &store,
               const term::SymbolTable &symbols,
               const std::vector<term::PredicateId> &predicateSet,
               const StoreWalInfo *wal)
{
    for (const term::PredicateId &pred : predicateSet)
        if (!store.has(pred))
            throw Error("slice predicate " +
                        std::to_string(pred.functor) + "/" +
                        std::to_string(pred.arity) +
                        " is not in the store");
    saveStoreImpl(directory, store, symbols, predicateSet, wal);
}

PredicateStore
loadStore(const std::string &directory, term::SymbolTable &symbols,
          StoreWalInfo *wal)
{
    storage::loadSymbolTable(directory + "/symbols.tbl", symbols);

    const std::string manifest_path = directory + "/manifest.txt";
    std::string content;
    {
        std::ifstream file(manifest_path);
        if (!file)
            throw IoError(manifest_path, "cannot open for reading");
        std::ostringstream slurp;
        slurp << file.rdbuf();
        content = slurp.str();
    }
    std::istringstream in(content);

    auto bad_manifest = [&](const std::string &why) -> CorruptionError {
        return CorruptionError(manifest_path, kNoFilePosition,
                               kNoFilePosition, why);
    };

    std::string line;
    std::string word;
    int version = 0;
    {
        if (!std::getline(in, line))
            throw bad_manifest("empty manifest");
        std::istringstream header(line);
        if (!(header >> word >> version) || word != "clare-store")
            throw bad_manifest("unsupported header '" + line + "'");
    }
    if (version < kStoreManifestVersionCompat ||
        version > kStoreManifestVersion) {
        throw bad_manifest(
            "manifest version " + std::to_string(version) +
            " (this build reads v" +
            std::to_string(kStoreManifestVersionCompat) + "-v" +
            std::to_string(kStoreManifestVersion) + ")");
    }

    // v3 manifests carry a CRC over every byte after the crc line
    // itself, so a flipped bit anywhere in the body — including the
    // scw parameters, whose corruption would otherwise just produce
    // an index that silently matches nothing — is a typed error.
    if (version >= 3) {
        if (!std::getline(in, line))
            throw bad_manifest("missing manifest-crc line");
        std::istringstream crc_line(line);
        std::uint64_t stored = 0;
        if (!(crc_line >> word >> stored) || word != "manifest-crc")
            throw bad_manifest("missing manifest-crc line, got '" +
                               line + "'");
        std::streamoff body_at = in.tellg();
        if (body_at < 0)
            body_at = static_cast<std::streamoff>(content.size());
        std::uint32_t got = support::crc32(
            reinterpret_cast<const std::uint8_t *>(content.data()) +
                body_at,
            content.size() - static_cast<std::size_t>(body_at));
        if (got != stored)
            throw bad_manifest(
                "manifest checksum mismatch (stored " +
                std::to_string(stored) + ", computed " +
                std::to_string(got) + ")");
    }

    // The signature encoding is versioned separately from the
    // manifest: old images decoded against new token hashing would
    // match garbage, so a format skew is fatal to the load.  In v2
    // manifests the store version doubled as the index format.
    int index_format = version;
    if (version >= 3) {
        if (!std::getline(in, line))
            throw bad_manifest("missing index-format line");
        std::istringstream fmt(line);
        if (!(fmt >> word >> index_format) || word != "index-format")
            throw bad_manifest("missing index-format line, got '" +
                               line + "'");
    }
    if (index_format < scw::kIndexFormatVersionCompat ||
        index_format > scw::kIndexFormatVersion) {
        throw bad_manifest(
            "store uses index format " + std::to_string(index_format) +
            " but this build reads formats " +
            std::to_string(scw::kIndexFormatVersionCompat) + "-" +
            std::to_string(scw::kIndexFormatVersion) +
            "; rebuild the store to regenerate its signatures");
    }

    scw::ScwConfig config;
    if (!std::getline(in, line))
        throw bad_manifest("missing scw line");
    {
        std::istringstream scw_line(line);
        if (!(scw_line >> word >> config.fieldBits >> config.bitsPerTerm
              >> config.encodedArgs >> config.seed) ||
            word != "scw")
            throw bad_manifest("missing scw line, got '" + line + "'");
    }

    std::vector<ManifestEntry> entries;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        // v4: the optional WAL watermark line (replay skips records
        // already folded into the checkpointed predicate files).
        if (version >= 4 && line.rfind("wal ", 0) == 0) {
            std::istringstream wal_line(line);
            std::uint64_t applied = 0;
            if (!(wal_line >> word >> applied))
                throw bad_manifest("malformed wal line '" + line + "'");
            if (wal != nullptr) {
                wal->present = true;
                wal->appliedLsn = applied;
            }
            continue;
        }
        std::istringstream pred_line(line);
        ManifestEntry e;
        if (!(pred_line >> word >> e.functor >> e.arity >> e.stem) ||
            word != "pred")
            throw bad_manifest("unexpected entry '" + line + "'");
        if (version >= 3 &&
            !(pred_line >> e.kbcBytes >> e.idxBytes))
            throw bad_manifest("pred line missing file sizes: '" +
                               line + "'");
        entries.push_back(std::move(e));
    }

    // Audit the whole directory before touching any predicate file:
    // every discrepancy is collected into one error so a damaged
    // store is diagnosed in a single load attempt.
    std::vector<std::string> problems =
        auditStoreDirectory(directory, entries);
    if (!problems.empty()) {
        std::string joined;
        for (const std::string &p : problems) {
            if (!joined.empty())
                joined += "; ";
            joined += p;
        }
        throw CorruptionError(directory, kNoFilePosition,
                              kNoFilePosition,
                              std::to_string(problems.size()) +
                              " store discrepanc" +
                              (problems.size() == 1 ? "y" : "ies") +
                              ": " + joined);
    }

    PredicateStore store(symbols, scw::CodewordGenerator(config));
    for (const ManifestEntry &e : entries) {
        storage::ClauseFile clauses = storage::loadClauseFile(
            directory + "/" + e.stem + ".kbc");
        term::PredicateId pred{e.functor, e.arity};
        if (!(clauses.predicate() == pred))
            throw CorruptionError(
                directory + "/" + e.stem + ".kbc", kNoFilePosition,
                kNoFilePosition,
                "holds predicate " +
                std::to_string(clauses.predicate().functor) + "/" +
                std::to_string(clauses.predicate().arity) +
                ", manifest says " + std::to_string(e.functor) + "/" +
                std::to_string(e.arity));

        // Rebuild the secondary file from the persisted image by
        // re-deriving entries against the clause directory (the image
        // is position-independent, so a size check suffices).  v3
        // images are page-framed; v2 images are raw.
        const std::string idx_path = directory + "/" + e.stem + ".idx";
        std::vector<std::uint8_t> idx_payload = version >= 3
            ? storage::readFramedBytes(idx_path)
            : storage::readBytes(idx_path);
        scw::CodewordGenerator generator(config);
        std::size_t entry_bytes = generator.signatureBytes() + 8;
        std::size_t entry_total = entry_bytes * clauses.clauseCount();
        // Index format v2 payloads are exactly the entry image; v3
        // payloads carry the bit-sliced plane section after it.
        if (index_format < 3
                ? idx_payload.size() != entry_total
                : idx_payload.size() <= entry_total)
            throw CorruptionError(
                idx_path, kNoFilePosition, kNoFilePosition,
                "holds " + std::to_string(idx_payload.size()) +
                " payload bytes, expected " +
                (index_format < 3 ? "" : "more than ") +
                std::to_string(entry_total));
        std::vector<std::uint8_t> index_image(
            idx_payload.begin(),
            idx_payload.begin() +
                static_cast<std::ptrdiff_t>(entry_total));
        scw::SecondaryFile index = scw::SecondaryFile::fromImage(
            std::move(index_image), clauses.clauseCount(), entry_bytes);

        std::shared_ptr<const scw::BitSlicedIndex> sliced;
        if (index_format >= 3) {
            std::size_t at = entry_total;
            sliced = std::make_shared<scw::BitSlicedIndex>(
                scw::BitSlicedIndex::deserialize(idx_payload, at,
                                                 generator, index,
                                                 idx_path));
            if (at != idx_payload.size())
                throw CorruptionError(
                    idx_path, kNoFilePosition, kNoFilePosition,
                    std::to_string(idx_payload.size() - at) +
                    " trailing bytes after the sliced plane section");
        }

        store.addStored(pred, std::move(clauses), std::move(index),
                        std::move(sliced));
    }
    store.finalize();
    return store;
}

PredicateStore
openStore(const std::string &root, term::SymbolTable &symbols,
          StoreWalInfo *wal)
{
    const std::string current_path = root + "/CURRENT";
    std::error_code ec;
    if (!fs::exists(current_path, ec))
        return loadStore(root, symbols, wal);

    std::string name;
    {
        std::ifstream current(current_path);
        if (!current || !std::getline(current, name) || name.empty())
            throw CorruptionError(current_path, kNoFilePosition,
                                  kNoFilePosition,
                                  "empty or unreadable CURRENT file");
    }
    // CURRENT names a sibling subdirectory, nothing else: a corrupted
    // pointer must not walk the filesystem.
    if (name.find('/') != std::string::npos ||
        name.find("..") != std::string::npos)
        throw CorruptionError(current_path, kNoFilePosition,
                              kNoFilePosition,
                              "CURRENT names an invalid path '" + name +
                              "'");
    const std::string directory = root + "/" + name;
    if (!fs::exists(directory + "/manifest.txt", ec))
        throw CorruptionError(current_path, kNoFilePosition,
                              kNoFilePosition,
                              "CURRENT names '" + name +
                              "' but no such checkpoint exists");
    return loadStore(directory, symbols, wal);
}

} // namespace clare::crs
