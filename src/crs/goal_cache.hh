/**
 * @file
 * L3 of the retrieval cache hierarchy: a bounded goal-result cache in
 * the Clause Retrieval Server.
 *
 * Entries are keyed by the goal's canonical (variable-renaming-
 * invariant) key plus the resolved search mode — the same goal served
 * in two modes produces different candidate sets, so the mode is part
 * of the identity.  The stored value is the full RetrievalResponse
 * payload; a hit replays candidates, answers, and every filter
 * statistic bit-identically, while the breakdown charges only the
 * modeled cache lookup (StageBreakdown::cacheTime).
 *
 * Invalidation is per-predicate (through crs::Transaction commit via
 * the CacheInvalidationSink) or wholesale (store reload).  Degraded,
 * overflowed, or fault-touched responses are never admitted — the
 * server filters those before calling put().
 *
 * All access is mutex-guarded: the cache is shared across
 * serveBatch() workers and concurrent serve() callers.
 */

#ifndef CLARE_CRS_GOAL_CACHE_HH
#define CLARE_CRS_GOAL_CACHE_HH

#include <mutex>
#include <optional>
#include <string>

#include "crs/api.hh"
#include "support/lru.hh"
#include "term/clause.hh"

namespace clare::crs {

/** Canonical-goal+mode → RetrievalResponse cache (LRU-bounded). */
class GoalCache
{
  public:
    explicit GoalCache(std::size_t capacity);

    /** Look up and promote; the returned copy is the stored payload. */
    std::optional<RetrievalResponse> find(const std::string &key);

    /** Lookup without promotion (batch prediction passes). */
    bool contains(const std::string &key) const;

    /**
     * Admit a response under @p key, remembering @p pred for
     * per-predicate invalidation.  Returns true when the insertion
     * evicted the least-recent entry.
     */
    bool put(const std::string &key, const term::PredicateId &pred,
             const RetrievalResponse &response);

    /** Drop every entry of @p pred; returns the number removed. */
    std::size_t invalidatePredicate(const term::PredicateId &pred);

    std::size_t size() const;

    void clear();

  private:
    struct Entry
    {
        term::PredicateId pred;
        RetrievalResponse response;
    };

    mutable std::mutex mutex_;
    support::LruCache<std::string, Entry> cache_;
};

} // namespace clare::crs

#endif // CLARE_CRS_GOAL_CACHE_HH
