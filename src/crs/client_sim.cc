#include "crs/client_sim.hh"

#include <algorithm>

#include "support/logging.hh"

namespace clare::crs {

ClientSimulation::ClientSimulation(term::SymbolTable &symbols,
                                   const PredicateStore &store,
                                   CrsConfig config)
    : symbols_(symbols), store_(store),
      server_(symbols, store, config)
{
}

ClientId
ClientSimulation::addClient()
{
    Client client;
    client.id = nextId_++;
    client.stats.id = client.id;
    clients_.push_back(std::move(client));
    return clients_.back().id;
}

void
ClientSimulation::addJob(ClientId client, std::string query_text,
                         bool exclusive)
{
    for (Client &c : clients_) {
        if (c.id == client) {
            c.jobs.push_back(ClientJob{std::move(query_text), exclusive});
            return;
        }
    }
    clare_fatal("unknown client %u", client);
}

SimulationResult
ClientSimulation::run()
{
    SimulationResult result;
    term::TermReader reader(symbols_);

    bool work_left = true;
    while (work_left) {
        work_left = false;
        ++result.rounds;
        Tick round_longest = 0;

        // Phase 1: every client attempts its next job's lock.
        std::vector<std::pair<Client *, term::ParsedTerm>> admitted;
        for (Client &client : clients_) {
            if (client.jobs.empty())
                continue;
            work_left = true;
            const ClientJob &job = client.jobs.front();
            term::ParsedTerm goal = reader.parseTerm(job.queryText);

            term::PredicateId pred;
            if (goal.arena.kind(goal.root) == term::TermKind::Atom) {
                pred = term::PredicateId{
                    goal.arena.atomSymbol(goal.root), 0};
            } else {
                pred = term::PredicateId{goal.arena.functor(goal.root),
                                         goal.arena.arity(goal.root)};
            }
            LockKind kind = job.exclusive ? LockKind::Exclusive
                                          : LockKind::Shared;
            if (!locks_.acquire(client.id, pred, kind)) {
                ++client.stats.lockWaits;
                ++result.totalWaits;
                continue;
            }
            admitted.emplace_back(&client, std::move(goal));
        }

        // Phase 2: admitted jobs execute concurrently this round.
        for (auto &entry : admitted) {
            Client &client = *entry.first;
            const ClientJob &job = client.jobs.front();
            Tick elapsed = 0;
            if (!job.exclusive) {
                RetrievalRequest request;
                request.arena = &entry.second.arena;
                request.goal = entry.second.root;
                elapsed = server_.serve(request).elapsed;
            } else {
                // Updates are out of scope for the immutable store;
                // charge a nominal write window.
                elapsed = 5 * kMillisecond;
            }
            client.stats.busyTime += elapsed;
            round_longest = std::max(round_longest, elapsed);
            ++client.stats.completed;
            ++result.totalJobs;
            client.jobs.pop_front();
        }

        // Phase 3: locks release at the round boundary.
        for (auto &entry : admitted)
            locks_.releaseAll(entry.first->id);

        result.makespan += round_longest;

        // Deadlock-free by construction (single lock per job), but a
        // round that admitted nothing while work remains would spin.
        if (work_left && admitted.empty())
            clare_panic("client simulation made no progress");
    }

    for (const Client &client : clients_)
        result.clients.push_back(client.stats);
    return result;
}

} // namespace clare::crs
