/**
 * @file
 * The unified request/response API of the Clause Retrieval Server.
 *
 * One RetrievalRequest (goal, optional mode override, trace options)
 * enters serve()/serveBatch(); one RetrievalResponse (candidates,
 * answers, a StageBreakdown of per-stage simulated time, and a trace
 * handle) comes back.  This pair is the single authoritative code
 * path for per-stage accounting — local and networked (net/) callers
 * alike go through it, so responses agree bit-for-bit everywhere.
 */

#ifndef CLARE_CRS_API_HH
#define CLARE_CRS_API_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "crs/search_mode.hh"
#include "support/errors.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/sim_time.hh"
#include "term/term.hh"
#include "unify/tue_op.hh"

namespace clare::crs {

/**
 * A configuration field rejected by CrsConfig::validate().  Carries
 * the dotted field path so callers can report (or test) exactly which
 * knob is incoherent instead of pattern-matching a message.  Rooted at
 * clare::Error like the I/O taxonomy, so one catch covers every typed
 * failure the server can raise.
 */
class ConfigError : public Error
{
  public:
    ConfigError(std::string field, const std::string &why)
        : Error(field + ": " + why),
          field_(std::move(field))
    {
    }

    /** Dotted path of the offending field, e.g. "fs1.scanRate". */
    const std::string &field() const { return field_; }

  private:
    std::string field_;
};

/** Per-request tracing knobs. */
struct TraceOptions
{
    /** Record spans for this request into the server's tracer. */
    bool enabled = false;

    /**
     * Cap on fine-grained detail spans (e.g. FS2 double-buffer fills)
     * recorded per stage; coarse stage spans are never capped.
     */
    std::uint32_t maxDetailSpans = 32;
};

/** One retrieval, as presented to the unified front door. */
struct RetrievalRequest
{
    /** Arena holding the goal (not owned; must outlive the call). */
    const term::TermArena *arena = nullptr;
    term::TermRef goal{};
    /** Explicit search mode; empty lets the CRS choose. */
    std::optional<SearchMode> mode;
    TraceOptions trace{};

    /**
     * Serve this request from the full pipeline even when the server's
     * caches are enabled: neither consulted nor filled.  A bypassed
     * request on a warm server is bit-identical to the same request on
     * a server with caches disabled.
     */
    bool bypassCache = false;

    /**
     * Pin this request to an MVCC generation: the retrieval sees the
     * newest predicate version published at or before the pinned
     * generation, regardless of concurrent or later commits.  Empty
     * serves the head (newest) generation.  Snapshot-pinned requests
     * bypass the caches (whose entries are keyed to the live store)
     * rather than risk serving a different generation's answers.
     */
    std::optional<std::uint64_t> snapshot;
};

/**
 * Per-stage simulated time of one retrieval.  This is the single
 * shared shape for stage accounting: RetrievalResponse carries it,
 * the metrics exporter serializes it, and the bench harnesses print
 * it — no call site sums stage fields by hand.
 */
struct StageBreakdown
{
    /**
     * Pipeline queue wait under serveBatch(): simulated time between
     * this query's FS1 scan completing and the (serial) back half
     * picking it up.  Always 0 on the sequential path.
     */
    Tick queueWait = 0;
    /**
     * Modeled cache lookup/replay cost: the goal-cache hit cost on an
     * L3 hit, or the survivor-memo replay cost on an L2 hit.  Always 0
     * when the caches are disabled or missed, so uncached breakdowns
     * are unchanged.
     */
    Tick cacheTime = 0;
    Tick indexTime = 0;     ///< FS1 index scan
    Tick filterTime = 0;    ///< FS2 / software scan / candidate fetch
    Tick hostUnifyTime = 0; ///< modeled full-unification cost

    /** Service time excluding queueing — the query's own latency. */
    Tick
    serviceTime() const
    {
        return cacheTime + indexTime + filterTime + hostUnifyTime;
    }

    /** All stages including queue wait. */
    Tick
    total() const
    {
        return queueWait + serviceTime();
    }
};

/** JSON shape shared by the exporter and the bench harnesses. */
json::Value toJson(const StageBreakdown &breakdown);

/** Outcome of one retrieval. */
struct RetrievalResponse
{
    SearchMode mode = SearchMode::SoftwareOnly;

    /** Ordinals handed to full unification, in clause order. */
    std::vector<std::uint32_t> candidates;
    /** Ordinals that truly unify (the answer set), in clause order. */
    std::vector<std::uint32_t> answers;

    std::uint64_t indexEntriesScanned = 0;
    std::uint64_t fs1Hits = 0;
    std::uint64_t clausesExamined = 0;  ///< by FS2 or software matching
    unify::TueOpCounts filterOps{};

    /** Per-stage simulated time; breakdown.serviceTime() == elapsed. */
    StageBreakdown breakdown;
    /** Total retrieval latency (excludes batch queue wait). */
    Tick elapsed = 0;

    /**
     * Root span of this retrieval in the server's tracer, or 0 when
     * tracing was not requested.
     */
    obs::SpanId traceSpan = 0;

    /**
     * The predicate's index was corrupt or unreadable, so the
     * retrieval was downgraded to a full FS2 scan.  The answer set is
     * unaffected — host unification removes the extra candidates —
     * but candidates and timing reflect the full scan.
     */
    bool degraded = false;
    /** Index pages that failed their CRC check (when degraded). */
    std::uint32_t corruptIndexPages = 0;

    /**
     * FS2's Result Memory ran out of 512-byte slots mid-search.  The
     * candidate set is still complete; the satisfiers past capacity
     * were requeued through the host's ordinary candidate fetch
     * (already billed per candidate by hostUnify) instead of the real
     * hardware's silent address-counter wraparound over slot 0.
     */
    bool resultOverflow = false;
    /** Satisfiers re-fetched through the overflow requeue pass. */
    std::uint32_t satisfiersRequeued = 0;

    /**
     * Candidates that failed full unification.  A correct filter never
     * produces answers outside the candidate set, so the difference is
     * clamped at zero (the unsigned subtraction used to underflow to
     * ~2^64 on a false negative); debug builds assert instead so a
     * filter-correctness regression is loud rather than absurd.
     */
    std::uint64_t
    falseDrops() const
    {
#ifndef NDEBUG
        clare_assert(answers.size() <= candidates.size(),
                     "filter false negative: %zu answers from %zu "
                     "candidates", answers.size(), candidates.size());
#endif
        return candidates.size() > answers.size()
            ? candidates.size() - answers.size()
            : 0;
    }

    /**
     * Answers the filter missed (candidate set not a superset of the
     * answer set).  Always zero for a correct filter; exposed so
     * oracle-style tests can report the violation instead of watching
     * falseDrops() underflow.
     */
    std::uint64_t
    falseNegatives() const
    {
        return answers.size() > candidates.size()
            ? answers.size() - candidates.size()
            : 0;
    }

    double
    falseDropRate() const
    {
        return candidates.empty()
            ? 0.0
            : static_cast<double>(falseDrops()) /
              static_cast<double>(candidates.size());
    }
};

} // namespace clare::crs

#endif // CLARE_CRS_API_HH
