/**
 * @file
 * Multi-client access simulation for the CRS.
 *
 * The paper: "The CRS will also support simultaneous access by
 * multiple clients which involves procedures for concurrency control
 * and transaction handling."  This module drives several clients,
 * each with a queue of retrieval jobs (shared access) and update jobs
 * (exclusive access), through the lock manager in synchronous rounds:
 * every round each client attempts its next job, acquiring the goal
 * predicate's lock; conflicting clients wait and retry.  Readers of
 * one predicate proceed concurrently; a writer serializes them.
 *
 * The simulation reports per-client waits, total rounds, and a
 * makespan that charges each round the longest job that ran in it
 * (clients are independent machines sharing only the CLARE channel's
 * lock table).
 */

#ifndef CLARE_CRS_CLIENT_SIM_HH
#define CLARE_CRS_CLIENT_SIM_HH

#include <deque>
#include <string>
#include <vector>

#include "crs/server.hh"
#include "crs/transaction.hh"
#include "term/term_reader.hh"

namespace clare::crs {

/** One queued job for a client. */
struct ClientJob
{
    std::string queryText;
    bool exclusive = false;     ///< update: needs an exclusive lock
};

/** Per-client outcome counters. */
struct ClientStats
{
    ClientId id = 0;
    std::uint64_t completed = 0;
    std::uint64_t lockWaits = 0;
    Tick busyTime = 0;
};

/** Whole-simulation outcome. */
struct SimulationResult
{
    std::uint64_t rounds = 0;
    std::uint64_t totalJobs = 0;
    std::uint64_t totalWaits = 0;
    Tick makespan = 0;
    std::vector<ClientStats> clients;
};

/** The round-based multi-client driver. */
class ClientSimulation
{
  public:
    ClientSimulation(term::SymbolTable &symbols,
                     const PredicateStore &store, CrsConfig config = {});

    /** Register a client; returns its id. */
    ClientId addClient();

    /** Queue a job for a client. */
    void addJob(ClientId client, std::string query_text,
                bool exclusive = false);

    /** Run until every queue drains. */
    SimulationResult run();

  private:
    term::SymbolTable &symbols_;
    const PredicateStore &store_;
    ClauseRetrievalServer server_;
    LockManager locks_;

    struct Client
    {
        ClientId id;
        std::deque<ClientJob> jobs;
        ClientStats stats;
    };
    std::vector<Client> clients_;
    ClientId nextId_ = 1;
};

} // namespace clare::crs

#endif // CLARE_CRS_CLIENT_SIM_HH
