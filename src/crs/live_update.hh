/**
 * @file
 * Live (online) updates of the compiled predicate store: WAL-backed
 * crash-recoverable assert/retract with MVCC snapshot publication.
 *
 * The PDBM store was built once and immutable; the paper lists
 * "transaction handling" for the CRS as ongoing work.  This module
 * supplies it:
 *
 *  - Durability: every update transaction appends its operation
 *    records plus one Commit record to a storage::Wal and syncs
 *    *before* the in-memory store publishes anything (write-ahead
 *    discipline).  A crash at any byte therefore recovers to exactly
 *    the last complete commit.
 *
 *  - Visibility: a commit builds fresh StoredPredicate versions for
 *    the touched predicates and publishes them atomically through
 *    PredicateStore::publish().  Readers pin a version (optionally a
 *    historical generation via RetrievalRequest::snapshot) and never
 *    block on or observe an in-flight writer.
 *
 *  - Index maintenance: an assertz-only commit appends to the
 *    predicate's images — composite clause/index files byte-identical
 *    to a from-scratch rebuild — and transposes only the appended
 *    tail into an LSM-flavored delta mini-plane (the base bit-sliced
 *    plane is shared untouched across commits).  asserta/retract
 *    trigger a per-predicate minor compaction: the predicate is
 *    rebuilt from its evolving source-text list, which is exactly the
 *    LSM tombstone-merge rule with a level count of one.  Either way
 *    the scan results (survivor order AND modeled Ticks) are
 *    bit-identical to a full rebuild.
 *
 * Writers are serialized by an internal mutex (single-writer,
 * many-reader); begin() holds it until commit()/abort() so retract
 * resolution and the WAL append happen against one consistent state.
 */

#ifndef CLARE_CRS_LIVE_UPDATE_HH
#define CLARE_CRS_LIVE_UPDATE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crs/store.hh"
#include "crs/transaction.hh"
#include "storage/wal.hh"
#include "term/symbol_table.hh"
#include "term/term_writer.hh"

namespace clare::crs {

/**
 * One buffered update operation.  Clause *source text* is the replay
 * currency: the live commit path and WAL recovery both parse the same
 * text through the same reader, so the store states they produce are
 * bit-identical by construction.
 */
struct LiveOp
{
    enum class Kind : std::uint8_t
    {
        Assertz,    ///< append at the predicate's end
        Asserta,    ///< prepend (compaction at commit)
        Retract,    ///< remove one clause by evolving-list position
    };

    Kind kind = Kind::Assertz;
    term::PredicateId pred;
    std::string text;           ///< clause source (assert ops)
    /**
     * Retract target: the clause's position in the predicate's
     * *evolving* source-text list — head store state with this
     * transaction's earlier ops applied — at the op's sequence point.
     * Replay applies ops in order over the same evolving list, so the
     * position identifies the same clause on both paths.
     */
    std::uint32_t ordinal = 0;
};

/** The live-update front end over a compiled PredicateStore. */
class LiveStore
{
  public:
    /**
     * Attach live updates to @p store, opening (or creating) the WAL
     * at @p wal_path and replaying any committed records with LSN at
     * or above @p applied_lsn (the checkpoint watermark from the
     * store manifest; 0 for a store that never checkpointed).
     *
     * @param faults optional kill-point oracle threaded into the WAL
     *        and checkpoint writer (crash fuzzing)
     */
    LiveStore(PredicateStore &store, term::SymbolTable &symbols,
              const std::string &wal_path,
              std::uint64_t applied_lsn = 0,
              const support::FaultInjector *faults = nullptr);

    /**
     * Route commit-time invalidations to @p sink (the retrieval
     * server): after publish, every touched predicate's derived cache
     * state is dropped — never a wholesale invalidateCaches().
     */
    void attachSink(CacheInvalidationSink *sink) { sink_ = sink; }

    /** One pending update transaction (holds the writer lock). */
    class Update
    {
      public:
        Update(Update &&) = default;
        ~Update();

        /** Append a clause at the end of its predicate. */
        void assertz(const term::Clause &clause);
        /** Prepend a clause (forces a compaction at commit). */
        void asserta(const term::Clause &clause);

        /**
         * Retract the first clause matching @p pattern — a head term
         * (matches facts) or ':-'(Head, Body) — resolved against the
         * head store state plus this transaction's earlier ops.
         * @return true when a clause matched (and will be removed)
         */
        bool retract(const term::TermArena &arena,
                     term::TermRef pattern);

        /**
         * Make the transaction durable (WAL append + sync), apply it,
         * and publish one new MVCC generation.  An empty transaction
         * writes nothing.  @return the published (or current)
         * generation
         * @throws CrashError at an armed kill point — nothing was
         *         published; recovery replays to the pre-commit state
         */
        std::uint64_t commit();

        /** Drop the transaction; nothing was logged or published. */
        void abort();

        bool active() const { return active_; }

      private:
        friend class LiveStore;
        explicit Update(LiveStore &owner);

        /** Evolving source-text list of @p pred under this txn. */
        std::vector<std::string> &textsOf(const term::PredicateId &p);

        LiveStore *owner_;
        std::unique_lock<std::mutex> lock_;
        std::vector<LiveOp> ops_;
        std::map<term::PredicateId, std::vector<std::string>> working_;
        bool active_ = true;
    };

    /** Open a transaction (takes the writer lock until it ends). */
    Update begin();

    /** @name Single-op auto-commit conveniences */
    /// @{
    std::uint64_t assertz(const term::Clause &clause);
    std::uint64_t asserta(const term::Clause &clause);
    /** @return the generation when a clause matched, else nullopt. */
    std::optional<std::uint64_t> retract(const term::TermArena &arena,
                                         term::TermRef pattern);
    /// @}

    /**
     * Checkpoint: persist the current store under
     * `<root>/ckpt-<lsn>/`, atomically flip `<root>/CURRENT` to name
     * it (the LevelDB CURRENT discipline — the rename is the single
     * commit point), then reset the WAL to the applied watermark.  A
     * crash at any byte leaves either the old CURRENT (pre-state +
     * full WAL replay) or the new one (post-state, applied records
     * skipped) — never a third outcome.  Kill sites: "checkpoint"
     * (store + CURRENT bytes), "wal.checkpoint" (the log reset).
     */
    void checkpoint(const std::string &root);

    storage::Wal &wal() { return *wal_; }
    /** Watermark below which WAL records are already in the store. */
    std::uint64_t appliedLsn() const { return appliedLsn_; }
    /** Commit groups replayed from the WAL at construction. */
    std::size_t recoveredCommits() const { return recoveredCommits_; }
    /** Commits applied in-process (excludes recovery replay). */
    std::uint64_t commits() const { return commits_; }

  private:
    /**
     * The one apply path, shared by live commits, recovery replay,
     * and (indirectly) the oracle tests: log (unless replaying),
     * build per-predicate versions, publish, invalidate.
     */
    std::uint64_t commitOps(std::vector<LiveOp> ops, bool log);

    std::shared_ptr<StoredPredicate>
    buildComposite(const StoredPredicate &prev,
                   const std::vector<const LiveOp *> &ops);
    std::shared_ptr<StoredPredicate>
    buildCompacted(const StoredPredicate *prev,
                   const std::vector<const LiveOp *> &ops);
    void finishVersion(StoredPredicate &v,
                       const StoredPredicate *prev) const;

    /** Decode a recovered WAL record back into an op (replay path). */
    LiveOp decodeOp(const storage::Wal::Record &rec);

    PredicateStore &store_;
    term::SymbolTable &symbols_;
    term::TermWriter writer_;
    const support::FaultInjector *faults_;
    std::unique_ptr<storage::Wal> wal_;
    CacheInvalidationSink *sink_ = nullptr;

    std::mutex writerMutex_;
    /**
     * Whether the attached store carries bit-sliced planes (decides
     * the indexing of brand-new live predicates: a v2/row-major store
     * stays row-major everywhere so scans remain tick-identical).
     */
    bool storeSliced_ = false;
    std::uint64_t appliedLsn_ = 0;
    std::size_t recoveredCommits_ = 0;
    std::uint64_t commits_ = 0;
    /** Cumulative checkpoint bytes this process run (kill sweep). */
    std::uint64_t ckptCumulative_ = 0;
};

} // namespace clare::crs

#endif // CLARE_CRS_LIVE_UPDATE_HH
