#include "crs/api.hh"

#include <cmath>

#include "crs/server.hh"

namespace clare::crs {

json::Value
toJson(const StageBreakdown &breakdown)
{
    json::Value doc = json::Value::object();
    doc.set("queue_wait_ticks", breakdown.queueWait);
    // Only cache-served retrievals carry the cache stage, so a
    // default (cache-off) run's JSON stays byte-stable.
    if (breakdown.cacheTime > 0)
        doc.set("cache_ticks", breakdown.cacheTime);
    doc.set("index_ticks", breakdown.indexTime);
    doc.set("filter_ticks", breakdown.filterTime);
    doc.set("host_unify_ticks", breakdown.hostUnifyTime);
    doc.set("total_ticks", breakdown.total());
    return doc;
}

namespace {

void
require(bool ok, const char *field, const std::string &why)
{
    if (!ok)
        throw ConfigError(field, why);
}

} // namespace

void
CrsConfig::validate() const
{
    // Host cost model: the per-item costs multiply clause and
    // candidate counts, so a cost above one simulated second is a
    // unit mistake (they are all microsecond-scale) and risks Tick
    // overflow over large predicates.
    require(host.perClause <= kSecond, "host.perClause",
            "per-clause cost above one second — Tick is picoseconds");
    require(host.perOp <= kSecond, "host.perOp",
            "per-op cost above one second — Tick is picoseconds");
    require(host.perCandidateUnify <= kSecond, "host.perCandidateUnify",
            "per-candidate cost above one second — Tick is picoseconds");

    // FS1: the scan rate divides byte counts (busy time) and, on the
    // paced-replay path, real sleep durations — zero or negative
    // rates produce infinite times rather than a clamped fallback.
    require(std::isfinite(fs1.scanRate) && fs1.scanRate > 0,
            "fs1.scanRate", "scan rate must be a positive byte rate");
    require(std::isfinite(fs1.paceScale) && fs1.paceScale >= 0,
            "fs1.paceScale", "pace scale must be >= 0 (0 disables)");
    require(fs1::kernelSupported(fs1.kernel), "fs1.kernel",
            std::string("kernel '") + fs1::kernelName(fs1.kernel) +
                "' is not supported on this host (use 'auto' to pick "
                "the widest supported one)");

    // FS2: the microprogram is assembled for levels 1-3; the stream
    // needs a non-empty double buffer bank and result slots that fit
    // the result memory.
    require(fs2.level >= 1 && fs2.level <= 3, "fs2.level",
            "matching level must be 1, 2, or 3");
    require(fs2.doubleBufferBank > 0, "fs2.doubleBufferBank",
            "double buffer bank must hold at least one byte");
    require(fs2.resultSlotBytes > 0, "fs2.resultSlotBytes",
            "result slots must hold at least one byte");
    require(fs2.resultSlotBytes <= fs2.resultMemoryBytes,
            "fs2.resultSlotBytes",
            "result slot larger than the result memory");
    require(fs2.sequencerOverhead <= kMillisecond,
            "fs2.sequencerOverhead",
            "per-microinstruction overhead above a millisecond — "
            "Tick is picoseconds");

    // Caches: a zero-capacity enabled level would mean "consult a
    // cache that can never hold anything" — hit costs would still be
    // charged on the replay paths, so reject the contradiction.  The
    // hit costs are memory-scale lookups; anything above a simulated
    // second is a unit mistake (Tick is picoseconds).
    if (cache.enabled) {
        require(cache.goalCapacity >= 1, "cache.goalCapacity",
                "an enabled goal cache needs at least one entry");
        require(cache.signatureCapacity >= 1, "cache.signatureCapacity",
                "an enabled signature memo needs at least one entry");
        require(cache.survivorCapacity >= 1, "cache.survivorCapacity",
                "an enabled survivor memo needs at least one entry");
        require(cache.goalHitCost <= kSecond, "cache.goalHitCost",
                "hit cost above one second — Tick is picoseconds");
        require(cache.survivorHitCost <= kSecond,
                "cache.survivorHitCost",
                "hit cost above one second — Tick is picoseconds");
    }

    // Pipeline: 0 workers would mean "no thread runs retrievals";
    // the sequential path is workers == 1, and silent clamping hid
    // that distinction before.
    require(workers >= 1, "workers",
            "need at least the calling thread (sequential path is 1)");
    require(workers <= 1024, "workers",
            "more than 1024 workers is a configuration error");

    // Batch scanning groups FS1 goals into one pass over the sliced
    // plane; without the sliced kernel the grouping would only
    // serialize otherwise-pipelined scans.
    require(batchWidth >= 1, "batchWidth",
            "batch width 0 would mean no query is ever scanned");
    require(batchWidth <= 256, "batchWidth",
            "more than 256 queries per plane pass is a configuration "
            "error");
    require(batchWidth == 1 || fs1.sliced, "batchWidth",
            "multi-query batch scanning requires fs1.sliced");

    // Fault handling: zero attempts would mean "never read anything";
    // an unbounded retry count turns a permanently bad sector into a
    // hang, so the bound is part of the contract.
    require(retry.maxAttempts >= 1, "retry.maxAttempts",
            "need at least one read attempt per chunk");
    require(retry.maxAttempts <= 64, "retry.maxAttempts",
            "more than 64 retries only hides a dead device");
}

} // namespace clare::crs
