/**
 * @file
 * Concurrency control for multi-client access to the CRS.
 *
 * The paper notes the CRS "will also support simultaneous access by
 * multiple clients which involves procedures for concurrency control
 * and transaction handling".  This module provides the classical
 * building blocks: a per-predicate shared/exclusive lock manager with
 * deadlock avoidance by ordered acquisition, and transactions that
 * release everything on commit or abort.
 */

#ifndef CLARE_CRS_TRANSACTION_HH
#define CLARE_CRS_TRANSACTION_HH

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "term/clause.hh"

namespace clare::crs {

/** Client identity. */
using ClientId = std::uint32_t;

/** Lock strength. */
enum class LockKind : std::uint8_t
{
    Shared,     ///< concurrent readers
    Exclusive,  ///< single writer
};

/**
 * Per-predicate shared/exclusive locks.  Non-blocking interface: a
 * client either acquires a lock or is told it must wait; the caller
 * (a scheduler or test harness) decides what to do next.
 */
class LockManager
{
  public:
    /** Try to acquire; returns false on conflict. */
    bool acquire(ClientId client, const term::PredicateId &pred,
                 LockKind kind);

    /** Upgrade a held shared lock to exclusive (fails on conflict). */
    bool upgrade(ClientId client, const term::PredicateId &pred);

    /**
     * Downgrade the client's exclusive lock back to shared (the
     * inverse of a sole-sharer upgrade; used to undo an in-place
     * strengthen when a batched acquisition rolls back).
     */
    void downgrade(ClientId client, const term::PredicateId &pred);

    /** Release one lock (must be held by the client). */
    void release(ClientId client, const term::PredicateId &pred);

    /** Release everything a client holds. */
    void releaseAll(ClientId client);

    /** Does the client hold a lock on the predicate? */
    bool holds(ClientId client, const term::PredicateId &pred) const;

    /** Strength the client holds on the predicate, if any. */
    std::optional<LockKind> heldKind(ClientId client,
                                     const term::PredicateId &pred) const;

    /** Number of clients holding locks on the predicate. */
    std::size_t holders(const term::PredicateId &pred) const;

  private:
    struct Entry
    {
        std::set<ClientId> sharers;
        ClientId exclusiveOwner = 0;
        bool exclusive = false;
    };

    std::map<term::PredicateId, Entry> locks_;
};

/**
 * Receiver of cache-invalidation notices.  The retrieval server
 * implements this: a committed transaction that held a predicate
 * exclusively must flush every cached result derived from it (the L3
 * goal cache and the L2 survivor memo) before readers can observe the
 * commit.
 */
class CacheInvalidationSink
{
  public:
    virtual ~CacheInvalidationSink() = default;

    /** A write to @p pred committed; drop derived cached state. */
    virtual void invalidatePredicate(const term::PredicateId &pred) = 0;
};

/**
 * A transaction: accumulates predicate locks (acquired in a canonical
 * order to avoid deadlock when pre-declared), releases them on commit
 * or abort.
 *
 * When an invalidation sink is attached, commit() notifies it of
 * every predicate this transaction held *exclusively* — while the
 * locks are still held, so no reader can cache a stale result between
 * the invalidation and the release.  abort() never invalidates (an
 * aborted writer published nothing).
 */
class Transaction
{
  public:
    Transaction(LockManager &manager, ClientId client,
                CacheInvalidationSink *sink = nullptr)
        : manager_(manager), client_(client), sink_(sink)
    {}

    Transaction(const Transaction &) = delete;
    Transaction &operator=(const Transaction &) = delete;

    ~Transaction();

    /**
     * Acquire the given predicates (sorted canonically) with one
     * strength.  All-or-nothing: on any conflict, locks acquired by
     * this call are released and false is returned.
     */
    bool acquireAll(std::vector<term::PredicateId> preds, LockKind kind);

    /** Acquire a single lock. */
    bool acquire(const term::PredicateId &pred, LockKind kind);

    /**
     * Upgrade a held shared lock to exclusive.  Succeeds when this
     * transaction is the sole sharer (or already exclusive); fails on
     * any co-sharer.  On success commit() treats the predicate as
     * written (invalidation).
     */
    bool upgrade(const term::PredicateId &pred);

    void commit();
    void abort();

    bool active() const { return active_; }
    ClientId client() const { return client_; }

  private:
    LockManager &manager_;
    ClientId client_;
    CacheInvalidationSink *sink_;
    /**
     * Held locks with the strength they were acquired at — one entry
     * per predicate (re-acquisition records the strongest kind in
     * place; the manager's grants are idempotent).
     */
    std::vector<std::pair<term::PredicateId, LockKind>> held_;
    bool active_ = true;

    void recordHeld(const term::PredicateId &pred, LockKind kind);
    void releaseHeld();
};

} // namespace clare::crs

#endif // CLARE_CRS_TRANSACTION_HH
