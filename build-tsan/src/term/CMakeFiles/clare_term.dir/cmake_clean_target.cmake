file(REMOVE_RECURSE
  "libclare_term.a"
)
