# Empty dependencies file for clare_term.
# This may be replaced when dependencies are built.
