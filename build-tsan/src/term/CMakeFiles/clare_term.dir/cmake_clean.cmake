file(REMOVE_RECURSE
  "CMakeFiles/clare_term.dir/clause.cc.o"
  "CMakeFiles/clare_term.dir/clause.cc.o.d"
  "CMakeFiles/clare_term.dir/operators.cc.o"
  "CMakeFiles/clare_term.dir/operators.cc.o.d"
  "CMakeFiles/clare_term.dir/symbol_table.cc.o"
  "CMakeFiles/clare_term.dir/symbol_table.cc.o.d"
  "CMakeFiles/clare_term.dir/term.cc.o"
  "CMakeFiles/clare_term.dir/term.cc.o.d"
  "CMakeFiles/clare_term.dir/term_reader.cc.o"
  "CMakeFiles/clare_term.dir/term_reader.cc.o.d"
  "CMakeFiles/clare_term.dir/term_writer.cc.o"
  "CMakeFiles/clare_term.dir/term_writer.cc.o.d"
  "libclare_term.a"
  "libclare_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
