
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/clause.cc" "src/term/CMakeFiles/clare_term.dir/clause.cc.o" "gcc" "src/term/CMakeFiles/clare_term.dir/clause.cc.o.d"
  "/root/repo/src/term/operators.cc" "src/term/CMakeFiles/clare_term.dir/operators.cc.o" "gcc" "src/term/CMakeFiles/clare_term.dir/operators.cc.o.d"
  "/root/repo/src/term/symbol_table.cc" "src/term/CMakeFiles/clare_term.dir/symbol_table.cc.o" "gcc" "src/term/CMakeFiles/clare_term.dir/symbol_table.cc.o.d"
  "/root/repo/src/term/term.cc" "src/term/CMakeFiles/clare_term.dir/term.cc.o" "gcc" "src/term/CMakeFiles/clare_term.dir/term.cc.o.d"
  "/root/repo/src/term/term_reader.cc" "src/term/CMakeFiles/clare_term.dir/term_reader.cc.o" "gcc" "src/term/CMakeFiles/clare_term.dir/term_reader.cc.o.d"
  "/root/repo/src/term/term_writer.cc" "src/term/CMakeFiles/clare_term.dir/term_writer.cc.o" "gcc" "src/term/CMakeFiles/clare_term.dir/term_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
