file(REMOVE_RECURSE
  "CMakeFiles/clare_support.dir/bitvec.cc.o"
  "CMakeFiles/clare_support.dir/bitvec.cc.o.d"
  "CMakeFiles/clare_support.dir/logging.cc.o"
  "CMakeFiles/clare_support.dir/logging.cc.o.d"
  "CMakeFiles/clare_support.dir/random.cc.o"
  "CMakeFiles/clare_support.dir/random.cc.o.d"
  "CMakeFiles/clare_support.dir/stats.cc.o"
  "CMakeFiles/clare_support.dir/stats.cc.o.d"
  "CMakeFiles/clare_support.dir/table.cc.o"
  "CMakeFiles/clare_support.dir/table.cc.o.d"
  "CMakeFiles/clare_support.dir/thread_pool.cc.o"
  "CMakeFiles/clare_support.dir/thread_pool.cc.o.d"
  "libclare_support.a"
  "libclare_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
