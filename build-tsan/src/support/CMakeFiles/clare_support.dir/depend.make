# Empty dependencies file for clare_support.
# This may be replaced when dependencies are built.
