file(REMOVE_RECURSE
  "libclare_support.a"
)
