# Empty dependencies file for clare_pif.
# This may be replaced when dependencies are built.
