file(REMOVE_RECURSE
  "libclare_pif.a"
)
