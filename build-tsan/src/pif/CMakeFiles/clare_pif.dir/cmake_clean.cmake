file(REMOVE_RECURSE
  "CMakeFiles/clare_pif.dir/encoder.cc.o"
  "CMakeFiles/clare_pif.dir/encoder.cc.o.d"
  "CMakeFiles/clare_pif.dir/pif_item.cc.o"
  "CMakeFiles/clare_pif.dir/pif_item.cc.o.d"
  "CMakeFiles/clare_pif.dir/type_tags.cc.o"
  "CMakeFiles/clare_pif.dir/type_tags.cc.o.d"
  "libclare_pif.a"
  "libclare_pif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
