file(REMOVE_RECURSE
  "libclare_crs.a"
)
