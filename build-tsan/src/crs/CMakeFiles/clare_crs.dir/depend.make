# Empty dependencies file for clare_crs.
# This may be replaced when dependencies are built.
