file(REMOVE_RECURSE
  "CMakeFiles/clare_crs.dir/client_sim.cc.o"
  "CMakeFiles/clare_crs.dir/client_sim.cc.o.d"
  "CMakeFiles/clare_crs.dir/server.cc.o"
  "CMakeFiles/clare_crs.dir/server.cc.o.d"
  "CMakeFiles/clare_crs.dir/store.cc.o"
  "CMakeFiles/clare_crs.dir/store.cc.o.d"
  "CMakeFiles/clare_crs.dir/store_io.cc.o"
  "CMakeFiles/clare_crs.dir/store_io.cc.o.d"
  "CMakeFiles/clare_crs.dir/transaction.cc.o"
  "CMakeFiles/clare_crs.dir/transaction.cc.o.d"
  "libclare_crs.a"
  "libclare_crs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_crs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
