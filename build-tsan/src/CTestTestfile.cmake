# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("term")
subdirs("pif")
subdirs("unify")
subdirs("storage")
subdirs("scw")
subdirs("fs1")
subdirs("fs2")
subdirs("clare")
subdirs("crs")
subdirs("kb")
subdirs("workload")
