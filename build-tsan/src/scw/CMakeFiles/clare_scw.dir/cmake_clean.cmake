file(REMOVE_RECURSE
  "CMakeFiles/clare_scw.dir/analysis.cc.o"
  "CMakeFiles/clare_scw.dir/analysis.cc.o.d"
  "CMakeFiles/clare_scw.dir/codeword.cc.o"
  "CMakeFiles/clare_scw.dir/codeword.cc.o.d"
  "CMakeFiles/clare_scw.dir/index_file.cc.o"
  "CMakeFiles/clare_scw.dir/index_file.cc.o.d"
  "libclare_scw.a"
  "libclare_scw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_scw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
