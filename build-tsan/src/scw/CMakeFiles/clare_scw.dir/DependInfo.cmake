
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scw/analysis.cc" "src/scw/CMakeFiles/clare_scw.dir/analysis.cc.o" "gcc" "src/scw/CMakeFiles/clare_scw.dir/analysis.cc.o.d"
  "/root/repo/src/scw/codeword.cc" "src/scw/CMakeFiles/clare_scw.dir/codeword.cc.o" "gcc" "src/scw/CMakeFiles/clare_scw.dir/codeword.cc.o.d"
  "/root/repo/src/scw/index_file.cc" "src/scw/CMakeFiles/clare_scw.dir/index_file.cc.o" "gcc" "src/scw/CMakeFiles/clare_scw.dir/index_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/storage/CMakeFiles/clare_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/term/CMakeFiles/clare_term.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pif/CMakeFiles/clare_pif.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
