file(REMOVE_RECURSE
  "libclare_scw.a"
)
