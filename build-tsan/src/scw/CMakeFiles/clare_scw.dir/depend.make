# Empty dependencies file for clare_scw.
# This may be replaced when dependencies are built.
