file(REMOVE_RECURSE
  "CMakeFiles/clare_fs1.dir/fs1_engine.cc.o"
  "CMakeFiles/clare_fs1.dir/fs1_engine.cc.o.d"
  "CMakeFiles/clare_fs1.dir/pla_matcher.cc.o"
  "CMakeFiles/clare_fs1.dir/pla_matcher.cc.o.d"
  "libclare_fs1.a"
  "libclare_fs1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_fs1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
