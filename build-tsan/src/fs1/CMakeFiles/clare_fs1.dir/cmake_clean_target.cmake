file(REMOVE_RECURSE
  "libclare_fs1.a"
)
