
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs1/fs1_engine.cc" "src/fs1/CMakeFiles/clare_fs1.dir/fs1_engine.cc.o" "gcc" "src/fs1/CMakeFiles/clare_fs1.dir/fs1_engine.cc.o.d"
  "/root/repo/src/fs1/pla_matcher.cc" "src/fs1/CMakeFiles/clare_fs1.dir/pla_matcher.cc.o" "gcc" "src/fs1/CMakeFiles/clare_fs1.dir/pla_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/scw/CMakeFiles/clare_scw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/clare_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pif/CMakeFiles/clare_pif.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/term/CMakeFiles/clare_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
