# Empty dependencies file for clare_fs1.
# This may be replaced when dependencies are built.
