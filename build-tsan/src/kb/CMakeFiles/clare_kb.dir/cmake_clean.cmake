file(REMOVE_RECURSE
  "CMakeFiles/clare_kb.dir/arith.cc.o"
  "CMakeFiles/clare_kb.dir/arith.cc.o.d"
  "CMakeFiles/clare_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/clare_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/clare_kb.dir/resolution.cc.o"
  "CMakeFiles/clare_kb.dir/resolution.cc.o.d"
  "libclare_kb.a"
  "libclare_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
