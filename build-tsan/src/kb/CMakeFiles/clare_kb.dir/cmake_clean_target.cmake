file(REMOVE_RECURSE
  "libclare_kb.a"
)
