# Empty dependencies file for clare_kb.
# This may be replaced when dependencies are built.
