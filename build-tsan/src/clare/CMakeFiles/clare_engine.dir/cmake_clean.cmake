file(REMOVE_RECURSE
  "CMakeFiles/clare_engine.dir/board.cc.o"
  "CMakeFiles/clare_engine.dir/board.cc.o.d"
  "libclare_engine.a"
  "libclare_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
