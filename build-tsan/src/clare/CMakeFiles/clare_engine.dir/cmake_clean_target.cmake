file(REMOVE_RECURSE
  "libclare_engine.a"
)
