# Empty dependencies file for clare_engine.
# This may be replaced when dependencies are built.
