file(REMOVE_RECURSE
  "CMakeFiles/clare_workload.dir/kb_generator.cc.o"
  "CMakeFiles/clare_workload.dir/kb_generator.cc.o.d"
  "CMakeFiles/clare_workload.dir/query_generator.cc.o"
  "CMakeFiles/clare_workload.dir/query_generator.cc.o.d"
  "libclare_workload.a"
  "libclare_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
