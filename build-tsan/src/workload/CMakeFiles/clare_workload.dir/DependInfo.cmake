
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/kb_generator.cc" "src/workload/CMakeFiles/clare_workload.dir/kb_generator.cc.o" "gcc" "src/workload/CMakeFiles/clare_workload.dir/kb_generator.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/workload/CMakeFiles/clare_workload.dir/query_generator.cc.o" "gcc" "src/workload/CMakeFiles/clare_workload.dir/query_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/term/CMakeFiles/clare_term.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
