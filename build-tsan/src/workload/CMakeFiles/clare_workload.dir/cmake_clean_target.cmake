file(REMOVE_RECURSE
  "libclare_workload.a"
)
