# Empty dependencies file for clare_workload.
# This may be replaced when dependencies are built.
