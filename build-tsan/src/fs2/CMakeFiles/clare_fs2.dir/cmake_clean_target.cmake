file(REMOVE_RECURSE
  "libclare_fs2.a"
)
