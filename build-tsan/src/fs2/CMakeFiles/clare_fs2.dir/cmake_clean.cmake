file(REMOVE_RECURSE
  "CMakeFiles/clare_fs2.dir/datapath.cc.o"
  "CMakeFiles/clare_fs2.dir/datapath.cc.o.d"
  "CMakeFiles/clare_fs2.dir/double_buffer.cc.o"
  "CMakeFiles/clare_fs2.dir/double_buffer.cc.o.d"
  "CMakeFiles/clare_fs2.dir/fs2_engine.cc.o"
  "CMakeFiles/clare_fs2.dir/fs2_engine.cc.o.d"
  "CMakeFiles/clare_fs2.dir/map_rom.cc.o"
  "CMakeFiles/clare_fs2.dir/map_rom.cc.o.d"
  "CMakeFiles/clare_fs2.dir/microcode.cc.o"
  "CMakeFiles/clare_fs2.dir/microcode.cc.o.d"
  "CMakeFiles/clare_fs2.dir/result_memory.cc.o"
  "CMakeFiles/clare_fs2.dir/result_memory.cc.o.d"
  "CMakeFiles/clare_fs2.dir/tue.cc.o"
  "CMakeFiles/clare_fs2.dir/tue.cc.o.d"
  "CMakeFiles/clare_fs2.dir/tue_datapath.cc.o"
  "CMakeFiles/clare_fs2.dir/tue_datapath.cc.o.d"
  "CMakeFiles/clare_fs2.dir/wcs.cc.o"
  "CMakeFiles/clare_fs2.dir/wcs.cc.o.d"
  "libclare_fs2.a"
  "libclare_fs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_fs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
