
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs2/datapath.cc" "src/fs2/CMakeFiles/clare_fs2.dir/datapath.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/datapath.cc.o.d"
  "/root/repo/src/fs2/double_buffer.cc" "src/fs2/CMakeFiles/clare_fs2.dir/double_buffer.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/double_buffer.cc.o.d"
  "/root/repo/src/fs2/fs2_engine.cc" "src/fs2/CMakeFiles/clare_fs2.dir/fs2_engine.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/fs2_engine.cc.o.d"
  "/root/repo/src/fs2/map_rom.cc" "src/fs2/CMakeFiles/clare_fs2.dir/map_rom.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/map_rom.cc.o.d"
  "/root/repo/src/fs2/microcode.cc" "src/fs2/CMakeFiles/clare_fs2.dir/microcode.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/microcode.cc.o.d"
  "/root/repo/src/fs2/result_memory.cc" "src/fs2/CMakeFiles/clare_fs2.dir/result_memory.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/result_memory.cc.o.d"
  "/root/repo/src/fs2/tue.cc" "src/fs2/CMakeFiles/clare_fs2.dir/tue.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/tue.cc.o.d"
  "/root/repo/src/fs2/tue_datapath.cc" "src/fs2/CMakeFiles/clare_fs2.dir/tue_datapath.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/tue_datapath.cc.o.d"
  "/root/repo/src/fs2/wcs.cc" "src/fs2/CMakeFiles/clare_fs2.dir/wcs.cc.o" "gcc" "src/fs2/CMakeFiles/clare_fs2.dir/wcs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/unify/CMakeFiles/clare_unify.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/clare_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pif/CMakeFiles/clare_pif.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/term/CMakeFiles/clare_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
