# Empty dependencies file for clare_fs2.
# This may be replaced when dependencies are built.
