# CMake generated Testfile for 
# Source directory: /root/repo/src/fs2
# Build directory: /root/repo/build-tsan/src/fs2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
