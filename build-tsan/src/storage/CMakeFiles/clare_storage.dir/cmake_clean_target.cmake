file(REMOVE_RECURSE
  "libclare_storage.a"
)
