# Empty dependencies file for clare_storage.
# This may be replaced when dependencies are built.
