file(REMOVE_RECURSE
  "CMakeFiles/clare_storage.dir/clause_file.cc.o"
  "CMakeFiles/clare_storage.dir/clause_file.cc.o.d"
  "CMakeFiles/clare_storage.dir/disk_model.cc.o"
  "CMakeFiles/clare_storage.dir/disk_model.cc.o.d"
  "CMakeFiles/clare_storage.dir/file_io.cc.o"
  "CMakeFiles/clare_storage.dir/file_io.cc.o.d"
  "libclare_storage.a"
  "libclare_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
