# Empty dependencies file for clare_unify.
# This may be replaced when dependencies are built.
