file(REMOVE_RECURSE
  "libclare_unify.a"
)
