
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unify/bindings.cc" "src/unify/CMakeFiles/clare_unify.dir/bindings.cc.o" "gcc" "src/unify/CMakeFiles/clare_unify.dir/bindings.cc.o.d"
  "/root/repo/src/unify/oracle.cc" "src/unify/CMakeFiles/clare_unify.dir/oracle.cc.o" "gcc" "src/unify/CMakeFiles/clare_unify.dir/oracle.cc.o.d"
  "/root/repo/src/unify/pair_engine.cc" "src/unify/CMakeFiles/clare_unify.dir/pair_engine.cc.o" "gcc" "src/unify/CMakeFiles/clare_unify.dir/pair_engine.cc.o.d"
  "/root/repo/src/unify/pif_matcher.cc" "src/unify/CMakeFiles/clare_unify.dir/pif_matcher.cc.o" "gcc" "src/unify/CMakeFiles/clare_unify.dir/pif_matcher.cc.o.d"
  "/root/repo/src/unify/term_matcher.cc" "src/unify/CMakeFiles/clare_unify.dir/term_matcher.cc.o" "gcc" "src/unify/CMakeFiles/clare_unify.dir/term_matcher.cc.o.d"
  "/root/repo/src/unify/unify.cc" "src/unify/CMakeFiles/clare_unify.dir/unify.cc.o" "gcc" "src/unify/CMakeFiles/clare_unify.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/pif/CMakeFiles/clare_pif.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/term/CMakeFiles/clare_term.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
