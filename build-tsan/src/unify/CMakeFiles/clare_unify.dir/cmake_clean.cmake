file(REMOVE_RECURSE
  "CMakeFiles/clare_unify.dir/bindings.cc.o"
  "CMakeFiles/clare_unify.dir/bindings.cc.o.d"
  "CMakeFiles/clare_unify.dir/oracle.cc.o"
  "CMakeFiles/clare_unify.dir/oracle.cc.o.d"
  "CMakeFiles/clare_unify.dir/pair_engine.cc.o"
  "CMakeFiles/clare_unify.dir/pair_engine.cc.o.d"
  "CMakeFiles/clare_unify.dir/pif_matcher.cc.o"
  "CMakeFiles/clare_unify.dir/pif_matcher.cc.o.d"
  "CMakeFiles/clare_unify.dir/term_matcher.cc.o"
  "CMakeFiles/clare_unify.dir/term_matcher.cc.o.d"
  "CMakeFiles/clare_unify.dir/unify.cc.o"
  "CMakeFiles/clare_unify.dir/unify.cc.o.d"
  "libclare_unify.a"
  "libclare_unify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_unify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
