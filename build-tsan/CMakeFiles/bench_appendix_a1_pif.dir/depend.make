# Empty dependencies file for bench_appendix_a1_pif.
# This may be replaced when dependencies are built.
