file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_a1_pif.dir/bench/bench_appendix_a1_pif.cc.o"
  "CMakeFiles/bench_appendix_a1_pif.dir/bench/bench_appendix_a1_pif.cc.o.d"
  "bench/bench_appendix_a1_pif"
  "bench/bench_appendix_a1_pif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_a1_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
