file(REMOVE_RECURSE
  "CMakeFiles/bench_false_drops.dir/bench/bench_false_drops.cc.o"
  "CMakeFiles/bench_false_drops.dir/bench/bench_false_drops.cc.o.d"
  "bench/bench_false_drops"
  "bench/bench_false_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
