# Empty compiler generated dependencies file for bench_false_drops.
# This may be replaced when dependencies are built.
