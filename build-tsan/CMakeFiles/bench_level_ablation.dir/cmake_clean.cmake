file(REMOVE_RECURSE
  "CMakeFiles/bench_level_ablation.dir/bench/bench_level_ablation.cc.o"
  "CMakeFiles/bench_level_ablation.dir/bench/bench_level_ablation.cc.o.d"
  "bench/bench_level_ablation"
  "bench/bench_level_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
