# Empty dependencies file for bench_level_ablation.
# This may be replaced when dependencies are built.
