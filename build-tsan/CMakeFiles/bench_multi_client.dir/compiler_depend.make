# Empty compiler generated dependencies file for bench_multi_client.
# This may be replaced when dependencies are built.
