file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_client.dir/bench/bench_multi_client.cc.o"
  "CMakeFiles/bench_multi_client.dir/bench/bench_multi_client.cc.o.d"
  "bench/bench_multi_client"
  "bench/bench_multi_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
