file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_12_routes.dir/bench/bench_fig6_12_routes.cc.o"
  "CMakeFiles/bench_fig6_12_routes.dir/bench/bench_fig6_12_routes.cc.o.d"
  "bench/bench_fig6_12_routes"
  "bench/bench_fig6_12_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_12_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
