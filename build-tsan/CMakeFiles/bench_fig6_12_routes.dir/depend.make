# Empty dependencies file for bench_fig6_12_routes.
# This may be replaced when dependencies are built.
