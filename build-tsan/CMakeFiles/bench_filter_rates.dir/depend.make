# Empty dependencies file for bench_filter_rates.
# This may be replaced when dependencies are built.
