file(REMOVE_RECURSE
  "CMakeFiles/bench_filter_rates.dir/bench/bench_filter_rates.cc.o"
  "CMakeFiles/bench_filter_rates.dir/bench/bench_filter_rates.cc.o.d"
  "bench/bench_filter_rates"
  "bench/bench_filter_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
