file(REMOVE_RECURSE
  "CMakeFiles/bench_host_interface.dir/bench/bench_host_interface.cc.o"
  "CMakeFiles/bench_host_interface.dir/bench/bench_host_interface.cc.o.d"
  "bench/bench_host_interface"
  "bench/bench_host_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
