# Empty dependencies file for bench_host_interface.
# This may be replaced when dependencies are built.
