file(REMOVE_RECURSE
  "CMakeFiles/bench_search_modes.dir/bench/bench_search_modes.cc.o"
  "CMakeFiles/bench_search_modes.dir/bench/bench_search_modes.cc.o.d"
  "bench/bench_search_modes"
  "bench/bench_search_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
