# Empty compiler generated dependencies file for bench_search_modes.
# This may be replaced when dependencies are built.
