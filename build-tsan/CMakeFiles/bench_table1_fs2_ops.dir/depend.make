# Empty dependencies file for bench_table1_fs2_ops.
# This may be replaced when dependencies are built.
