file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fs2_ops.dir/bench/bench_table1_fs2_ops.cc.o"
  "CMakeFiles/bench_table1_fs2_ops.dir/bench/bench_table1_fs2_ops.cc.o.d"
  "bench/bench_table1_fs2_ops"
  "bench/bench_table1_fs2_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fs2_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
