file(REMOVE_RECURSE
  "CMakeFiles/test_matchers.dir/test_matchers.cc.o"
  "CMakeFiles/test_matchers.dir/test_matchers.cc.o.d"
  "test_matchers"
  "test_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
