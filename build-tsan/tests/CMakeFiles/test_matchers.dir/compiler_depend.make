# Empty compiler generated dependencies file for test_matchers.
# This may be replaced when dependencies are built.
