file(REMOVE_RECURSE
  "CMakeFiles/test_reader_writer.dir/test_reader_writer.cc.o"
  "CMakeFiles/test_reader_writer.dir/test_reader_writer.cc.o.d"
  "test_reader_writer"
  "test_reader_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
