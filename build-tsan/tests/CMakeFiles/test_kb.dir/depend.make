# Empty dependencies file for test_kb.
# This may be replaced when dependencies are built.
