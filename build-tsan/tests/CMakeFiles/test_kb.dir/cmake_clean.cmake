file(REMOVE_RECURSE
  "CMakeFiles/test_kb.dir/test_kb.cc.o"
  "CMakeFiles/test_kb.dir/test_kb.cc.o.d"
  "test_kb"
  "test_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
