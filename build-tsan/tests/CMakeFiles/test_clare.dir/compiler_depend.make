# Empty compiler generated dependencies file for test_clare.
# This may be replaced when dependencies are built.
