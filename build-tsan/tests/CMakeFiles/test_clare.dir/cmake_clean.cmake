file(REMOVE_RECURSE
  "CMakeFiles/test_clare.dir/test_clare.cc.o"
  "CMakeFiles/test_clare.dir/test_clare.cc.o.d"
  "test_clare"
  "test_clare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
