# Empty dependencies file for test_pif.
# This may be replaced when dependencies are built.
