file(REMOVE_RECURSE
  "CMakeFiles/test_pif.dir/test_pif.cc.o"
  "CMakeFiles/test_pif.dir/test_pif.cc.o.d"
  "test_pif"
  "test_pif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
