file(REMOVE_RECURSE
  "CMakeFiles/test_crs.dir/test_crs.cc.o"
  "CMakeFiles/test_crs.dir/test_crs.cc.o.d"
  "test_crs"
  "test_crs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
