# Empty compiler generated dependencies file for test_crs.
# This may be replaced when dependencies are built.
