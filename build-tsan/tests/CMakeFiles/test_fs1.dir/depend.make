# Empty dependencies file for test_fs1.
# This may be replaced when dependencies are built.
