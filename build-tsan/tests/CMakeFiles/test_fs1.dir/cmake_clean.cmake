file(REMOVE_RECURSE
  "CMakeFiles/test_fs1.dir/test_fs1.cc.o"
  "CMakeFiles/test_fs1.dir/test_fs1.cc.o.d"
  "test_fs1"
  "test_fs1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
