file(REMOVE_RECURSE
  "CMakeFiles/test_builtins.dir/test_builtins.cc.o"
  "CMakeFiles/test_builtins.dir/test_builtins.cc.o.d"
  "test_builtins"
  "test_builtins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builtins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
