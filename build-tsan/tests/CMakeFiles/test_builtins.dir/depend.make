# Empty dependencies file for test_builtins.
# This may be replaced when dependencies are built.
