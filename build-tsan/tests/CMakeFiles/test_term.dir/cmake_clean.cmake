file(REMOVE_RECURSE
  "CMakeFiles/test_term.dir/test_term.cc.o"
  "CMakeFiles/test_term.dir/test_term.cc.o.d"
  "test_term"
  "test_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
