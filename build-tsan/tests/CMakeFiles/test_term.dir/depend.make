# Empty dependencies file for test_term.
# This may be replaced when dependencies are built.
