# Empty dependencies file for test_tue_datapath.
# This may be replaced when dependencies are built.
