file(REMOVE_RECURSE
  "CMakeFiles/test_tue_datapath.dir/test_tue_datapath.cc.o"
  "CMakeFiles/test_tue_datapath.dir/test_tue_datapath.cc.o.d"
  "test_tue_datapath"
  "test_tue_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tue_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
