
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/test_workload.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/kb/CMakeFiles/clare_kb.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crs/CMakeFiles/clare_crs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/clare/CMakeFiles/clare_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fs1/CMakeFiles/clare_fs1.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fs2/CMakeFiles/clare_fs2.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/scw/CMakeFiles/clare_scw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/clare_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/unify/CMakeFiles/clare_unify.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pif/CMakeFiles/clare_pif.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/term/CMakeFiles/clare_term.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/clare_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/clare_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
