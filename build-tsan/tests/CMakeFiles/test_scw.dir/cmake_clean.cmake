file(REMOVE_RECURSE
  "CMakeFiles/test_scw.dir/test_scw.cc.o"
  "CMakeFiles/test_scw.dir/test_scw.cc.o.d"
  "test_scw"
  "test_scw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
