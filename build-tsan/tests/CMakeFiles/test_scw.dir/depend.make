# Empty dependencies file for test_scw.
# This may be replaced when dependencies are built.
