file(REMOVE_RECURSE
  "CMakeFiles/test_unify.dir/test_unify.cc.o"
  "CMakeFiles/test_unify.dir/test_unify.cc.o.d"
  "test_unify"
  "test_unify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
