# Empty dependencies file for test_unify.
# This may be replaced when dependencies are built.
