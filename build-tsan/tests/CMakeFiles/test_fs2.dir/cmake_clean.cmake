file(REMOVE_RECURSE
  "CMakeFiles/test_fs2.dir/test_fs2.cc.o"
  "CMakeFiles/test_fs2.dir/test_fs2.cc.o.d"
  "test_fs2"
  "test_fs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
