# Empty compiler generated dependencies file for test_fs2.
# This may be replaced when dependencies are built.
