file(REMOVE_RECURSE
  "CMakeFiles/clare_shell.dir/clare_shell.cpp.o"
  "CMakeFiles/clare_shell.dir/clare_shell.cpp.o.d"
  "clare_shell"
  "clare_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clare_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
