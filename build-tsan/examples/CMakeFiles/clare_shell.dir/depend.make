# Empty dependencies file for clare_shell.
# This may be replaced when dependencies are built.
