# Empty dependencies file for warren_kb.
# This may be replaced when dependencies are built.
