file(REMOVE_RECURSE
  "CMakeFiles/warren_kb.dir/warren_kb.cpp.o"
  "CMakeFiles/warren_kb.dir/warren_kb.cpp.o.d"
  "warren_kb"
  "warren_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warren_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
