# Empty compiler generated dependencies file for family_kb.
# This may be replaced when dependencies are built.
