file(REMOVE_RECURSE
  "CMakeFiles/family_kb.dir/family_kb.cpp.o"
  "CMakeFiles/family_kb.dir/family_kb.cpp.o.d"
  "family_kb"
  "family_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
