file(REMOVE_RECURSE
  "CMakeFiles/microcode_trace.dir/microcode_trace.cpp.o"
  "CMakeFiles/microcode_trace.dir/microcode_trace.cpp.o.d"
  "microcode_trace"
  "microcode_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcode_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
