# Empty dependencies file for microcode_trace.
# This may be replaced when dependencies are built.
