#!/usr/bin/env bash
# Loopback cluster smoke: build a persisted store, boot three
# clare_server backends (one with a fault-injector-poisoned store) and
# a clare_router with 3-way replication in front of them, then run
# clare_client --verify-local, which requires every routed response to
# be field-for-field identical — answers AND modeled StageBreakdown
# ticks — to an in-process serve() on the same store.  The poisoned
# backend proves failover: its degraded responses are held by the
# router in favor of a clean replica, so the client sees none.
#
# Stage two shards the store itself: clare_mkstore --shard splits the
# same knowledge base into 3 per-predicate slices plus a catalog, six
# slice-backed backends (3 shards x 2 replicas, one replica's slice
# poisoned) boot behind a catalog-routed clare_router, and
# clare_client --verify-local diffs both the single-request path and
# the batched scatter/gather path against the *unsharded* store — the
# split/merge must be invisible bit-for-bit.  Per-backend RSS and the
# slice-vs-full store sizes are reported: the point of data sharding
# is that each backend holds ~1/N of the store.
#
# Usage: scripts/net_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d /tmp/clare-net-smoke.XXXXXX)"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() { # logfile -> port
    local log="$1" port="" tries=0
    while [ -z "$port" ] && [ "$tries" -lt 50 ]; do
        port="$(awk '/^listening on /{print $3}' "$log" 2>/dev/null ||
                true)"
        [ -n "$port" ] || { sleep 0.1; tries=$((tries + 1)); }
    done
    [ -n "$port" ] || { echo "server did not come up ($log)" >&2
                        exit 1; }
    echo "$port"
}

echo "== net-smoke: building store + queries =="
"$TOOLS/clare_mkstore" --out "$WORK/store" --queries "$WORK/q.txt" \
    --predicates=6 --clauses=80 --num-queries=48 --seed=11

echo "== net-smoke: booting 3 backends (backend 3 poisoned) =="
"$TOOLS/clare_server" --store "$WORK/store" > "$WORK/s1.log" &
PIDS+=($!)
"$TOOLS/clare_server" --store "$WORK/store" > "$WORK/s2.log" &
PIDS+=($!)
"$TOOLS/clare_server" --store "$WORK/store" \
    --fault-seed=42 --fault-flip=0.5 > "$WORK/s3.log" &
PIDS+=($!)
P1="$(wait_port "$WORK/s1.log")"
P2="$(wait_port "$WORK/s2.log")"
P3="$(wait_port "$WORK/s3.log")"

echo "== net-smoke: booting router (replication 3) =="
"$TOOLS/clare_router" --backend "$P1" --backend "$P2" \
    --backend "$P3" --replication=3 > "$WORK/r.log" &
PIDS+=($!)
RP="$(wait_port "$WORK/r.log")"

echo "== net-smoke: client vs local serve() (must be identical) =="
"$TOOLS/clare_client" --store "$WORK/store" --port="$RP" \
    --queries "$WORK/q.txt" --verify-local

echo "== net-smoke: graceful shutdown (SIGTERM, no kill -9) =="
# Every process must drain and exit 0 on plain TERM; the EXIT trap
# stays as a safety net but should find nothing left to kill.
for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
    if ! wait "$pid"; then
        echo "process $pid did not shut down cleanly" >&2
        exit 1
    fi
done
grep -q "shutdown complete" "$WORK/s1.log" || {
    echo "backend 1 skipped graceful shutdown" >&2; exit 1; }
PIDS=()

rss_kb() { # pid -> resident set, kB
    awk '/^VmRSS:/{print $2}' "/proc/$1/status" 2>/dev/null || echo 0
}

echo "== net-smoke: sharding the store (3 shards x 2 replicas) =="
"$TOOLS/clare_mkstore" --out-dir="$WORK/shards" --shard=3 \
    --replication=2 --queries "$WORK/sq.txt" \
    --predicates=12 --clauses=120 --num-queries=48 --seed=13

echo "== net-smoke: booting 6 slice backends (slice 0 replica 0" \
     "poisoned) =="
SPIDS=()
SLICE_PORTS=()
for s in 0 1 2; do
    for r in 0 1; do
        log="$WORK/shard_${s}_${r}.log"
        if [ "$s" = 0 ] && [ "$r" = 0 ]; then
            "$TOOLS/clare_server" --store "$WORK/shards/slice-$s" \
                --fault-seed=42 --fault-flip=0.5 > "$log" &
        else
            "$TOOLS/clare_server" --store "$WORK/shards/slice-$s" \
                > "$log" &
        fi
        PIDS+=($!); SPIDS+=($!)
    done
done
for s in 0 1 2; do
    for r in 0 1; do
        SLICE_PORTS+=("$(wait_port "$WORK/shard_${s}_${r}.log")")
    done
done

echo "== net-smoke: booting catalog router =="
BACKEND_ARGS=()
for port in "${SLICE_PORTS[@]}"; do
    BACKEND_ARGS+=(--backend "$port")
done
"$TOOLS/clare_router" "${BACKEND_ARGS[@]}" \
    --catalog "$WORK/shards/catalog.json" > "$WORK/sr.log" &
PIDS+=($!); ROUTER_PID=$!
SRP="$(wait_port "$WORK/sr.log")"

echo "== net-smoke: sharded cluster vs unsharded local serve() =="
"$TOOLS/clare_client" --store "$WORK/shards/full" --port="$SRP" \
    --queries "$WORK/sq.txt" --verify-local

echo "== net-smoke: batched scatter/gather vs local serveBatch() =="
"$TOOLS/clare_client" --store "$WORK/shards/full" --port="$SRP" \
    --queries "$WORK/sq.txt" --verify-local --batch=16

echo "== net-smoke: per-backend footprint (the point of sharding) =="
# One reference backend loads the full unsharded store for the RSS
# comparison; slice stores on disk must come in well under it.
"$TOOLS/clare_server" --store "$WORK/shards/full" > "$WORK/sfull.log" &
PIDS+=($!); FULL_PID=$!
wait_port "$WORK/sfull.log" > /dev/null
FULL_KB="$(du -sk "$WORK/shards/full" | awk '{print $1}')"
i=0
for pid in "${SPIDS[@]}"; do
    s=$((i / 2)); r=$((i % 2))
    SLICE_KB="$(du -sk "$WORK/shards/slice-$s" | awk '{print $1}')"
    echo "  shard $s replica $r: rss $(rss_kb "$pid") kB," \
         "slice store $SLICE_KB kB (full store $FULL_KB kB)"
    if [ "$SLICE_KB" -ge "$FULL_KB" ]; then
        echo "slice $s is not smaller than the full store" >&2
        exit 1
    fi
    i=$((i + 1))
done
echo "  full-store reference: rss $(rss_kb "$FULL_PID") kB"

echo "== net-smoke: sharded graceful shutdown =="
for pid in "${SPIDS[@]}" "$ROUTER_PID" "$FULL_PID"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${SPIDS[@]}" "$ROUTER_PID" "$FULL_PID"; do
    if ! wait "$pid"; then
        echo "sharded process $pid did not shut down cleanly" >&2
        exit 1
    fi
done
PIDS=()

echo "net-smoke OK"
