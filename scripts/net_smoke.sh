#!/usr/bin/env bash
# Loopback cluster smoke: build a persisted store, boot three
# clare_server backends (one with a fault-injector-poisoned store) and
# a clare_router with 3-way replication in front of them, then run
# clare_client --verify-local, which requires every routed response to
# be field-for-field identical — answers AND modeled StageBreakdown
# ticks — to an in-process serve() on the same store.  The poisoned
# backend proves failover: its degraded responses are held by the
# router in favor of a clean replica, so the client sees none.
#
# Usage: scripts/net_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d /tmp/clare-net-smoke.XXXXXX)"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_port() { # logfile -> port
    local log="$1" port="" tries=0
    while [ -z "$port" ] && [ "$tries" -lt 50 ]; do
        port="$(awk '/^listening on /{print $3}' "$log" 2>/dev/null ||
                true)"
        [ -n "$port" ] || { sleep 0.1; tries=$((tries + 1)); }
    done
    [ -n "$port" ] || { echo "server did not come up ($log)" >&2
                        exit 1; }
    echo "$port"
}

echo "== net-smoke: building store + queries =="
"$TOOLS/clare_mkstore" --out "$WORK/store" --queries "$WORK/q.txt" \
    --predicates=6 --clauses=80 --num-queries=48 --seed=11

echo "== net-smoke: booting 3 backends (backend 3 poisoned) =="
"$TOOLS/clare_server" --store "$WORK/store" > "$WORK/s1.log" &
PIDS+=($!)
"$TOOLS/clare_server" --store "$WORK/store" > "$WORK/s2.log" &
PIDS+=($!)
"$TOOLS/clare_server" --store "$WORK/store" \
    --fault-seed=42 --fault-flip=0.5 > "$WORK/s3.log" &
PIDS+=($!)
P1="$(wait_port "$WORK/s1.log")"
P2="$(wait_port "$WORK/s2.log")"
P3="$(wait_port "$WORK/s3.log")"

echo "== net-smoke: booting router (replication 3) =="
"$TOOLS/clare_router" --backend "$P1" --backend "$P2" \
    --backend "$P3" --replication=3 > "$WORK/r.log" &
PIDS+=($!)
RP="$(wait_port "$WORK/r.log")"

echo "== net-smoke: client vs local serve() (must be identical) =="
"$TOOLS/clare_client" --store "$WORK/store" --port="$RP" \
    --queries "$WORK/q.txt" --verify-local

echo "== net-smoke: graceful shutdown (SIGTERM, no kill -9) =="
# Every process must drain and exit 0 on plain TERM; the EXIT trap
# stays as a safety net but should find nothing left to kill.
for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
    if ! wait "$pid"; then
        echo "process $pid did not shut down cleanly" >&2
        exit 1
    fi
done
grep -q "shutdown complete" "$WORK/s1.log" || {
    echo "backend 1 skipped graceful shutdown" >&2; exit 1; }
PIDS=()

echo "net-smoke OK"
