#!/usr/bin/env bash
# Tier-1 verification: the canonical build + full test suite, then the
# fault-injection/corruption suites again under ASan+UBSan so the
# error paths are proven free of undefined behavior, not just of
# wrong answers, the cache-hierarchy suite again under TSan so the
# shared L1/L2/L3 caches are proven free of data races, and the
# bit-sliced equivalence suite again under ASan so the word-indexed
# plane arithmetic (edge-masked partial ranges in particular) is
# proven in-bounds, and finally the kernel-dispatch suites under ASan
# so every FS1 kernel the host supports (scalar64/avx2/avx512) and
# both FS2 dispatch targets (interpreter and compiled routines) run
# sanitized.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir] [tsan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"
TSAN_BUILD="${3:-build-tsan}"

echo "== tier-1: default build + full ctest =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo "== tier-1: ASan+UBSan build + faults-labeled tests =="
cmake -B "$ASAN_BUILD" -S . -DCLARE_SANITIZE=address
cmake --build "$ASAN_BUILD" -j
ctest --test-dir "$ASAN_BUILD" -L faults --output-on-failure -j

echo "== tier-1: ASan+UBSan build + wal-labeled tests =="
# The WAL/live-update suite fuzzes torn tails and byte-granular crash
# kill points through commit and checkpoint; running it sanitized
# proves the recovery walks (CRC checks, truncation, replay) stay
# in-bounds on every mangled input, not just correct.
ctest --test-dir "$ASAN_BUILD" -L wal --output-on-failure -j

echo "== tier-1: ASan+UBSan build + sliced-equivalence tests =="
ctest --test-dir "$ASAN_BUILD" -L sliced --output-on-failure -j

echo "== tier-1: ASan+UBSan build + shard-labeled tests =="
# The data-sharding suite runs a slice-backed 3x2 cluster with a
# poisoned replica and concurrent sub-batch fan-out through the
# router; running it sanitized proves the scatter/gather paths and
# slice load/save walks are in-bounds, not just bit-identical.
ctest --test-dir "$ASAN_BUILD" -L shard --output-on-failure -j

echo "== tier-1: ASan+UBSan build + kernel-dispatch tests =="
# The kernels-labeled suites internally sweep every FS1 kernel the
# host supports (skipping the rest) and both FS2 dispatch targets, so
# one labeled run covers the whole registry.
ctest --test-dir "$ASAN_BUILD" -L kernels --output-on-failure -j

echo "== tier-1: TSan build + cache-labeled tests =="
cmake -B "$TSAN_BUILD" -S . -DCLARE_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j
ctest --test-dir "$TSAN_BUILD" -L cache --output-on-failure -j

echo "== tier-1: loopback cluster smoke (replicated + sharded) =="
# Boots a 3-replica clare_server cluster (one backend fault-poisoned)
# behind clare_router and diffs every routed response against an
# in-process serve() on the same store — answers and modeled ticks
# must be bit-identical through the wire.  Then shards the store
# itself: 3 slices x 2 replicas behind a catalog-routed router, with
# the single and batched paths diffed against the unsharded store and
# per-backend footprint reported.
scripts/net_smoke.sh "$BUILD"

echo "== tier-1: crash-recovery smoke (kill -9 mid-ingest) =="
# Hard-kills a live-updating clare_server mid-WAL-stream and verifies
# the reopened store replays exactly the committed prefix.
scripts/crash_smoke.sh "$BUILD"

echo "tier-1 OK"
