#!/usr/bin/env bash
# Tier-1 verification: the canonical build + full test suite, then the
# fault-injection/corruption suites again under ASan+UBSan so the
# error paths are proven free of undefined behavior, not just of
# wrong answers.
#
# Usage: scripts/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ASAN_BUILD="${2:-build-asan}"

echo "== tier-1: default build + full ctest =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j

echo "== tier-1: ASan+UBSan build + faults-labeled tests =="
cmake -B "$ASAN_BUILD" -S . -DCLARE_SANITIZE=address
cmake --build "$ASAN_BUILD" -j
ctest --test-dir "$ASAN_BUILD" -L faults --output-on-failure -j

echo "tier-1 OK"
