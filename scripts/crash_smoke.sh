#!/usr/bin/env bash
# Crash-recovery smoke: boot clare_server with a WAL and a background
# ingest stream, kill -9 the process mid-stream, and verify recovery:
#
#   1. the reopened store replays exactly the committed prefix — at
#      least every commit the dead server acknowledged ("ingested N"
#      prints after the WAL sync returns), at most one more (a commit
#      whose sync raced the kill);
#   2. recovery is deterministic: a second reopen replays the same
#      count;
#   3. the recovered server still shuts down gracefully on SIGTERM.
#
# The byte-exact kill-point fuzzing (every offset of commit and
# checkpoint streams) lives in test_wal; this smoke proves the same
# contract end to end against a real process kill.
#
# Usage: scripts/crash_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
TOOLS="$BUILD/tools"
WORK="$(mktemp -d /tmp/clare-crash-smoke.XXXXXX)"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_line() { # logfile pattern
    local log="$1" pattern="$2" tries=0
    until grep -q "$pattern" "$log" 2>/dev/null; do
        tries=$((tries + 1))
        [ "$tries" -lt 100 ] || {
            echo "timeout waiting for '$pattern' in $log" >&2
            exit 1
        }
        sleep 0.1
    done
}

echo "== crash-smoke: building store + ingest stream =="
"$TOOLS/clare_mkstore" --out "$WORK/store" --predicates=4 \
    --clauses=60 --seed=7 > /dev/null
for i in $(seq 1 400); do
    echo "live_fact($i, tag$((i % 7)))."
done > "$WORK/ingest.txt"

echo "== crash-smoke: ingesting live, then kill -9 mid-stream =="
"$TOOLS/clare_server" --store "$WORK/store" --wal "$WORK/store/wal.log" \
    --ingest "$WORK/ingest.txt" --ingest-delay-us=2000 \
    > "$WORK/s.log" &
PIDS+=($!)
wait_line "$WORK/s.log" "^listening on "
# Let a healthy prefix commit, then crash hard mid-ingest.
until [ "$(grep -c '^ingested ' "$WORK/s.log" || true)" -ge 25 ]; do
    sleep 0.05
done
kill -9 "${PIDS[0]}" 2>/dev/null
wait "${PIDS[0]}" 2>/dev/null || true
ACKED="$(grep -c '^ingested ' "$WORK/s.log" || true)"
PIDS=()
if grep -q "^ingest done$" "$WORK/s.log"; then
    echo "ingest finished before the kill; nothing was in flight" >&2
    exit 1
fi

echo "== crash-smoke: recover (acknowledged $ACKED commits) =="
"$TOOLS/clare_server" --store "$WORK/store" \
    --wal "$WORK/store/wal.log" > "$WORK/r1.log" &
PIDS+=($!)
wait_line "$WORK/r1.log" "^listening on "
REC1="$(awk '/^wal recovered /{print $3}' "$WORK/r1.log")"
kill -TERM "${PIDS[0]}"
wait "${PIDS[0]}" || {
    echo "recovered server did not shut down cleanly" >&2
    exit 1
}
PIDS=()
grep -q "shutdown complete" "$WORK/r1.log" || {
    echo "recovered server skipped graceful shutdown" >&2
    exit 1
}

# Exactly the committed prefix: every acknowledged commit, plus at
# most the one whose durable sync raced the kill.
if [ "$REC1" -lt "$ACKED" ] || [ "$REC1" -gt "$((ACKED + 1))" ]; then
    echo "recovered $REC1 commits, expected $ACKED or $((ACKED + 1))" \
        >&2
    exit 1
fi

echo "== crash-smoke: recovery is deterministic =="
"$TOOLS/clare_server" --store "$WORK/store" \
    --wal "$WORK/store/wal.log" > "$WORK/r2.log" &
PIDS+=($!)
wait_line "$WORK/r2.log" "^listening on "
REC2="$(awk '/^wal recovered /{print $3}' "$WORK/r2.log")"
kill -TERM "${PIDS[0]}"
wait "${PIDS[0]}" || true
PIDS=()
if [ "$REC1" != "$REC2" ]; then
    echo "recovery replayed $REC1 then $REC2 commits" >&2
    exit 1
fi

echo "crash-smoke OK (recovered $REC1 of $ACKED acknowledged commits)"
